"""Benchmark-suite plumbing.

Each benchmark file regenerates one paper table/figure via the experiment
registry, saves the rendered table under ``benchmarks/results/`` and makes
loose *shape* assertions (who wins, by roughly what factor) — absolute
numbers are simulation outputs and are recorded in EXPERIMENTS.md instead.
"""

from __future__ import annotations

import pathlib
from typing import List, Sequence

import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.metrics.report import Row, format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def figure(benchmark, request):
    """Run one experiment under pytest-benchmark and return its rows."""

    def run(exp_id: str) -> List[Row]:
        title, rows = benchmark.pedantic(
            EXPERIMENTS[exp_id], args=(True,), rounds=1, iterations=1
        )
        if rows:
            metric_order = [
                m for m in ("bandwidth_mb_s", "avg_latency_us", "kiops")
                if m in rows[0].metrics
            ]
            text = format_table(title, rows, metric_order=metric_order)
        else:
            text = title
        save_table(exp_id, text)
        return rows

    return run


def metric(rows: Sequence[Row], x, system: str, key: str = "bandwidth_mb_s") -> float:
    """Look up one metric value from experiment rows."""
    for row in rows:
        if row.x == x and row.system == system:
            return row.metrics[key]
    raise KeyError(f"no row for x={x!r} system={system!r}")


def systems_at(rows: Sequence[Row], x) -> dict:
    return {r.system: r.metrics for r in rows if r.x == x}
