"""Ablations of dRAID's design choices (DESIGN.md quality gates).

Two of the paper's three key techniques are toggled off individually:

* §5.3 parallel I/O pipeline — without it a data bdev processes fetch,
  drive read, drive write and partial-parity forwarding strictly serially,
  like plain NVMe-oF (measured with a FIO write workload).
* §5.2 non-blocking multi-stage write — a barrier design cannot process
  peer partials before the Parity command arrives.  The cost appears
  exactly when Parity is *late* ("late arrival of the Parity command"),
  so it is measured with a protocol-level microbenchmark that delays the
  Parity capsule: the non-blocking reducer has every partial fetched by
  the time the command lands, the barrier version starts fetching then.

(The third technique, §6.2 bandwidth-aware reconstruction, is ablated in
Figure 17b.)
"""

import pytest

from benchmarks.conftest import save_table
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.draid.bdev import DraidBdevServer
from repro.draid.protocol import ParityCmd, PartialWriteCmd, Subtype
from repro.nvmeof.messages import next_cid
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import FioWorkload

KB = 1024


def run_pipeline_variant(pipeline: bool):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    array = DraidArray(
        cluster, RaidGeometry(RaidLevel.RAID5, 8, 512 * KB), pipeline=pipeline
    )
    fio = FioWorkload(array, 128 * KB, read_fraction=0.0, queue_depth=16)
    return fio.run(measure_ns=15_000_000)


def late_parity_latency(blocking_reduce: bool, delay_ns: int = 800_000) -> float:
    """Reduce-completion latency when the Parity capsule arrives late.

    Six data bdevs forward full-chunk (512 KiB) partials to the parity
    bdev; the host sends the Parity command ``delay_ns`` later (modeling
    network/scheduling jitter).  Returns the parity completion time in us.
    """
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    servers = [
        DraidBdevServer(cluster, i, blocking_reduce=blocking_reduce)
        for i in range(8)
    ]
    host_nic = cluster.host.nic
    host_ends = [cluster.host_connection(i).end_for(host_nic) for i in range(8)]
    cid = next_cid()
    chunk = 512 * KB

    def driver():
        # broadcast RW_READ partial-writes (reconstruct-write style: each
        # data bdev reads its chunk and forwards it as a partial parity)
        for d in range(1, 7):
            host_ends[d].send(
                PartialWriteCmd(
                    cid, subtype=Subtype.RW_READ, drive_offset=0, length=0,
                    chunk_offset=0, data_index=d - 1, fwd_offset=0,
                    fwd_length=chunk, next_dest=0, chunk_drive_offset=0,
                    parity_key=cid,
                )
            )
        yield env.timeout(delay_ns)  # the Parity command arrives late
        host_ends[0].send(
            ParityCmd(cid, subtype=Subtype.RW_READ, parity_drive_offset=0,
                      fwd_offset=0, fwd_length=chunk, wait_num=6, key=cid)
        )
        completion = yield host_ends[0].recv()
        assert completion.kind == "parity" and completion.ok
        return env.now

    done = env.process(driver())
    return env.run(until=done) / 1000


def run_all():
    return {
        "fio_full": run_pipeline_variant(pipeline=True),
        "fio_no_pipeline": run_pipeline_variant(pipeline=False),
        "late_parity_nonblocking_us": late_parity_latency(blocking_reduce=False),
        "late_parity_barrier_us": late_parity_latency(blocking_reduce=True),
    }


@pytest.mark.benchmark(group="ablations")
def test_ablation_design_choices(benchmark):
    r = benchmark.pedantic(run_all, rounds=1, iterations=1)
    full, no_pipe = r["fio_full"], r["fio_no_pipeline"]
    nb, barrier = r["late_parity_nonblocking_us"], r["late_parity_barrier_us"]
    lines = [
        "Ablation: dRAID design choices",
        "",
        "(a) §5.3 I/O pipeline (RAID-5 write, 128 KiB, 8 targets, QD 16):",
        f"  pipelined   {full.bandwidth_mb_s:8.0f} MB/s   avg {full.latency.mean_us:7.1f} us",
        f"  serial      {no_pipe.bandwidth_mb_s:8.0f} MB/s   avg {no_pipe.latency.mean_us:7.1f} us",
        "",
        "(b) §5.2 non-blocking reduce, Parity capsule delayed 800 us",
        "    (6 x 512 KiB partials to reduce):",
        f"  non-blocking (dRAID)   parity completes at {nb:7.1f} us",
        f"  barrier (ablation)     parity completes at {barrier:7.1f} us",
    ]
    save_table("ablation_design", "\n".join(lines))
    # §5.3: pipelining must improve both latency and throughput
    assert full.latency.mean_ns < no_pipe.latency.mean_ns
    assert full.bandwidth_mb_s >= no_pipe.bandwidth_mb_s
    # §5.2: with a late Parity command the non-blocking design finishes
    # sooner because partials were fetched while waiting
    assert nb < barrier * 0.9
