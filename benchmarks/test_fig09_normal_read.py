"""Benchmark regenerating Figure 9 of the paper.

Figure 9 (RAID-5 normal-state read vs I/O size, 6 targets).

Expected shape: every system reaches the NIC goodput (~11 500 MB/s) at
64 KiB and above; the user-space systems beat Linux MD at small sizes.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig09_normal_read(figure):
    rows = figure("fig09")
    goodput = 11500
    for system in ("Linux", "SPDK", "dRAID"):
        assert metric(rows, "128KB", system) > 0.9 * goodput
        assert metric(rows, "64KB", system) > 0.9 * goodput
    # small I/O: user-space beats the kernel stack
    assert metric(rows, "4KB", "dRAID") > 1.5 * metric(rows, "4KB", "Linux")
    assert metric(rows, "4KB", "SPDK") > 1.5 * metric(rows, "4KB", "Linux")
