"""Benchmark regenerating Figure 10 of the paper.

Figure 10 (RAID-5 write vs I/O size).

Expected shape: read-modify-write sizes are drive/NIC limited with dRAID
>= SPDK >> Linux; at the full stripe size (3584 KiB) dRAID and SPDK
converge because both compute parity on the host (no remote reads).
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig10_write_iosize(figure):
    rows = figure("fig10")
    # full-stripe write: identical data paths
    full_draid = metric(rows, "3584KB", "dRAID")
    full_spdk = metric(rows, "3584KB", "SPDK")
    assert abs(full_draid - full_spdk) / full_spdk < 0.1
    assert full_draid > 8000  # approaches goodput x 7/8
    # partial writes: dRAID never loses, Linux collapses
    for size in ("16KB", "128KB" if any(r.x == "128KB" for r in rows) else "64KB"):
        assert metric(rows, size, "dRAID") >= 0.95 * metric(rows, size, "SPDK")
        assert metric(rows, size, "dRAID") > 3 * metric(rows, size, "Linux")
