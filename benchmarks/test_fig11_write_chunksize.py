"""Benchmark regenerating Figure 11 of the paper.

Figure 11 (RAID-5 write vs chunk size, 128 KiB I/O).

Expected shape: dRAID runs at full drive bandwidth across large chunk
sizes; small chunks turn most writes into cheap (near-)full-stripe
writes, raising everyone; Linux MD stays collapsed.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig11_write_chunksize(figure):
    rows = figure("fig11")
    for chunk in ("128KB", "512KB", "1024KB"):
        if any(r.x == chunk for r in rows):
            assert metric(rows, chunk, "dRAID") > 4200  # ~8-SSD RMW bound
            assert metric(rows, chunk, "dRAID") > 3 * metric(rows, chunk, "Linux")
    assert metric(rows, "32KB", "dRAID") >= 0.95 * metric(rows, "32KB", "SPDK")
