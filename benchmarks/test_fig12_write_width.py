"""Benchmark regenerating Figure 12 of the paper.

Figure 12 (RAID-5 write vs stripe width).

The paper's headline scaling figure: dRAID scales near-linearly toward
the NIC goodput (84 Gbps = ~10 500 MB/s at width 18), SPDK plateaus at
about half the goodput (its RMW sends 2x through the host NIC), and
Linux MD shows the opposite trend (more width = slower).
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig12_write_width(figure):
    rows = figure("fig12")
    goodput = 11500
    # SPDK plateaus at ~half goodput
    spdk_peak = max(metric(rows, w, "SPDK") for w in (12, 18) if any(r.x == w for r in rows))
    assert spdk_peak < 0.58 * goodput
    # dRAID scales ~linearly to ~84 Gbps at width 18
    assert metric(rows, 18, "dRAID") > 9500
    assert metric(rows, 18, "dRAID") > 1.6 * metric(rows, 18, "SPDK")
    # Linux: opposite trend
    assert metric(rows, 18, "Linux") < metric(rows, 4, "Linux")
