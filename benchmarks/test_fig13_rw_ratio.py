"""Benchmark regenerating Figure 13 of the paper.

Figure 13 (RAID-5 mixed read/write ratios).

Expected shape: dRAID wins at every mixed ratio; at 100% read all
systems converge to the NIC goodput.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig13_rw_ratio(figure):
    rows = figure("fig13")
    for ratio in ("0%", "25%", "50%", "75%"):
        assert metric(rows, ratio, "dRAID") >= 0.95 * metric(rows, ratio, "SPDK")
        assert metric(rows, ratio, "dRAID") > 2 * metric(rows, ratio, "Linux")
    assert metric(rows, "75%", "dRAID") > 1.15 * metric(rows, "75%", "SPDK")
    assert metric(rows, "100%", "dRAID") > 0.9 * 11500
