"""Benchmark regenerating Figure 14 of the paper.

Figure 14 (RAID-5 latency vs bandwidth, 18 targets).

Expected shape: under write-only load dRAID's bandwidth ceiling is about
twice SPDK's; with a 50/50 mix dRAID approaches the NIC goodput for the
combined stream.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig14_latency_curve(figure):
    rows = figure("fig14")
    def peak(prefix, system):
        return max(
            r.metrics["bandwidth_mb_s"]
            for r in rows if str(r.x).startswith(prefix) and r.system == system
        )

    assert peak("wo-", "dRAID") > 1.5 * peak("wo-", "SPDK")
    assert peak("rw-", "dRAID") > 1.3 * peak("rw-", "SPDK")
    assert peak("rw-", "dRAID") > 9000
    # at light load (qd1) latencies are similar across systems
    lat_d = metric(rows, "wo-qd1", "dRAID", "avg_latency_us")
    lat_s = metric(rows, "wo-qd1", "SPDK", "avg_latency_us")
    assert lat_d < 1.2 * lat_s
