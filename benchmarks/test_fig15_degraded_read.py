"""Benchmark regenerating Figure 15 of the paper.

Figure 15 (RAID-5 degraded read vs I/O size).

Expected shape: dRAID keeps ~95% of normal-state read throughput; SPDK
drops to ~57% (reconstructions pull width-1 chunks through the host
NIC); Linux MD collapses to under a GB/s.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig15_degraded_read(figure):
    rows = figure("fig15")
    goodput = 11500
    big = "128KB"
    assert metric(rows, big, "dRAID") > 0.9 * goodput
    ratio = metric(rows, big, "SPDK") / goodput
    assert 0.45 < ratio < 0.68  # paper: 57%
    assert metric(rows, big, "Linux") < 1500  # paper: 834 MB/s
