"""Benchmark regenerating Figure 16 of the paper.

Figure 16 (RAID-5 degraded read vs stripe width).

Expected shape: dRAID approaches normal-state read throughput as width
grows; SPDK peaks early and degrades; Linux stays poor.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig16_degraded_width(figure):
    rows = figure("fig16")
    goodput = 11500
    assert metric(rows, 18, "dRAID") > 0.9 * goodput
    assert metric(rows, 18, "dRAID") > 1.6 * metric(rows, 18, "SPDK")
    for width in (8, 18):
        assert metric(rows, width, "SPDK") < 0.68 * goodput
