"""Benchmark regenerating Figure 17 of the paper.

Figure 17 (reconstruction scalability + BW-aware reducer).

Expected shape: (a) with every read degraded (a rebuild's read stream)
dRAID sustains far higher reconstruction bandwidth than SPDK across
widths; (b) on heterogeneous NICs the bandwidth-aware reducer beats
random selection (paper: +53%).
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig17_reconstruction(figure):
    rows = figure("fig17")
    # 17a: dRAID sustains near-constant (drive-bound) rebuild bandwidth
    # while SPDK's collapses with width; at width 4 both are close.
    for width in (8, 18):
        x = f"width-{width}"
        if any(r.x == x for r in rows):
            assert metric(rows, x, "dRAID") > 1.5 * metric(rows, x, "SPDK")
    draid_rebuild = [
        r.metrics["bandwidth_mb_s"]
        for r in rows if str(r.x).startswith("width-") and r.system == "dRAID"
    ]
    assert min(draid_rebuild) > 0.8 * max(draid_rebuild)  # near-optimal at all widths
    # 17b: bandwidth-aware beats random before the 25G ceiling binds
    low = [r.x for r in rows if str(r.x).startswith("qd-")][0]
    assert metric(rows, low, "BW-Aware") > 1.15 * metric(rows, low, "Random")
