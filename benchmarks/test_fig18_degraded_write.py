"""Benchmark regenerating Figure 18 of the paper.

Figure 18 (RAID-5 degraded write vs I/O size).

Expected shape: all systems lose only a little versus normal-state
writes (one failed drive touches ~1/width of I/Os); dRAID still beats
SPDK and Linux stays collapsed.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="figures")
def test_fig18_degraded_write(figure):
    rows = figure("fig18")
    big = "128KB"
    assert metric(rows, big, "dRAID") >= 0.9 * metric(rows, big, "SPDK")
    assert metric(rows, big, "dRAID") > 3500  # ~<10% below normal state
    assert metric(rows, big, "Linux") < 1500
