"""Benchmark regenerating Figure 19 of the paper.

Figure 19 (LSM KV store / RocksDB stand-in, YCSB).

Expected shape: modest dRAID gains on the write-heavy workloads (A, F)
in normal state (the single store instance serializes internally, paper:
~1.27x) and broader gains in degraded state.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="apps")
def test_fig19_lsm_ycsb(figure):
    rows = figure("fig19")
    for wl in ("A", "F"):
        normal = systems_at(rows, f"YCSB-{wl}-normal")
        assert normal["dRAID"]["kiops"] >= 0.95 * normal["SPDK"]["kiops"]
    for wl in ("A", "B", "C", "D", "F"):
        degraded = systems_at(rows, f"YCSB-{wl}-degraded")
        assert degraded["dRAID"]["kiops"] >= 0.95 * degraded["SPDK"]["kiops"]
    # degraded read-heavy workloads gain clearly
    deg_c = systems_at(rows, "YCSB-C-degraded")
    assert deg_c["dRAID"]["kiops"] > 1.1 * deg_c["SPDK"]["kiops"]
