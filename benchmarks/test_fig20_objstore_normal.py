"""Benchmark regenerating Figure 20 of the paper.

Figure 20 (object store, normal-state RAID-5).

Expected shape: clear dRAID wins on write-heavy YCSB-A/F (paper: 1.7x
and 1.5x); limited improvement on read-heavy B/C/D.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="apps")
def test_fig20_objstore_normal(figure):
    rows = figure("fig20")
    m = systems_at(rows, "YCSB-F")
    assert m["dRAID"]["kiops"] > 1.1 * m["SPDK"]["kiops"]
    m = systems_at(rows, "YCSB-A")
    assert m["dRAID"]["kiops"] > 1.05 * m["SPDK"]["kiops"]
    m = systems_at(rows, "YCSB-C")
    assert m["dRAID"]["kiops"] >= 0.9 * m["SPDK"]["kiops"]
