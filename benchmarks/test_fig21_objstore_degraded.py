"""Benchmark regenerating Figure 21 of the paper.

Figure 21 (object store, degraded-state RAID-5).

Expected shape: dRAID wins across the board, most on the read-heavy
workloads whose degraded reads SPDK amplifies through the host NIC
(paper: ~2.35x on B/C/D).
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="apps")
def test_fig21_objstore_degraded(figure):
    rows = figure("fig21")
    for wl in ("B", "C", "D"):
        m = systems_at(rows, f"YCSB-{wl}")
        assert m["dRAID"]["kiops"] > 1.3 * m["SPDK"]["kiops"]
    for wl in ("A", "F"):
        m = systems_at(rows, f"YCSB-{wl}")
        assert m["dRAID"]["kiops"] >= 0.95 * m["SPDK"]["kiops"]
