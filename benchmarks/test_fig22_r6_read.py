"""Benchmark regenerating Figure 22 of the paper.

Figure 22 (RAID-6 normal-state read vs I/O size).

Expected shape: identical to RAID-5 reads — the rotating dual-parity
layout still lets reads use every drive; all systems reach goodput at
large sizes.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig22_r6_read(figure):
    rows = figure("fig22")
    goodput = 11500
    for system in ("Linux", "SPDK", "dRAID"):
        assert metric(rows, "128KB", system) > 0.9 * goodput
    assert metric(rows, "4KB", "dRAID") > 1.5 * metric(rows, "4KB", "Linux")
