"""Benchmark regenerating Figure 23 of the paper.

Figure 23 (RAID-6 write vs I/O size).

Expected shape: RAID-6 small writes run at roughly two thirds of RAID-5
(six drive I/Os per RMW instead of four); dRAID and SPDK converge at the
full stripe size (3072 KiB).
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig23_r6_write_iosize(figure):
    rows = figure("fig23")
    full_draid = metric(rows, "3072KB", "dRAID")
    full_spdk = metric(rows, "3072KB", "SPDK")
    assert abs(full_draid - full_spdk) / full_spdk < 0.12
    assert metric(rows, "64KB", "dRAID") > 3000   # ~2/3 of the RAID-5 value
    assert metric(rows, "64KB", "dRAID") > 0.85 * metric(rows, "64KB", "SPDK")
    assert metric(rows, "64KB", "dRAID") > 3 * metric(rows, "64KB", "Linux")
