"""Benchmark regenerating Figure 24 of the paper.

Figure 24 (RAID-6 write vs chunk size).

Expected shape: as RAID-5 but with a wider dRAID/SPDK gap at small
chunks (SPDK pays double host-side parity traffic).
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig24_r6_chunksize(figure):
    rows = figure("fig24")
    assert metric(rows, "32KB", "dRAID") > 1.05 * metric(rows, "32KB", "SPDK")
    for chunk in ("512KB", "1024KB"):
        assert metric(rows, chunk, "dRAID") > 2.5 * metric(rows, chunk, "Linux")
