"""Benchmark regenerating Figure 25 of the paper.

Figure 25 (RAID-6 write vs stripe width).

Expected shape: SPDK is pinned near a third of the NIC goodput (RMW
sends data + P + Q through the host); dRAID scales near-linearly.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig25_r6_width(figure):
    rows = figure("fig25")
    goodput = 11500
    assert metric(rows, 18, "SPDK") < 0.42 * goodput
    assert metric(rows, 18, "dRAID") > 1.7 * metric(rows, 18, "SPDK")
    assert metric(rows, 18, "Linux") < metric(rows, 4, "Linux") * 1.1
