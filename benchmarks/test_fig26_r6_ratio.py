"""Benchmark regenerating Figure 26 of the paper.

Figure 26 (RAID-6 mixed read/write ratios).

Expected shape: as Figure 13 with a slightly larger dRAID/SPDK gap.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig26_r6_ratio(figure):
    rows = figure("fig26")
    for ratio in ("0%", "25%", "50%", "75%"):
        assert metric(rows, ratio, "dRAID") >= 0.9 * metric(rows, ratio, "SPDK")
    assert metric(rows, "100%", "dRAID") > 0.9 * 11500
