"""Benchmark regenerating Figure 27 of the paper.

Figure 27 (RAID-6 latency vs bandwidth).

Expected shape: dRAID consistently reaches higher bandwidth than SPDK
for both write-only and mixed load at 18 targets.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig27_r6_latency(figure):
    rows = figure("fig27")
    def peak(prefix, system):
        return max(
            r.metrics["bandwidth_mb_s"]
            for r in rows if str(r.x).startswith(prefix) and r.system == system
        )

    assert peak("wo-", "dRAID") > 1.5 * peak("wo-", "SPDK")
    assert peak("rw-", "dRAID") > 1.3 * peak("rw-", "SPDK")
