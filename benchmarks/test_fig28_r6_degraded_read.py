"""Benchmark regenerating Figure 28 of the paper.

Figure 28 (RAID-6 degraded read vs I/O size).

Expected shape: dRAID ~95% of normal-state read; SPDK ~61%; Linux
collapsed (paper Appendix A.3).
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig28_r6_degraded_read(figure):
    rows = figure("fig28")
    goodput = 11500
    assert metric(rows, "128KB", "dRAID") > 0.9 * goodput
    ratio = metric(rows, "128KB", "SPDK") / goodput
    assert 0.5 < ratio < 0.75  # paper: 61%
    assert metric(rows, "128KB", "Linux") < 1500
