"""Benchmark regenerating Figure 29 of the paper.

Figure 29 (RAID-6 degraded read vs stripe width).

Expected shape: dRAID is stable and near goodput across widths; SPDK
peaks around width 8 and degrades slightly beyond.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig29_r6_degraded_width(figure):
    rows = figure("fig29")
    goodput = 11500
    draid = [r.metrics["bandwidth_mb_s"] for r in rows if r.system == "dRAID"]
    assert min(draid[1:]) > 0.75 * max(draid)
    assert metric(rows, 18, "dRAID") > 1.4 * metric(rows, 18, "SPDK")
