"""Benchmark regenerating Figure 30 of the paper.

Figure 30 (RAID-6 degraded write vs I/O size).

Expected shape: dRAID's degraded-state penalty stays small (paper: 11%
vs SPDK's 23% drop), keeping a clear gap over both baselines.
"""

import pytest

from benchmarks.conftest import metric, systems_at


@pytest.mark.benchmark(group="raid6")
def test_fig30_r6_degraded_write(figure):
    rows = figure("fig30")
    assert metric(rows, "128KB", "dRAID") >= 0.85 * metric(rows, "128KB", "SPDK")
    assert metric(rows, "128KB", "dRAID") > 2500
    assert metric(rows, "128KB", "Linux") < 1500
