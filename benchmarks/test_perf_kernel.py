"""Kernel microbenchmark: events/sec on the canonical benchkit workloads.

Runs the same fixed workloads as ``scripts/bench_wallclock.py`` (ping-pong,
timeout churn, parallel bandwidth channel), saves the numbers under
``benchmarks/results/BENCH_kernel.json`` and asserts only a generous floor
— absolute throughput is hardware-dependent; the trajectory is tracked in
``BENCH_wallclock.json`` at the repository root.
"""

import json
import pathlib

import pytest

from repro.sim.benchkit import KERNEL_WORKLOADS, run_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Generous floors (events/s) — an order of magnitude below the measured
#: optimized-kernel numbers, so the assertion only catches catastrophic
#: regressions (e.g. an accidental O(n) scan in the dispatch loop).
FLOORS = {
    "pingpong": 100_000,
    "timeout_churn": 80_000,
    "bandwidth_sweep": 40_000,
}


@pytest.mark.parametrize("name", sorted(KERNEL_WORKLOADS))
def test_kernel_events_per_second(name):
    events_per_s, ops = run_workload(name, repeats=2)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernel.json"
    recorded = json.loads(path.read_text()) if path.exists() else {}
    recorded[name] = {"events_per_s": round(events_per_s, 1), "operations": ops}
    path.write_text(json.dumps(recorded, indent=2, sort_keys=True) + "\n")
    print(f"{name}: {events_per_s:,.0f} events/s")
    assert events_per_s > FLOORS[name], (
        f"{name} fell below the catastrophic-regression floor: "
        f"{events_per_s:,.0f} < {FLOORS[name]:,} events/s"
    )
