"""Table 1: architecture comparison.

The table itself is analytical; this benchmark additionally *verifies* the
two overhead columns against NIC byte counters measured in simulation:
host-centric RMW must move ~4x the user bytes through the host NIC and a
host-centric reconstruct read ~(width-1)x, while dRAID moves ~1x for both.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.analysis import architecture_table
from repro.analysis.table1 import (
    degraded_read_overhead_distributed,
    degraded_read_overhead_draid,
    write_overhead_distributed_rmw,
    write_overhead_draid,
)
from repro.cluster import ClusterConfig, build_cluster
from repro.baselines import SpdkRaid
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment

KB = 1024


def measured_write_overhead(system_cls):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    array = system_cls(cluster, RaidGeometry(RaidLevel.RAID5, 8, 512 * KB))
    env.run(until=array.write(0, 128 * KB))  # warm paths
    cluster.reset_accounting()
    total = 0
    for i in range(16):
        env.run(until=array.write(i * 4 * 1024 * 1024, 128 * KB))
        total += 128 * KB
    host = cluster.host.nic
    return (host.tx_bytes + host.rx_bytes) / total


def measured_dread_overhead(system_cls):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    array = system_cls(cluster, RaidGeometry(RaidLevel.RAID5, 8, 512 * KB))
    array.fail_drive(0)
    geometry = array.geometry
    cluster.reset_accounting()
    total = 0
    done = 0
    stripe = 0
    while done < 8:
        # read a region living on the failed drive
        if 0 in geometry.parity_drives(stripe):
            stripe += 1
            continue
        idx = geometry.data_index_of_drive(stripe, 0)
        offset = stripe * geometry.stripe_data_bytes + idx * geometry.chunk_bytes
        env.run(until=array.read(offset, 128 * KB))
        total += 128 * KB
        done += 1
        stripe += 1
    host = cluster.host.nic
    return (host.tx_bytes + host.rx_bytes) / total


def run_table1_verification():
    rows = [
        ("Distributed write", measured_write_overhead(SpdkRaid),
         write_overhead_distributed_rmw()),
        ("dRAID write", measured_write_overhead(DraidArray), write_overhead_draid()),
        ("Distributed d-read", measured_dread_overhead(SpdkRaid),
         degraded_read_overhead_distributed(8)),
        ("dRAID d-read", measured_dread_overhead(DraidArray),
         degraded_read_overhead_draid()),
    ]
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_architectures(benchmark):
    rows = benchmark.pedantic(run_table1_verification, rounds=1, iterations=1)
    lines = [architecture_table(), "", "Measured host-NIC overheads (bytes moved / user byte):"]
    for name, measured, analytical in rows:
        lines.append(f"  {name:22s} measured {measured:5.2f}x   analytical {analytical:.0f}x")
    save_table("table1", "\n".join(lines))
    by_name = {name: measured for name, measured, _ in rows}
    # host-centric RMW moves ~4x through the host NIC; dRAID ~1x
    assert 3.5 < by_name["Distributed write"] < 4.6
    assert by_name["dRAID write"] < 1.3
    # host-centric reconstruct read ~(width-1)=7x; dRAID ~1x
    assert 6.0 < by_name["Distributed d-read"] < 8.0
    assert by_name["dRAID d-read"] < 1.3
