"""What-if study: the §2.3 NVRAM-staging alternative vs dRAID.

The paper dismisses batching partial writes into full stripes because it
"requires using non-volatile memory as the cache layer and causes I/O
amplification in the background."  This benchmark quantifies both sides
of that trade on the simulated testbed:

* random small writes: the log-structured design acknowledges at NVRAM
  speed and the device sees only full-stripe writes — it beats every
  in-place design on write throughput;
* a sustained overwrite workload forces garbage collection: device-byte
  amplification shows up exactly as §2.3 predicts;
* reads of a logically sequential extent scatter across the log.
"""

import pytest

from benchmarks.conftest import save_table
from repro.baselines import LogStructuredRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import FioWorkload

KB = 1024


def build(system_cls, **kwargs):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    array = system_cls(cluster, RaidGeometry(RaidLevel.RAID5, 8, 512 * KB), **kwargs)
    return env, cluster, array


def write_point(system_cls, **kwargs):
    env, cluster, array = build(system_cls, **kwargs)
    fio = FioWorkload(array, 16 * KB, read_fraction=0.0, queue_depth=32,
                      capacity=1 << 30)
    return fio.run(measure_ns=15_000_000), array


def run_all():
    draid_result, _ = write_point(DraidArray)
    log_result, log_array = write_point(LogStructuredRaid, log_stripes=2048)
    # a working set nearly filling a small log: GC must relocate mostly
    # live blocks, the §2.3 background amplification
    env, cluster, churn_array = build(LogStructuredRaid, log_stripes=32)
    churn_array.gc_low_watermark = 0.3
    fio = FioWorkload(churn_array, 16 * KB, read_fraction=0.0, queue_depth=32,
                      capacity=24 * churn_array.geometry.stripe_data_bytes)
    churn = fio.run(measure_ns=60_000_000)
    env.run(until=env.now + 100_000_000)  # let GC finish
    # burst latency: a single write into an idle staging buffer
    env2, cluster2, burst_array = build(LogStructuredRaid, log_stripes=256)
    start = env2.now
    env2.run(until=burst_array.write(0, 16 * KB))
    burst_ns = env2.now - start
    return {
        "draid": draid_result,
        "log": log_result,
        "log_array": log_array,
        "churn": churn,
        "churn_array": churn_array,
        "burst_ns": burst_ns,
    }


@pytest.mark.benchmark(group="whatif")
def test_whatif_nvram_staging(benchmark):
    r = benchmark.pedantic(run_all, rounds=1, iterations=1)
    draid, log = r["draid"], r["log"]
    churn_amp = r["churn_array"].log_stats.write_amplification()
    gc_moved = r["churn_array"].log_stats.gc_blocks_moved
    lines = [
        "What-if: NVRAM staging (log-structured, §2.3) vs dRAID",
        "",
        "random 16 KiB writes, width 8 (sustained, QD 32):",
        f"  dRAID (in-place)     {draid.bandwidth_mb_s:8.0f} MB/s   "
        f"avg {draid.latency.mean_us:8.1f} us",
        f"  log-structured       {log.bandwidth_mb_s:8.0f} MB/s   "
        f"avg {log.latency.mean_us:8.1f} us",
        f"  burst write into idle staging: {r['burst_ns'] / 1000:6.1f} us (NVRAM ack)",
        "",
        "sustained overwrites on a small log:",
        f"  device-byte amplification {churn_amp:4.2f}x   "
        f"GC moved {gc_moved} blocks",
    ]
    save_table("whatif_nvram_staging", "\n".join(lines))
    # full-stripe-only device writes sustain a higher rate than RMW...
    assert log.bandwidth_mb_s > 1.3 * draid.bandwidth_mb_s
    # ...bursts are acknowledged at NVRAM speed...
    assert r["burst_ns"] < 30_000
    # ...but the log pays background amplification once it churns (§2.3)
    assert churn_amp > 1.1
    assert gc_moved > 0
