"""What-if study: online rebuild interference vs throttle.

Not a paper figure — an operational question the paper's hot-spare story
(§1) raises: how hard may the rebuild run before foreground latency
suffers?  Sweeps the rebuild throttle and reports rebuild rate alongside
foreground p99, using dRAID's peer-to-peer reconstruction (the rebuild
reads never cross the host NIC, so interference is drive/server-side
only).
"""

import pytest

from benchmarks.conftest import save_table
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.rebuild import RebuildJob
from repro.sim import Environment
from repro.workloads import FioWorkload

KB = 1024
STRIPES = 48


def run_point(throttle_ns):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 8, 256 * KB))
    array.fail_drive(3)
    job = RebuildJob(array, 3, num_stripes=STRIPES, throttle_ns=throttle_ns)
    done = job.start()
    fio = FioWorkload(array, 64 * KB, read_fraction=0.7, queue_depth=16)
    foreground = fio.run(warmup_ns=500_000, measure_ns=15_000_000)
    env.run(until=done)
    return job.stats.rate_mb_s(), foreground


def run_all():
    results = {}
    for throttle_us in (0, 100, 500, 2000):
        results[throttle_us] = run_point(throttle_us * 1000)
    # baseline: no rebuild at all
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 8, 256 * KB))
    fio = FioWorkload(array, 64 * KB, read_fraction=0.7, queue_depth=16)
    results["none"] = (0.0, fio.run(warmup_ns=500_000, measure_ns=15_000_000))
    return results


@pytest.mark.benchmark(group="whatif")
def test_whatif_rebuild_interference(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["What-if: rebuild throttle vs foreground impact (dRAID, width 8)",
             f"  {'throttle':>10} {'rebuild MB/s':>14} {'fg MB/s':>10} {'fg p99 us':>11}"]
    for key, (rate, fg) in results.items():
        label = "no rebuild" if key == "none" else f"{key} us"
        lines.append(
            f"  {label:>10} {rate:14.0f} {fg.bandwidth_mb_s:10.0f} "
            f"{fg.latency.p99_us:11.0f}"
        )
    save_table("whatif_rebuild", "\n".join(lines))
    unthrottled_rate, unthrottled_fg = results[0]
    gentle_rate, gentle_fg = results[2000]
    _, baseline_fg = results["none"]
    # throttling trades rebuild speed for foreground latency
    assert unthrottled_rate > gentle_rate
    assert gentle_fg.latency.p99_ns <= unthrottled_fg.latency.p99_ns * 1.05
    # even unthrottled, the rebuild must not collapse the foreground
    assert unthrottled_fg.bandwidth_mb_s > 0.3 * baseline_fg.bandwidth_mb_s