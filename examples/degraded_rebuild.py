"""Degraded operation and bandwidth-aware reconstruction (§6).

Scenario: an 8-wide RAID-5 dRAID array loses a drive while serving a read
stream.  The example measures

1. degraded-read throughput for dRAID vs the SPDK-POC baseline (the paper's
   Figure 15 effect: dRAID keeps ~95% of normal-state throughput, the
   host-centric baseline drops to ~57%), and
2. the §6.2 bandwidth-aware reducer against random selection on a
   *heterogeneous* fabric where half the servers have 25 Gbps NICs
   (Figure 17b: the paper reports +53%).

Run:  python examples/degraded_rebuild.py
"""

from repro.baselines import SpdkRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.draid.reconstruction import BandwidthAwareSelector, RandomReducerSelector
from repro.net.nic import GOODPUT_100G, GOODPUT_25G
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import FioWorkload

KB = 1024


def degraded_read(system_cls, label: str) -> None:
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    array = system_cls(cluster, RaidGeometry(RaidLevel.RAID5, 8, 512 * KB))
    fio = FioWorkload(array, 128 * KB, read_fraction=1.0, queue_depth=64)
    normal = fio.run(measure_ns=10_000_000)
    array.fail_drive(0)
    fio2 = FioWorkload(array, 128 * KB, read_fraction=1.0, queue_depth=64, seed=99)
    degraded = fio2.run(measure_ns=10_000_000)
    keep = degraded.bandwidth_mb_s / normal.bandwidth_mb_s
    print(f"{label:6s}: normal {normal.bandwidth_mb_s:7.0f} MB/s -> degraded "
          f"{degraded.bandwidth_mb_s:7.0f} MB/s  (keeps {keep * 100:.0f}%)")


def reducer_comparison() -> None:
    """Reconstruction-heavy regime: every read rebuilds a lost chunk, so
    each I/O funnels width-2 partials through the chosen reducer's NIC —
    picking a 25 Gbps reducer bottlenecks the reduction."""
    from repro.experiments.fio_figures import _FailedChunkView

    rates = [GOODPUT_25G if i % 2 else GOODPUT_100G for i in range(8)]
    results = {}
    for name in ("random", "bandwidth-aware"):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=8, server_nic_rates=rates))
        array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 8, 512 * KB))
        if name == "bandwidth-aware":
            array.selector = BandwidthAwareSelector(cluster, seed=3)
        else:
            array.selector = RandomReducerSelector(seed=3)
        array.fail_drive(0)
        fio = FioWorkload(
            _FailedChunkView(array), 128 * KB, read_fraction=1.0, queue_depth=8,
            capacity=array.geometry.chunk_bytes * 2048,
        )
        result = fio.run(measure_ns=10_000_000)
        results[name] = result.bandwidth_mb_s
        print(f"  reducer={name:16s}: {results[name]:7.0f} MB/s "
              f"(avg latency {result.latency.mean_us:.0f} us)")
    gain = results["bandwidth-aware"] / results["random"] - 1
    print(f"  bandwidth-aware gain: +{gain * 100:.0f}%  (paper: +53%)")


def main() -> None:
    print("degraded read, homogeneous 100 Gbps fabric (Figure 15 effect):")
    degraded_read(SpdkRaid, "SPDK")
    degraded_read(DraidArray, "dRAID")
    print()
    print("degraded read stream on heterogeneous NICs (Figure 17b effect):")
    reducer_comparison()


if __name__ == "__main__":
    main()
