"""dRAID beyond RAID-5/6: a disaggregated Reed-Solomon array (§7).

The paper argues dRAID generalizes to arbitrary erasure codes because most
codes are linear: parities are sums of per-device partial results, so the
broadcast/reduce protocol applies unchanged.  This example builds an
RS(6+3) array over nine storage servers — data bdevs forward
coefficient-weighted partials to *three* parity reducers — then survives
three simultaneous drive failures.

Run:  python examples/erasure_coded_array.py
"""

import numpy as np

from repro.cluster import ClusterConfig, build_cluster
from repro.draid import EcDraidArray, EcGeometry
from repro.sim import Environment

KB = 1024
CHUNK = 64 * KB
STRIPES = 8


def main() -> None:
    env = Environment()
    cluster = build_cluster(
        env, ClusterConfig(num_servers=9, functional_capacity=STRIPES * CHUNK)
    )
    geometry = EcGeometry(num_drives=9, chunk_bytes=CHUNK, num_parity=3)
    array = EcDraidArray(cluster, geometry)
    print(f"array: {geometry!r} — tolerates {geometry.num_parity} failures")

    rng = np.random.default_rng(7)
    capacity = STRIPES * geometry.stripe_data_bytes
    blob = rng.integers(0, 256, capacity, dtype=np.uint8)
    env.run(until=array.write(0, capacity, blob))
    print(f"wrote {capacity // KB} KiB across {STRIPES} stripes "
          f"({array.stats.full_stripe_writes} full-stripe writes)")

    # partial write: each data bdev forwards THREE coefficient-weighted
    # partials, one per parity reducer
    cluster.reset_accounting()
    update = rng.integers(0, 256, 24 * KB, dtype=np.uint8)
    env.run(until=array.write(10 * KB, len(update), update))
    blob[10 * KB : 10 * KB + len(update)] = update
    host = cluster.host.nic
    print(f"partial write of 24 KiB: host TX {host.tx_bytes / KB:.0f} KiB "
          f"(the three parity updates never touched the host)")

    # three simultaneous failures — the array keeps serving reads
    for drive in (0, 3, 6):
        array.fail_drive(drive)
    print("failed drives 0, 3 and 6 simultaneously")
    data = env.run(until=array.read(0, capacity))
    assert np.array_equal(data, blob), "decode mismatch!"
    print(f"full read verified byte-for-byte via distributed RS decode "
          f"({array.stats.remote_reconstructions} remote reconstructions)")

    # degraded writes still work: parity partials route around the failures
    patch = rng.integers(0, 256, 4 * KB, dtype=np.uint8)
    env.run(until=array.write(0, len(patch), patch))
    blob[: len(patch)] = patch
    data = env.run(until=array.read(0, geometry.stripe_data_bytes))
    assert np.array_equal(data, blob[: geometry.stripe_data_bytes])
    print("degraded write + read-back verified under triple failure")


if __name__ == "__main__":
    main()
