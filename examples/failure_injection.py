"""Failure handling (§5.4): transient stalls, timeouts and full-stripe retry.

Injects a multi-millisecond stall on one storage server's poll-mode core in
the middle of a write burst, with the operation deadline tightened so the
op expires.  The host waits for every sub-operation to reach a final state
(no concurrent writes on a stripe), retries the stripe as a full-stripe
write, and the array stays byte-consistent — verified by reading back
against a shadow model and scrubbing every stripe's parity on disk.

Run:  python examples/failure_injection.py
"""

import numpy as np

from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.scrub import scrub_array
from repro.sim import Environment

KB = 1024
CHUNK = 64 * KB
STRIPES = 16


def main() -> None:
    env = Environment()
    cluster = build_cluster(
        env, ClusterConfig(num_servers=6, functional_capacity=STRIPES * CHUNK)
    )
    geometry = RaidGeometry(RaidLevel.RAID5, 6, CHUNK)
    array = DraidArray(cluster, geometry)
    array.timeout_ns = 400_000  # tight 0.4 ms deadline so the stall expires ops

    rng = np.random.default_rng(0)
    capacity = STRIPES * geometry.stripe_data_bytes
    model = np.zeros(capacity, dtype=np.uint8)

    # prime the array
    blob = rng.integers(0, 256, capacity, dtype=np.uint8)
    env.run(until=array.write(0, capacity, blob))
    model[:] = blob
    print(f"primed {capacity // KB} KiB across {STRIPES} stripes")

    # inject a 3 ms stall on server 2's core, then write through it
    victim = cluster.servers[2]
    victim.cpu.execute(3_000_000)
    print("injected 3 ms stall on server2's poll-mode core")

    for i in range(12):
        offset = (i * 37 * KB) % (capacity - 8 * KB)
        payload = rng.integers(0, 256, 8 * KB, dtype=np.uint8)
        env.run(until=array.write(offset, len(payload), payload))
        model[offset : offset + len(payload)] = payload
    print(f"12 writes completed; {array.stats.retries} expired op(s) "
          f"retried as full-stripe writes")

    # verify: every byte matches the model, on-disk parity consistent
    data = env.run(until=array.read(0, capacity))
    assert np.array_equal(data, model), "data diverged after retries!"
    report = scrub_array(cluster.drives(), geometry, STRIPES)
    assert report.clean, f"parity inconsistent on stripes {report.bad_stripes}"
    print("verified: byte-exact data and consistent parity on every stripe")

    # prolonged failure: the drive dies for good -> degraded state
    array.fail_drive(3)
    degraded = env.run(until=array.read(0, capacity))
    assert np.array_equal(degraded, model)
    print(f"drive 3 failed permanently; degraded reads still byte-exact "
          f"({array.stats.remote_reconstructions} remote reconstructions)")


if __name__ == "__main__":
    main()
