"""Online rebuild onto a hot spare from the storage pool (§1, §6).

A drive fails; a replacement is drawn from the shared pool and the array
rebuilds the lost member's contents onto it *while serving writes*.  The
rebuild watermark lets completed stripes treat the member as healthy again,
so concurrent writes land on the replacement directly and nothing is stale
when the rebuild finishes — verified byte-for-byte plus a full parity
scrub.

Run:  python examples/hot_spare_rebuild.py
"""

import numpy as np

from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.rebuild import RebuildJob
from repro.raid.scrub import scrub_array
from repro.sim import Environment

KB = 1024
CHUNK = 64 * KB
STRIPES = 24


def main() -> None:
    env = Environment()
    cluster = build_cluster(
        env, ClusterConfig(num_servers=8, functional_capacity=STRIPES * CHUNK)
    )
    geometry = RaidGeometry(RaidLevel.RAID5, 8, CHUNK)
    array = DraidArray(cluster, geometry)
    capacity = STRIPES * geometry.stripe_data_bytes
    rng = np.random.default_rng(1)
    model = rng.integers(0, 256, capacity, dtype=np.uint8)
    env.run(until=array.write(0, capacity, model.copy()))
    print(f"primed {capacity // KB} KiB across {STRIPES} stripes")

    victim = 5
    array.fail_drive(victim)
    cluster.drives()[victim]._data[:] = 0  # the replacement arrives blank
    print(f"drive {victim} failed; blank replacement attached from the pool")

    job = RebuildJob(array, victim, num_stripes=STRIPES, throttle_ns=100_000)
    done = job.start()

    def foreground_writer():
        """Client traffic racing the rebuild."""
        for i in range(20):
            offset = int(rng.integers(0, capacity - 4 * KB))
            payload = rng.integers(0, 256, 4 * KB, dtype=np.uint8)
            yield array.write(offset, len(payload), payload)
            model[offset : offset + len(payload)] = payload
            yield env.timeout(80_000)

    writes = env.process(foreground_writer())
    stats = env.run(until=done)
    env.run(until=writes)
    print(f"rebuild finished in {stats.elapsed_ns / 1e6:.2f} ms at "
          f"{stats.rate_mb_s():.0f} MB/s "
          f"({stats.data_chunks_rebuilt} data + "
          f"{stats.parity_chunks_rebuilt} parity chunks), with 20 foreground "
          f"writes racing it")

    assert not array.degraded
    data = env.run(until=array.read(0, capacity))
    assert np.array_equal(data, model), "data diverged!"
    report = scrub_array(cluster.drives(), geometry, STRIPES)
    assert report.clean, f"inconsistent stripes {report.bad_stripes}"
    print("verified: byte-exact contents and consistent parity on all stripes")


if __name__ == "__main__":
    main()
