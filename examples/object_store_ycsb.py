"""The paper's object-store application study (§9.6, Figures 20/21).

Runs the hash-based object store (128 KiB objects, uniform YCSB as in the
paper) on SPDK-POC RAID-5 and on dRAID, in normal and degraded state, and
prints KIOPS side by side.

Run:  python examples/object_store_ycsb.py
"""

from repro.apps import HashObjectStore
from repro.baselines import SpdkRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import YCSB_WORKLOADS, YcsbWorkload

KB = 1024
SYSTEMS = {"SPDK": SpdkRaid, "dRAID": DraidArray}


def run_one(system_cls, workload: str, degraded: bool) -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8))
    array = system_cls(cluster, RaidGeometry(RaidLevel.RAID5, 8, 512 * KB))
    if degraded:
        array.fail_drive(0)
    store = HashObjectStore(array, object_size=128 * KB, num_objects=200_000)
    ycsb = YcsbWorkload(store, YCSB_WORKLOADS[workload], num_keys=store.num_objects,
                        clients=32, uniform=True)
    return ycsb.run(measure_ns=10_000_000).kiops


def main() -> None:
    for degraded in (False, True):
        state = "degraded" if degraded else "normal"
        print(f"object store on {state}-state RAID-5 (KIOPS):")
        print(f"  {'workload':>10} {'SPDK':>8} {'dRAID':>8} {'gain':>7}")
        for workload in ("A", "B", "C", "D", "F"):
            spdk = run_one(SYSTEMS["SPDK"], workload, degraded)
            draid = run_one(SYSTEMS["dRAID"], workload, degraded)
            print(f"  {'YCSB-' + workload:>10} {spdk:8.1f} {draid:8.1f} "
                  f"{draid / spdk:6.2f}x")
        print()


if __name__ == "__main__":
    main()
