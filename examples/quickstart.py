"""Quickstart: build a dRAID array, do I/O, inspect the data path.

Builds the paper's default testbed (8 storage servers, 100 Gbps fabric,
RAID-5 with 512 KiB chunks) in *functional mode* — the simulated drives
hold real bytes — writes and reads back data, and shows the headline
property of dRAID: a partial-stripe write moves each user byte through the
host NIC exactly once, because partial parities flow peer-to-peer between
storage servers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment

KB = 1024


def main() -> None:
    env = Environment()
    cluster = build_cluster(
        env,
        ClusterConfig(num_servers=8, functional_capacity=64 * 512 * KB),
    )
    geometry = RaidGeometry(RaidLevel.RAID5, num_drives=8, chunk_bytes=512 * KB)
    array = DraidArray(cluster, geometry)
    print(f"virtual device: {geometry!r}, stripe={geometry.stripe_data_bytes // KB} KiB")

    # -- write a full stripe, then a partial update -------------------------
    rng = np.random.default_rng(0)
    stripe = rng.integers(0, 256, geometry.stripe_data_bytes, dtype=np.uint8)
    env.run(until=array.write(0, len(stripe), stripe))
    print(f"full-stripe write done at t={env.now / 1e6:.2f} ms "
          f"(mode counters: {array.stats.full_stripe_writes} full-stripe)")

    cluster.reset_accounting()
    update = rng.integers(0, 256, 128 * KB, dtype=np.uint8)
    env.run(until=array.write(0, len(update), update))
    host = cluster.host.nic
    print(f"partial write of 128 KiB: host TX {host.tx_bytes / KB:.0f} KiB, "
          f"host RX {host.rx_bytes / KB:.0f} KiB "
          f"(host-centric RAID would move ~512 KiB)")
    parity_server = geometry.parity_drives(0)[0]
    print(f"  partial parity flowed peer-to-peer: server{parity_server} "
          f"RX {cluster.servers[parity_server].nic.rx_bytes / KB:.0f} KiB")

    # -- read back and verify ------------------------------------------------
    data = env.run(until=array.read(0, geometry.stripe_data_bytes))
    expected = stripe.copy()
    expected[: len(update)] = update
    assert np.array_equal(data, expected), "read-back mismatch!"
    print("read-back verified byte-for-byte")

    # -- survive a drive failure ----------------------------------------------
    array.fail_drive(geometry.data_drive(0, 0))
    degraded = env.run(until=array.read(0, 128 * KB))
    assert np.array_equal(degraded, expected[: 128 * KB])
    print(f"degraded read after failing drive {geometry.data_drive(0, 0)}: "
          f"reconstructed correctly ({array.stats.remote_reconstructions} "
          f"remote reconstruction)")


if __name__ == "__main__":
    main()
