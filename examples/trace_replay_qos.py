"""Open-loop trace replay, tenant QoS and SSD garbage collection.

Production arrays do not see closed-loop benchmark traffic: bursts arrive
whether or not earlier I/O finished, tenants share the array under byte
budgets (§5.5), and SSD garbage collection injects latency spikes (the
problem the paper's related work — SWAN, TTFLASH, FusionRAID — attacks).
This example combines the three:

1. replay a bursty trace open-loop against dRAID and measure p99 latency;
2. repeat on GC-prone drives and watch the tail inflate;
3. cap a noisy neighbour with a token-bucket budget and show the victim
   tenant's tail recovering.

Run:  python examples/trace_replay_qos.py
"""

from repro.cluster import ClusterConfig, build_cluster
from repro.cluster.qos import RateLimitedDevice, TokenBucket
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.storage import DELL_AGN_MU
from repro.workloads import FioWorkload
from repro.workloads.trace import TraceWorkload, bursty_trace

KB = 1024
MB = 1_000_000


def build(profile=DELL_AGN_MU):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=8, drive_profile=profile))
    array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 8, 512 * KB))
    return env, cluster, array


def replay(profile, label):
    env, cluster, array = build(profile)
    trace = bursty_trace(
        num_bursts=6, burst_iops=60_000, burst_ns=2_000_000, gap_ns=3_000_000,
        io_bytes=64 * KB, capacity=array.geometry.stripe_data_bytes * 512,
        read_fraction=0.3, seed=11,
    )
    result = TraceWorkload(array, trace).run()
    print(f"  {label:28s} {result.completed:5d} I/Os  "
          f"p50 {result.latency.p50_ns / 1000:7.0f} us   "
          f"p99 {result.latency.p99_ns / 1000:7.0f} us   "
          f"peak inflight {result.peak_inflight}")
    return result


def qos_demo():
    env, cluster, array = build()
    # noisy neighbour: unthrottled large sequential writes
    noisy = FioWorkload(array, 512 * KB, read_fraction=0.0, queue_depth=32, seed=5)
    stop = env.event()
    for _ in range(32):
        env.process(noisy._worker(stop))
    victim = FioWorkload(array, 16 * KB, read_fraction=1.0, queue_depth=4, seed=6)
    contended = victim.run(measure_ns=10_000_000)
    stop.succeed()

    env2, cluster2, array2 = build()
    limited = RateLimitedDevice(array2, TokenBucket(env2, 500 * MB, burst_bytes=2 << 20))
    noisy2 = FioWorkload(limited, 512 * KB, read_fraction=0.0, queue_depth=32, seed=5)
    stop2 = env2.event()
    for _ in range(32):
        env2.process(noisy2._worker(stop2))
    victim2 = FioWorkload(array2, 16 * KB, read_fraction=1.0, queue_depth=4, seed=6)
    protected = victim2.run(measure_ns=10_000_000)
    stop2.succeed()

    print(f"  victim p99 with unthrottled neighbour: "
          f"{contended.latency.p99_us:7.0f} us")
    print(f"  victim p99 with 500 MB/s budget (§5.5): "
          f"{protected.latency.p99_us:7.0f} us")


def main() -> None:
    print("open-loop bursty trace on dRAID (8 targets):")
    clean = replay(DELL_AGN_MU, "pristine drives")
    gc_profile = DELL_AGN_MU.with_gc(after_bytes=2 * MB, pause_ns=4_000_000)
    gc = replay(gc_profile, "GC-prone drives")
    inflation = gc.latency.p99_ns / max(1, clean.latency.p99_ns)
    print(f"  GC inflates p99 by {inflation:.1f}x — the tail problem "
          f"SWAN/TTFLASH/FusionRAID attack")
    print()
    print("tenant isolation with a token-bucket budget:")
    qos_demo()


if __name__ == "__main__":
    main()
