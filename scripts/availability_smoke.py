#!/usr/bin/env python
"""CI availability smoke: a seeded mini Monte Carlo durability grid.

Every line is fully determined by the (system, process, seed) triple —
fault timelines, foreground workload, rebuild scheduling and exposure
sampling all key off seeded RNGs and the sim clock — so two runs of this
script must be byte-identical, and both must match the committed golden
(``tests/golden/availability_smoke.golden``).  The script also enforces
the figure's headline invariant on the mini grid: under the correlated
storm process dRAID must not lose more data than either host-centric
baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.availability import (  # noqa: E402
    AVAIL_PROCESSES,
    AVAIL_SYSTEMS,
    aggregate_rows,
    availability_point,
)

SMOKE_SEEDS = (1, 2)
GOLDEN = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "golden"
    / "availability_smoke.golden"
)


def smoke_report() -> str:
    lines = []
    results = []
    for process in AVAIL_PROCESSES:
        for system in AVAIL_SYSTEMS:
            for seed in SMOKE_SEEDS:
                r = availability_point(system, process, seed)
                results.append(r)
                lines.append(
                    f"{process:<12} {system:<6} seed={seed} "
                    f"loss={r['loss_events']} "
                    f"worst={r['worst_erasures']} "
                    f"degraded_ms={r['degraded_ms']:.3f} "
                    f"zero_ms={r['zero_redundancy_ms']:.3f} "
                    f"rebuild_ms={r['rebuild_ms']:.3f} "
                    f"rebuilt={r['rebuilds_completed']} "
                    f"spare_waits={r['spare_waits']}"
                )
    losses = {
        (r["process"], r["system"]): 0 for r in results
    }
    for r in results:
        losses[(r["process"], r["system"])] += r["loss_events"]
    for baseline in ("Linux", "SPDK"):
        if losses[("correlated", "dRAID")] > losses[("correlated", baseline)]:
            raise SystemExit(
                f"dRAID lost more data than {baseline} under correlated storms: "
                f"{losses}"
            )
    for row in aggregate_rows(results):
        metrics = " ".join(
            f"{key}={value:.3f}" for key, value in sorted(row.metrics.items())
        )
        lines.append(f"agg {row.x:<12} {row.system:<6} {metrics}")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"regenerate {GOLDEN} instead of printing to stdout",
    )
    args = parser.parse_args()
    report = smoke_report()
    if args.write_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(report)
        print(f"wrote {GOLDEN}")
        return 0
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
