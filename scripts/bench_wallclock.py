#!/usr/bin/env python
"""Wall-clock benchmark harness: kernel events/sec + figure sweep seconds.

Writes ``BENCH_wallclock.json`` so every PR has a perf trajectory to track::

    PYTHONPATH=src python scripts/bench_wallclock.py                 # default set
    PYTHONPATH=src python scripts/bench_wallclock.py --figures fig11,fig13
    PYTHONPATH=src python scripts/bench_wallclock.py --jobs 8        # parallel sweeps
    PYTHONPATH=src python scripts/bench_wallclock.py --serial-too    # record speedup

The kernel section times the canonical microbench workloads in
``repro.sim.benchkit`` (simulated operations per wall-clock second); the
figures section times whole sweep regenerations, serially and (optionally)
with the parallel executor, recording the measured speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.registry import EXPERIMENTS  # noqa: E402
from repro.experiments.runner import JOBS_ENV_VAR, resolve_jobs  # noqa: E402
from repro.sim.benchkit import KERNEL_WORKLOADS, run_workload  # noqa: E402

DEFAULT_FIGURES = ("fig11", "fig13")


def time_figure(exp_id: str, jobs: int) -> float:
    """Seconds to regenerate one figure with ``jobs`` sweep workers."""
    previous = os.environ.get(JOBS_ENV_VAR)
    os.environ[JOBS_ENV_VAR] = str(jobs)
    try:
        start = time.perf_counter()
        EXPERIMENTS[exp_id](True)
        return time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop(JOBS_ENV_VAR, None)
        else:
            os.environ[JOBS_ENV_VAR] = previous


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figures", default=",".join(DEFAULT_FIGURES),
        help="comma-separated experiment ids to time (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="sweep worker processes (default: REPRO_JOBS or all cores)",
    )
    parser.add_argument(
        "--serial-too", action="store_true",
        help="also time each figure with jobs=1 and record the speedup",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="kernel microbench repeats, best-of (default: %(default)s)",
    )
    parser.add_argument(
        "--output", default="BENCH_wallclock.json",
        help="output path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    figures = [f for f in args.figures.split(",") if f]
    unknown = [f for f in figures if f not in EXPERIMENTS]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2
    jobs = resolve_jobs(args.jobs)

    suite_start = time.perf_counter()
    report = {
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "kernel": {},
        "figures": {},
    }

    print("== kernel microbenchmarks ==")
    for name in KERNEL_WORKLOADS:
        events_per_s, ops = run_workload(name, repeats=args.repeats)
        report["kernel"][name] = {
            "events_per_s": round(events_per_s, 1),
            "operations": ops,
        }
        print(f"  {name:<18} {events_per_s:>12,.0f} events/s")

    print(f"== figure sweeps (jobs={jobs}) ==")
    for exp_id in figures:
        entry = {"jobs": jobs, "seconds": round(time_figure(exp_id, jobs), 3)}
        if args.serial_too and jobs > 1:
            entry["serial_seconds"] = round(time_figure(exp_id, 1), 3)
            entry["speedup"] = round(entry["serial_seconds"] / entry["seconds"], 2)
        report["figures"][exp_id] = entry
        extra = (
            f"  (serial {entry['serial_seconds']:.2f}s, {entry['speedup']}x)"
            if "serial_seconds" in entry else ""
        )
        print(f"  {exp_id:<8} {entry['seconds']:>8.2f}s{extra}")

    report["suite_total_s"] = round(time.perf_counter() - suite_start, 3)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out} (suite total {report['suite_total_s']:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
