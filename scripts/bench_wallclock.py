#!/usr/bin/env python
"""Wall-clock benchmark harness: kernel events/sec + figure sweep seconds.

Maintains ``BENCH_wallclock.json`` so every PR has a perf trajectory: the
``latest`` section holds the most recent run and ``history`` accumulates a
timestamped entry per invocation (the file is read-modify-write, never
clobbered)::

    PYTHONPATH=src python scripts/bench_wallclock.py                 # default set
    PYTHONPATH=src python scripts/bench_wallclock.py --quick         # kernel only
    PYTHONPATH=src python scripts/bench_wallclock.py --figures fig11,fig13
    PYTHONPATH=src python scripts/bench_wallclock.py --jobs 8        # parallel sweeps
    PYTHONPATH=src python scripts/bench_wallclock.py --serial-too    # record speedup
    PYTHONPATH=src python scripts/bench_wallclock.py --quick --floor-pingpong 500000

The kernel section times the canonical microbench workloads in
``repro.sim.benchkit`` (simulated operations per wall-clock second) and
records each workload's calendar event count, so events/s is auditable
against the fixed operation count.  The figures section times whole sweep
regenerations, serially and (optionally) with the parallel executor,
recording the measured speedup.  ``--floor-pingpong`` turns the run into a
CI gate: exit non-zero when pingpong events/s lands below the floor.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.registry import EXPERIMENTS  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    JOBS_ENV_VAR,
    resolve_jobs,
    warm_pool,
)
from repro.sim import benchkit  # noqa: E402
from repro.sim.benchkit import KERNEL_WORKLOADS, run_workload  # noqa: E402

DEFAULT_FIGURES = ("fig11", "fig13")

#: Cap on retained history entries (oldest dropped first).
HISTORY_LIMIT = 200


def time_figure(exp_id: str, jobs: int) -> float:
    """Seconds to regenerate one figure with ``jobs`` sweep workers."""
    previous = os.environ.get(JOBS_ENV_VAR)
    os.environ[JOBS_ENV_VAR] = str(jobs)
    try:
        if jobs > 1:
            # measure steady-state sweep time: worker start-up and module
            # pre-import are one-time session costs, not per-sweep costs
            warm_pool(jobs)
        start = time.perf_counter()
        EXPERIMENTS[exp_id](True)
        return time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop(JOBS_ENV_VAR, None)
        else:
            os.environ[JOBS_ENV_VAR] = previous


def load_report(path: pathlib.Path) -> dict:
    """Existing report file, migrated to the latest+history schema."""
    if not path.exists():
        return {"latest": {}, "history": []}
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {"latest": {}, "history": []}
    if "history" in data and isinstance(data.get("history"), list):
        return data
    # pre-history schema: the whole file was one (unstamped) run record
    return {"latest": data, "history": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figures", default=None,
        help="comma-separated experiment ids to time "
        f"(default: {','.join(DEFAULT_FIGURES)}; empty string skips figures)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="sweep worker processes (default: REPRO_JOBS or all cores)",
    )
    parser.add_argument(
        "--serial-too", action="store_true",
        help="also time each figure with jobs=1 and record the speedup",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="kernel microbench repeats, best-of (default: %(default)s)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fast CI mode: kernel workloads only (no figure sweeps), "
        "best-of-2 unless --repeats is given explicitly",
    )
    parser.add_argument(
        "--floor-pingpong", type=float, default=None, metavar="EVENTS_PER_S",
        help="fail (exit 1) when pingpong events/s is below this floor",
    )
    parser.add_argument(
        "--output", default="BENCH_wallclock.json",
        help="output path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.figures is None:
        figures = [] if args.quick else list(DEFAULT_FIGURES)
    else:
        figures = [f for f in args.figures.split(",") if f]
    unknown = [f for f in figures if f not in EXPERIMENTS]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2
    repeats = args.repeats
    if args.quick and "--repeats" not in (argv if argv is not None else sys.argv):
        repeats = 2
    jobs = resolve_jobs(args.jobs)

    suite_start = time.perf_counter()
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "quick": args.quick,
        "kernel": {},
        "figures": {},
    }

    print("== kernel microbenchmarks ==")
    for name in KERNEL_WORKLOADS:
        events_per_s, ops = run_workload(name, repeats=repeats)
        entry["kernel"][name] = {
            "events_per_s": round(events_per_s, 1),
            "operations": ops,
            "calendar_events": benchkit.LAST_EVENT_COUNT,
        }
        print(
            f"  {name:<18} {events_per_s:>12,.0f} events/s   "
            f"({ops:,} ops, {benchkit.LAST_EVENT_COUNT:,} calendar events)"
        )

    if figures:
        print(f"== figure sweeps (jobs={jobs}) ==")
    for exp_id in figures:
        fig = {"jobs": jobs, "seconds": round(time_figure(exp_id, jobs), 3)}
        if args.serial_too and jobs > 1:
            fig["serial_seconds"] = round(time_figure(exp_id, 1), 3)
            fig["speedup"] = round(fig["serial_seconds"] / fig["seconds"], 2)
        entry["figures"][exp_id] = fig
        extra = (
            f"  (serial {fig['serial_seconds']:.2f}s, {fig['speedup']}x)"
            if "serial_seconds" in fig else ""
        )
        print(f"  {exp_id:<8} {fig['seconds']:>8.2f}s{extra}")

    entry["suite_total_s"] = round(time.perf_counter() - suite_start, 3)
    out = pathlib.Path(args.output)
    report = load_report(out)
    report["latest"] = entry
    report["history"] = (report["history"] + [entry])[-HISTORY_LIMIT:]
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"wrote {out} (suite total {entry['suite_total_s']:.1f}s, "
        f"{len(report['history'])} history entries)"
    )

    if args.floor_pingpong is not None:
        measured = entry["kernel"]["pingpong"]["events_per_s"]
        if measured < args.floor_pingpong:
            print(
                f"FAIL: pingpong {measured:,.0f} events/s is below the "
                f"floor {args.floor_pingpong:,.0f}",
                file=sys.stderr,
            )
            return 1
        print(
            f"floor check OK: pingpong {measured:,.0f} >= "
            f"{args.floor_pingpong:,.0f} events/s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
