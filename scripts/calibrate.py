"""Quick calibration harness used during development (not a deliverable)."""

import sys
import time

from repro.baselines import MdRaid, SpdkRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import FioWorkload

KB = 1024
SYSTEMS = {"linux": MdRaid, "spdk": SpdkRaid, "draid": DraidArray}


def run_point(system, servers, io_size, read_fraction, qd=32, level=RaidLevel.RAID5,
              chunk=512 * KB, failed=0, measure_ns=30_000_000):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=servers))
    array = SYSTEMS[system](cluster, RaidGeometry(level, servers, chunk))
    for i in range(failed):
        array.fail_drive(i)
    fio = FioWorkload(array, io_size, read_fraction=read_fraction, queue_depth=qd)
    return fio.run(measure_ns=measure_ns)


if __name__ == "__main__":
    t0 = time.time()
    for system in ["linux", "spdk", "draid"]:
        r = run_point(system, 6, 128 * KB, read_fraction=1.0)
        print(f"read  6t 128K {system:6s}: {r.bandwidth_mb_s:8.0f} MB/s  "
              f"lat {r.latency.mean_us:7.0f} us  ops {r.ops_completed}")
    for system in ["linux", "spdk", "draid"]:
        r = run_point(system, 8, 128 * KB, read_fraction=0.0)
        print(f"write 8t 128K {system:6s}: {r.bandwidth_mb_s:8.0f} MB/s  "
              f"lat {r.latency.mean_us:7.0f} us  ops {r.ops_completed}")
    print(f"[{time.time() - t0:.1f}s]")
