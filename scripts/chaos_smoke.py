#!/usr/bin/env python
"""CI chaos smoke: a fixed grid of seeded fault schedules, printed as
deterministic one-line outcomes.

Every line is fully determined by the (system, seed) pair — fault times,
workload, retry jitter and recovery all key off seeded RNGs and the sim
clock — so two runs of this script must be byte-identical, and both must
match the committed golden (``tests/golden/chaos_smoke.golden``).  A diff
means the datapath lost determinism (or the golden needs a deliberate
regeneration via ``--write-golden``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.chaos import CHAOS_SYSTEMS, run_chaos_schedule  # noqa: E402

SMOKE_SEEDS = (1, 2, 3, 4)
GOLDEN = Path(__file__).resolve().parent.parent / "tests" / "golden" / "chaos_smoke.golden"


def smoke_report() -> str:
    lines = []
    for seed in SMOKE_SEEDS:
        for system in CHAOS_SYSTEMS:
            outcome = run_chaos_schedule(system, seed)
            lines.append(outcome.row())
            lines.append(f"      {outcome.fault_summary}")
            if not outcome.ok:
                raise SystemExit(f"chaos schedule failed:\n{outcome.row()}")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"regenerate {GOLDEN} instead of printing to stdout",
    )
    args = parser.parse_args()
    report = smoke_report()
    if args.write_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(report)
        print(f"wrote {GOLDEN}")
        return 0
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
