#!/usr/bin/env python
"""Execute every ``python`` code fence in the documentation (CI ``docs`` job).

Markdown examples rot silently: an API rename leaves the README showing
calls that no longer exist.  This script extracts each fenced
```` ```python ```` block from the documentation files below and executes
the blocks of one file cumulatively (later fences may use names bound by
earlier ones, exactly as a reader would type them into one session).

A fence whose first line is ``# doc-example: compile-only`` is only
compiled, not run — for snippets that illustrate an API shape without a
complete setup.  Bash fences and plain fences are ignored.

Exit status 0 when every example runs; 1 with the failing file/fence
otherwise.
"""

from __future__ import annotations

import re
import sys
import time
import traceback
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: Root-level documentation files whose python fences must execute
#: (missing files are skipped so this script works on partial checkouts).
#: Root files are an explicit list — the repo root also holds research
#: notes (PAPERS.md, SNIPPETS.md) whose fences are quotations, not
#: examples.  Everything under ``docs/`` is discovered automatically so a
#: new guide cannot be forgotten here.
ROOT_DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
)


def doc_files() -> list:
    """Return all documentation files to check, repo-relative."""
    names = [n for n in ROOT_DOC_FILES if (ROOT / n).exists()]
    names += sorted(
        str(p.relative_to(ROOT)) for p in (ROOT / "docs").glob("*.md")
    )
    return names

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
COMPILE_ONLY = "# doc-example: compile-only"


def check_file(path: Path) -> int:
    """Run every python fence of one file; returns the number of failures."""
    fences = FENCE.findall(path.read_text())
    if not fences:
        return 0
    namespace: dict = {"__name__": "__doc_example__"}
    failures = 0
    for i, source in enumerate(fences, 1):
        label = f"{path.relative_to(ROOT)} fence {i}/{len(fences)}"
        try:
            code = compile(source, f"<{label}>", "exec")
            if not source.lstrip().startswith(COMPILE_ONLY):
                started = time.time()
                exec(code, namespace)  # noqa: S102 - the point of this lint
                print(f"ok   {label} ({time.time() - started:.1f}s)")
            else:
                print(f"ok   {label} (compile-only)")
        except Exception:
            failures += 1
            print(f"FAIL {label}", file=sys.stderr)
            traceback.print_exc()
    return failures


def main() -> int:
    failures = 0
    for name in doc_files():
        failures += check_file(ROOT / name)
    if failures:
        print(f"{failures} documentation example(s) failed", file=sys.stderr)
        return 1
    print("doc examples: all python fences execute")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
