#!/usr/bin/env python
"""Docstring lint for the public API surface (CI ``docs`` job).

Walks every ``repro.*`` package, imports it, and requires a non-empty
docstring on the package itself and on every symbol its ``__init__``
exports (via ``__all__``, or every public attribute otherwise).  Plain
data constants (ints, floats, strings, tuples, dicts) cannot carry
docstrings in Python and are exempt; everything else — classes,
functions, dataclasses — must say what it is, and quantities must name
their units (ns, bytes, MB/s) in the text.

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402

#: Types that cannot carry a docstring of their own; their meaning must be
#: documented by a ``#:`` comment at the definition site instead.
_DATA_TYPES = (int, float, complex, str, bytes, tuple, list, dict, set, frozenset)


def iter_packages():
    """Yield ``repro`` and every importable ``repro.*`` (sub)package."""
    yield repro
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        if info.ispkg:
            yield importlib.import_module(info.name)


def exported_names(package) -> list:
    names = getattr(package, "__all__", None)
    if names is not None:
        return list(names)
    return [
        name
        for name, value in vars(package).items()
        if not name.startswith("_") and not inspect.ismodule(value)
    ]


def docstring_problem(name: str, obj) -> str:
    """Return a complaint string for ``obj``'s docstring, or '' if fine."""
    if inspect.isclass(obj):
        # inspect.getdoc() walks the MRO, which lets an Enum subclass pass on
        # enum.Enum's boilerplate; require a docstring on the class itself
        own = vars(obj).get("__doc__") or ""
        if not own.strip():
            return "docstring missing (inherited docstrings do not count)"
        # @dataclass without a docstring synthesizes "Name(field: type, ...)"
        if own.startswith(obj.__name__ + "(") and own.endswith(")"):
            return "auto-generated dataclass signature is not a docstring"
        return ""
    if not (inspect.getdoc(obj) or "").strip():
        return "docstring missing"
    return ""


def main() -> int:
    failures = []
    for package in iter_packages():
        if not (package.__doc__ or "").strip():
            failures.append(f"{package.__name__}: package docstring missing")
        for name in exported_names(package):
            obj = getattr(package, name, None)
            if obj is None and not hasattr(package, name):
                failures.append(f"{package.__name__}.{name}: exported but undefined")
                continue
            if inspect.ismodule(obj) or isinstance(obj, _DATA_TYPES) or obj is None:
                continue
            problem = docstring_problem(name, obj)
            if problem:
                failures.append(f"{package.__name__}.{name}: {problem}")
    if failures:
        print(f"{len(failures)} undocumented exports:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("docstring lint: all public exports documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
