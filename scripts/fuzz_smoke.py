#!/usr/bin/env python
"""CI fuzz smoke: a fixed grid of differential-fuzz schedules, printed as
deterministic one-line outcomes.

Ten SHA-256-derived seeds rotate round-robin over the three controllers
(MD, SPDK POC, dRAID) with the kernel sanitizer and protocol checker
armed.  Every line is fully determined by the schedule — op offsets,
payload seeds and fault times are frozen into the schedule at generation
time — so two runs of this script must be byte-identical, and both must
match the committed golden (``tests/golden/fuzz_smoke.golden``).  A diff
means the datapath (or the fuzzer harness) lost determinism, or the
golden needs a deliberate regeneration via ``--write-golden``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.verify.fuzz import (  # noqa: E402
    FUZZ_SYSTEMS,
    derive_seed,
    make_schedule,
    run_schedule,
)

SMOKE_SEEDS = 10
SMOKE_BASE_SEED = 0
GOLDEN = Path(__file__).resolve().parent.parent / "tests" / "golden" / "fuzz_smoke.golden"


def smoke_report() -> str:
    lines = []
    for i in range(SMOKE_SEEDS):
        system = FUZZ_SYSTEMS[i % len(FUZZ_SYSTEMS)]
        schedule = make_schedule(system, derive_seed(SMOKE_BASE_SEED, i))
        outcome = run_schedule(schedule)
        lines.append(outcome.row())
        if not outcome.ok:
            raise SystemExit(
                f"fuzz schedule failed:\n{outcome.row()}\n{outcome.detail}"
            )
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"regenerate {GOLDEN} instead of printing to stdout",
    )
    args = parser.parse_args()
    report = smoke_report()
    if args.write_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(report)
        print(f"wrote {GOLDEN}")
        return 0
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
