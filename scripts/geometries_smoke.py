#!/usr/bin/env python
"""CI geometries smoke: the full layout x code x controller grid, printed
as deterministic per-cell lines.

Every cell is fully determined by its axes — prefill payload, FIO offsets,
chaos storm and rebuild sweep all key off fixed seeds and the sim clock —
so two runs of this script must be byte-identical, and both must match the
committed golden (``tests/golden/geometries_smoke.golden``).  The script
additionally asserts the figure's headline claim: for every (code,
controller) pair the declustered distributed-spare rebuild completes
strictly faster than the stock rotating layout's replacement sweep.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.geometries import geometries_rows  # noqa: E402

GOLDEN = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "golden"
    / "geometries_smoke.golden"
)


def smoke_report() -> str:
    rows = geometries_rows(fast=True, jobs=1)
    lines = []
    rebuild_ms = {}
    for row in rows:
        layout, code = row.x.split("/")
        rebuild_ms[(layout, code, row.system)] = row.metrics["rebuild_ms"]
        lines.append(
            f"{row.x:>15s} {row.system:>8s} "
            f"rebuild_ms={row.metrics['rebuild_ms']:.3f} "
            f"degraded_mb_s={row.metrics['degraded_mb_s']:.1f} "
            f"p99_ms={row.metrics['degraded_p99_ms']:.3f} "
            f"chaos_ok={row.metrics['chaos_ok']:.0f}"
        )
        if row.metrics["chaos_ok"] != 1.0:
            raise SystemExit(f"chaos verification failed for {row.x} {row.system}")
    for (layout, code, system), ms in sorted(rebuild_ms.items()):
        if layout != "declustered":
            continue
        rotating = rebuild_ms[("rotating", code, system)]
        if not ms < rotating:
            raise SystemExit(
                f"declustered rebuild not faster: {code}/{system} "
                f"declustered={ms:.3f}ms rotating={rotating:.3f}ms"
            )
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"regenerate {GOLDEN} instead of printing to stdout",
    )
    args = parser.parse_args()
    report = smoke_report()
    if args.write_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(report)
        print(f"wrote {GOLDEN}")
        return 0
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
