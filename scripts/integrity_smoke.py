#!/usr/bin/env python
"""CI integrity smoke: seeded corruption storms, printed as deterministic
one-line outcomes.

Each schedule mixes silent-corruption events (bit rot, lost / torn /
misdirected writes) into a chaos fault storm against a checksum-armed
array, runs the recovery playbook and requires the hard gate: zero
chunks still corrupt, a clean parity scrub and byte-exact shadow-model
data.  One seed additionally runs the online scrub daemon *during* the
storm.  Everything keys off the (system, seed) pair, so two runs must be
byte-identical and match the committed golden
(``tests/golden/integrity_smoke.golden``); regenerate deliberately with
``--write-golden``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.chaos import CHAOS_SYSTEMS, run_chaos_schedule  # noqa: E402

SMOKE_SEEDS = (101, 102, 103)
#: this seed also runs a concurrent ScrubDaemon through the storm
SCRUBBED_SEED = 105
SCRUB_PACE_NS = 500_000
CORRUPTION_EVENTS = 4
GOLDEN = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "golden"
    / "integrity_smoke.golden"
)


def smoke_report() -> str:
    lines = []
    grid = [(seed, None) for seed in SMOKE_SEEDS] + [(SCRUBBED_SEED, SCRUB_PACE_NS)]
    for seed, pace in grid:
        for system in CHAOS_SYSTEMS:
            outcome = run_chaos_schedule(
                system,
                seed,
                corruption_events=CORRUPTION_EVENTS,
                scrub_pace_ns=pace,
            )
            lines.append(outcome.integrity_row())
            lines.append(f"      {outcome.integrity_summary}")
            if not outcome.ok:
                raise SystemExit(
                    f"integrity schedule failed:\n{outcome.integrity_row()}"
                )
    return "\n".join(lines) + "\n"


def export_trace(path: str) -> None:
    """Run one observability-armed dRAID point and write its Chrome trace."""
    from repro.experiments.common import traced_fio_point
    from repro.obs import breakdown_table, chrome_trace_json, request_breakdowns

    result, obs = traced_fio_point("dRAID", io_size=4096, fast=True)
    breakdowns = request_breakdowns(obs.tracer)
    print(f"dRAID 4096B: {result.bandwidth_mb_s:.1f} MB/s, "
          f"{len(breakdowns)} traced requests", file=sys.stderr)
    print(breakdown_table(breakdowns, limit=10), file=sys.stderr)
    Path(path).write_text(chrome_trace_json(obs.tracer))
    print(f"trace -> {path}", file=sys.stderr)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"regenerate {GOLDEN} instead of printing to stdout",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="also run one traced dRAID 4 KiB point and write a "
             "Perfetto-loadable Chrome trace JSON to PATH (breakdown table "
             "goes to stderr so the smoke report stays golden-clean)",
    )
    args = parser.parse_args()
    if args.trace:
        export_trace(args.trace)
    report = smoke_report()
    if args.write_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(report)
        print(f"wrote {GOLDEN}")
        return 0
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
