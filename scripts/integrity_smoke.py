#!/usr/bin/env python
"""CI integrity smoke: seeded corruption storms, printed as deterministic
one-line outcomes.

Each schedule mixes silent-corruption events (bit rot, lost / torn /
misdirected writes) into a chaos fault storm against a checksum-armed
array, runs the recovery playbook and requires the hard gate: zero
chunks still corrupt, a clean parity scrub and byte-exact shadow-model
data.  One seed additionally runs the online scrub daemon *during* the
storm.  Everything keys off the (system, seed) pair, so two runs must be
byte-identical and match the committed golden
(``tests/golden/integrity_smoke.golden``); regenerate deliberately with
``--write-golden``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.chaos import CHAOS_SYSTEMS, run_chaos_schedule  # noqa: E402

SMOKE_SEEDS = (101, 102, 103)
#: this seed also runs a concurrent ScrubDaemon through the storm
SCRUBBED_SEED = 105
SCRUB_PACE_NS = 500_000
CORRUPTION_EVENTS = 4
GOLDEN = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "golden"
    / "integrity_smoke.golden"
)


def smoke_report() -> str:
    lines = []
    grid = [(seed, None) for seed in SMOKE_SEEDS] + [(SCRUBBED_SEED, SCRUB_PACE_NS)]
    for seed, pace in grid:
        for system in CHAOS_SYSTEMS:
            outcome = run_chaos_schedule(
                system,
                seed,
                corruption_events=CORRUPTION_EVENTS,
                scrub_pace_ns=pace,
            )
            lines.append(outcome.integrity_row())
            lines.append(f"      {outcome.integrity_summary}")
            if not outcome.ok:
                raise SystemExit(
                    f"integrity schedule failed:\n{outcome.integrity_row()}"
                )
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"regenerate {GOLDEN} instead of printing to stdout",
    )
    args = parser.parse_args()
    report = smoke_report()
    if args.write_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(report)
        print(f"wrote {GOLDEN}")
        return 0
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
