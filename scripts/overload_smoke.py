#!/usr/bin/env python
"""CI overload smoke: a seeded mini goodput-collapse grid.

Every line is fully determined by the (system, protected, point) triple —
open-loop arrivals, admission decisions, deadline checks and retry-budget
accounting all key off seeded RNGs and the sim clock — so two runs of this
script must be byte-identical, and both must match the committed golden
(``tests/golden/overload_smoke.golden``).  The script also enforces the
figure's headline invariants on the mini grid, for every controller:

* **collapse** — the raw datapath's goodput at 2x saturation must fall
  below 60% of its goodput at saturation;
* **retention** — the protected datapath must retain at least 80% of the
  saturation goodput at 2x offered load;
* **metastability** — after the load-spike storm, protected goodput must
  be at least double raw goodput.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.overload import (  # noqa: E402
    OVERLOAD_SYSTEMS,
    metastable_point,
    overload_point,
)

SMOKE_MULTIPLIERS = (1.0, 2.0)
GOLDEN = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "golden"
    / "overload_smoke.golden"
)


def smoke_report() -> str:
    lines = []
    goodput = {}
    for system in OVERLOAD_SYSTEMS:
        for protected in (False, True):
            arm = "protected" if protected else "raw"
            for multiplier in SMOKE_MULTIPLIERS:
                r = overload_point(system, protected, multiplier)
                goodput[(system, arm, r["x"])] = r["goodput_mb_s"]
                lines.append(_format(system, arm, r))
            r = metastable_point(system, protected)
            goodput[(system, arm, "meta")] = r["goodput_mb_s"]
            lines.append(_format(system, arm, r))
    for system in OVERLOAD_SYSTEMS:
        raw_peak = goodput[(system, "raw", "1x")]
        if goodput[(system, "raw", "2x")] > 0.6 * raw_peak:
            raise SystemExit(
                f"{system}: raw goodput did not collapse past saturation "
                f"({goodput[(system, 'raw', '2x')]:.0f} vs peak {raw_peak:.0f})"
            )
        peak = goodput[(system, "protected", "1x")]
        if goodput[(system, "protected", "2x")] < 0.8 * peak:
            raise SystemExit(
                f"{system}: protected goodput fell below 80% retention at 2x "
                f"({goodput[(system, 'protected', '2x')]:.0f} vs peak {peak:.0f})"
            )
        if goodput[(system, "protected", "meta")] < 2.0 * goodput[(system, "raw", "meta")]:
            raise SystemExit(
                f"{system}: protection did not survive the metastable storm "
                f"({goodput[(system, 'protected', 'meta')]:.0f} vs raw "
                f"{goodput[(system, 'raw', 'meta')]:.0f})"
            )
    return "\n".join(lines) + "\n"


def _format(system: str, arm: str, r: dict) -> str:
    return (
        f"{system:<6} {arm:<9} {r['x']:<5} "
        f"offered={r['offered_mb_s']:.1f} "
        f"goodput={r['goodput_mb_s']:.1f} "
        f"frac={r['goodput_fraction']:.3f} "
        f"busy={r['busy_rejections']} "
        f"deadline={r['deadline_failures']} "
        f"late={r['late_completions']} "
        f"ioerr={r['io_errors']} "
        f"p99_us={r['p99_us']:.1f}"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"regenerate {GOLDEN} instead of printing to stdout",
    )
    args = parser.parse_args()
    report = smoke_report()
    if args.write_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(report)
        print(f"wrote {GOLDEN}")
        return 0
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
