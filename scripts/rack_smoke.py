#!/usr/bin/env python
"""CI rack smoke: a seeded mini multi-tenant grid over the rack layer.

Every line is fully determined by the (scenario, arm) pair — placement,
token-bucket admissions, fair-queue dispatch order, balancer scans and
migration cutovers all key off seeded RNGs and the sim clock — so two runs
of this script must be byte-identical, and both must match the committed
golden (``tests/golden/rack_smoke.golden``).  The script also enforces the
tenancy figure's headline invariants on the mini grid (dRAID controller):

* **interference** — with rack QoS off, the victim sharing an array with
  the bursty aggressor must lose more than half of its solo goodput;
* **isolation** — with rack QoS on, the victim must retain at least 90%
  of its solo goodput despite the same aggressor;
* **migration recovery** — with the hot-spot balancer armed, exactly one
  volume must migrate and the hot tenants' phase-2 goodput must exceed
  the static arm's phase-2 goodput by at least 20%.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.tenancy import hotspot_point, noisy_point  # noqa: E402

SMOKE_SYSTEM = "dRAID"
GOLDEN = (
    Path(__file__).resolve().parent.parent / "tests" / "golden" / "rack_smoke.golden"
)


def smoke_report() -> str:
    lines = []
    noisy = {}
    for qos in (False, True):
        r = noisy_point(SMOKE_SYSTEM, qos)
        noisy[qos] = r
        arm = "qos-on " if qos else "qos-off"
        lines.append(
            f"noisy   {arm} "
            f"victim_solo={r['victim_solo_mb_s']:.1f} "
            f"victim={r['victim_goodput_mb_s']:.1f} "
            f"retention={r['victim_retention']:.3f} "
            f"victim_p99_us={r['victim_p99_us']:.1f} "
            f"noisy={r['noisy_goodput_mb_s']:.1f} "
            f"busy={r['noisy_busy']} "
            f"fairness={r['fairness']:.3f}"
        )
    hotspot = {}
    for migrate in (False, True):
        r = hotspot_point(SMOKE_SYSTEM, migrate)
        hotspot[migrate] = r
        arm = "migrate" if migrate else "static "
        for phase in (1, 2):
            lines.append(
                f"hotspot {arm} p{phase} "
                f"hot={r[f'p{phase}_hot_goodput_mb_s']:.1f} "
                f"hot_p99_us={r[f'p{phase}_hot_p99_us']:.1f} "
                f"busy={r[f'p{phase}_hot_busy']} "
                f"steady={r[f'p{phase}_steady_goodput_mb_s']:.1f} "
                f"migrations={r['migrations']}"
            )

    if noisy[False]["victim_retention"] > 0.5:
        raise SystemExit(
            "noisy neighbor did not interfere with QoS off "
            f"(retention {noisy[False]['victim_retention']:.3f})"
        )
    if noisy[True]["victim_retention"] < 0.9:
        raise SystemExit(
            "protected victim fell below 90% goodput retention "
            f"({noisy[True]['victim_retention']:.3f})"
        )
    if hotspot[True]["migrations"] != 1:
        raise SystemExit(
            f"balancer migrated {hotspot[True]['migrations']} volumes, expected 1"
        )
    static_p2 = hotspot[False]["p2_hot_goodput_mb_s"]
    migrate_p2 = hotspot[True]["p2_hot_goodput_mb_s"]
    if migrate_p2 < 1.2 * static_p2:
        raise SystemExit(
            "migration did not recover the hot array "
            f"({migrate_p2:.0f} vs static {static_p2:.0f})"
        )
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"regenerate {GOLDEN} instead of printing to stdout",
    )
    args = parser.parse_args()
    report = smoke_report()
    if args.write_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(report)
        print(f"wrote {GOLDEN}")
        return 0
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
