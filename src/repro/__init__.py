"""repro — a simulation-fidelity reproduction of dRAID (ASPLOS 2023).

dRAID is a disaggregated RAID architecture that offloads parity generation,
parity reduction and data reconstruction to storage servers exchanging
partial results peer-to-peer, eliminating the host-NIC bandwidth
amplification of host-centric remote RAID.

This package contains a deterministic discrete-event simulation of the
paper's entire testbed (NICs, RDMA fabric, NVMe drives, poll-mode CPUs),
real GF(2^8) erasure coding, three RAID controllers (Linux-MD model,
SPDK-POC model and dRAID itself), workload generators (FIO-style, YCSB)
and application layers (object store, BlobFS, LSM KV store), plus
experiment harnesses regenerating every table and figure of the paper.

Quick start::

    from repro import build_testbed

    env, cluster, array = build_testbed("dRAID", servers=8)
    env.run(until=array.write(0, 128 * 1024))

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
paper's evaluation.
"""

from repro.baselines import MdRaid, SpdkRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import BandwidthAwareSelector, DraidArray, RandomReducerSelector
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment

__version__ = "1.0.0"

__all__ = [
    "BandwidthAwareSelector",
    "ClusterConfig",
    "DraidArray",
    "Environment",
    "MdRaid",
    "RaidGeometry",
    "RaidLevel",
    "RandomReducerSelector",
    "SpdkRaid",
    "build_cluster",
    "build_testbed",
]

_SYSTEMS = {"Linux": MdRaid, "SPDK": SpdkRaid, "dRAID": DraidArray}


def build_testbed(
    system: str = "dRAID",
    servers: int = 8,
    level: RaidLevel = RaidLevel.RAID5,
    chunk_bytes: int = 512 * 1024,
    functional_capacity: int = 0,
    **array_kwargs,
):
    """One-call testbed: returns ``(env, cluster, array)``.

    ``system`` is one of ``"Linux"``, ``"SPDK"``, ``"dRAID"``.  Pass a
    nonzero ``functional_capacity`` (bytes per drive) to carry real data
    through the simulation.
    """
    if system not in _SYSTEMS:
        raise ValueError(f"unknown system {system!r}; pick from {sorted(_SYSTEMS)}")
    env = Environment()
    cluster = build_cluster(
        env,
        ClusterConfig(num_servers=servers, functional_capacity=functional_capacity),
    )
    geometry = RaidGeometry(level, servers, chunk_bytes)
    array = _SYSTEMS[system](cluster, geometry, **array_kwargs)
    return env, cluster, array
