"""Analytical models: Table 1 and theoretical throughput bounds."""

from repro.analysis.table1 import ARCHITECTURES, Architecture, architecture_table
from repro.analysis.bounds import (
    degraded_read_bound_mb_s,
    drive_bound_write_mb_s,
    nic_bound_write_mb_s,
)

__all__ = [
    "ARCHITECTURES",
    "Architecture",
    "architecture_table",
    "degraded_read_bound_mb_s",
    "drive_bound_write_mb_s",
    "nic_bound_write_mb_s",
]
