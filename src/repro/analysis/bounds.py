"""Theoretical throughput bounds quoted in the paper (§2.3, §9.3).

These are the reference lines the evaluation compares measured numbers
against: NIC-goodput bounds per write mode and the aggregate drive bound
for read-modify-write.
"""

from __future__ import annotations

from repro.net.nic import GOODPUT_100G
from repro.storage.profiles import DELL_AGN_MU, DriveProfile

MB = 1_000_000


def nic_bound_write_mb_s(
    num_parity: int = 1,
    nic_goodput: float = GOODPUT_100G,
    host_centric: bool = True,
) -> float:
    """Host-NIC-TX bound on partial-stripe write throughput.

    Host-centric RMW sends new data + ``num_parity`` parities: the paper's
    "maximum write throughput is 50 Gbps for RAID-5 and 33.3 Gbps for
    RAID-6 with a 100 Gbps NIC" (§2.3).  dRAID sends each byte once.
    """
    amplification = (1 + num_parity) if host_centric else 1
    return nic_goodput / amplification / MB


def drive_bound_write_mb_s(
    width: int,
    num_parity: int = 1,
    profile: DriveProfile = DELL_AGN_MU,
) -> float:
    """Aggregate drive bound for read-modify-write.

    Per user byte, RMW performs one read and one write on the touched data
    drive and on each parity drive: ``(1 + p)`` reads and writes spread
    across ``width`` drives sharing each drive's internal channel.
    """
    per_byte_seconds = (1 + num_parity) * (
        1 / profile.read_bw_bytes_per_s + 1 / profile.write_bw_bytes_per_s
    )
    return width / per_byte_seconds / MB


def degraded_read_bound_mb_s(
    width: int,
    nic_goodput: float = GOODPUT_100G,
    host_centric: bool = True,
) -> float:
    """Host-NIC-RX bound on degraded-state read throughput.

    With one failed drive, ``1/width`` of reads reconstruct and pull
    ``width - 1`` chunks through a host-centric controller; dRAID pulls
    exactly the requested bytes.
    """
    if not host_centric:
        return nic_goodput / MB
    amplification = (width - 1) / width * 1.0 + (1 / width) * (width - 1)
    return nic_goodput / amplification / MB
