"""Table 1: comparison of the three remote-RAID architectures.

The table is analytical in the paper; here each architecture is a small
model whose overhead entries are *derived* from its data-path byte flows,
and the benchmark (`benchmarks/test_table1_architectures.py`) additionally
verifies the write/degraded-read overhead columns against byte counters
measured in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Architecture:
    """One column of Table 1."""

    name: str
    fault_tolerance: str
    hot_spare: str
    scaling: str
    #: host-NIC bytes moved per user byte on a partial-stripe write
    #: (RAID-5 RMW; a range when it depends on the write mode)
    write_overhead: str
    #: host-NIC bytes moved per requested byte on a degraded read
    degraded_read_overhead: str

    def row(self) -> List[str]:
        return [
            self.name,
            self.fault_tolerance,
            self.hot_spare,
            self.scaling,
            self.write_overhead,
            self.degraded_read_overhead,
        ]


def write_overhead_single_machine() -> float:
    """Local RAID controller: user data crosses the network once."""
    return 1.0


def write_overhead_distributed_rmw(num_parity: int = 1) -> float:
    """Host-centric remote RAID-5 RMW: old data + old parity in, new data
    + new parity out = 4x for RAID-5 (up to 1+3 = per-direction 2/2)."""
    return 2.0 * (1 + num_parity)


def write_overhead_draid() -> float:
    """dRAID: the host ships each user byte exactly once."""
    return 1.0


def degraded_read_overhead_distributed(width: int) -> float:
    """Host-centric reconstruct read pulls width-1 chunks per chunk."""
    return float(width - 1)


def degraded_read_overhead_draid() -> float:
    """dRAID returns only requested bytes to the host."""
    return 1.0


ARCHITECTURES: Dict[str, Architecture] = {
    "single-machine": Architecture(
        name="Single-Machine",
        fault_tolerance="Disk",
        hot_spare="Dedicated",
        scaling="Pre-provisioning",
        write_overhead="1x",
        degraded_read_overhead="1x",
    ),
    "distributed": Architecture(
        name="Distributed",
        fault_tolerance="Disk & Server",
        hot_spare="Storage pool",
        scaling="On demand",
        write_overhead="1-4x",
        degraded_read_overhead="Nx",
    ),
    "draid": Architecture(
        name="dRAID",
        fault_tolerance="Disk & Server",
        hot_spare="Storage pool",
        scaling="On demand",
        write_overhead="1x",
        degraded_read_overhead="1x",
    ),
}


def architecture_table() -> str:
    """Render Table 1."""
    headers = ["", "Fault tolerance", "Hot spare", "Scaling",
               "Write overhead", "D-Read overhead"]
    rows = [a.row() for a in ARCHITECTURES.values()]
    rows = [[r[0], r[1], r[2], r[3], r[4], r[5]] for r in rows]
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
