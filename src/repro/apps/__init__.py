"""Applications running on top of the virtual RAID block device (§9.6).

* :mod:`repro.apps.objectstore` — the paper's hash-based object store,
  running directly on the block layer.
* :mod:`repro.apps.blobfs` — a BlobFS-like user-space filesystem with a hot
  super-block region.
* :mod:`repro.apps.lsm` — an LSM-tree key-value store (memtable, WAL, SSTs,
  compaction, block cache) standing in for RocksDB-on-BlobFS.
"""

from repro.apps.blobfs import BlobFs
from repro.apps.lsm import LsmConfig, LsmKvStore
from repro.apps.objectstore import HashObjectStore

__all__ = ["BlobFs", "HashObjectStore", "LsmConfig", "LsmKvStore"]
