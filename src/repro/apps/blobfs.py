"""A BlobFS-like user-space filesystem (§9.6).

SPDK's BlobFS is a flat namespace of blobs backed by clusters of the
underlying block device, with a super-block region that is touched by every
metadata mutation — the paper observes "super-blocks in BlobFS are accessed
more frequently than other segments on the array".  This model reproduces
that structure:

* a 4 KiB super block at device offset 0, rewritten on every metadata
  mutation (blob create/resize);
* a metadata region holding per-blob cluster lists;
* cluster-granular allocation (1 MiB default) with a bump allocator and a
  free list.

All operations return simulation events; blob payloads are only carried in
functional mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.core import AllOf, Environment, Event

SUPER_BLOCK_BYTES = 4096
METADATA_REGION_BYTES = 4 * 1024 * 1024


class BlobFsError(RuntimeError):
    """Invalid BlobFS operation (unknown blob, out-of-range read...)."""


@dataclass
class Blob:
    """An append-only file: an ordered list of device clusters."""

    blob_id: int
    name: str
    clusters: List[int] = field(default_factory=list)
    size: int = 0


class BlobFs:
    """A blob filesystem over a virtual block device."""

    def __init__(self, array, cluster_bytes: int = 1024 * 1024, capacity: Optional[int] = None) -> None:
        if cluster_bytes <= 0 or cluster_bytes % 4096:
            raise ValueError(f"cluster size must be a positive 4 KiB multiple, got {cluster_bytes}")
        self.array = array
        self.env: Environment = array.env
        self.cluster_bytes = cluster_bytes
        capacity = capacity or array.geometry.stripe_data_bytes * 4096
        data_base = SUPER_BLOCK_BYTES + METADATA_REGION_BYTES
        self.num_clusters = (capacity - data_base) // cluster_bytes
        if self.num_clusters < 1:
            raise ValueError("device too small for BlobFS")
        self.data_base = data_base
        self._blobs: Dict[int, Blob] = {}
        self._by_name: Dict[str, int] = {}
        self._next_blob_id = 0
        self._next_cluster = 0
        self._free: List[int] = []
        self.superblock_writes = 0
        self.metadata_writes = 0

    # -- allocation ------------------------------------------------------

    def _allocate_cluster(self) -> int:
        if self._free:
            return self._free.pop()
        if self._next_cluster >= self.num_clusters:
            raise BlobFsError("filesystem full")
        cluster = self._next_cluster
        self._next_cluster += 1
        return cluster

    def _cluster_offset(self, cluster: int) -> int:
        return self.data_base + cluster * self.cluster_bytes

    def _metadata_offset(self, blob_id: int) -> int:
        return SUPER_BLOCK_BYTES + (blob_id * 4096) % METADATA_REGION_BYTES

    def _write_metadata(self, blob: Blob) -> List[Event]:
        """Metadata mutation: blob table entry + the hot super block."""
        self.metadata_writes += 1
        self.superblock_writes += 1
        return [
            self.array.write(self._metadata_offset(blob.blob_id), 4096,
                             data=b"\0" * 4096 if self.array.functional else None),
            self.array.write(0, SUPER_BLOCK_BYTES,
                             data=b"\0" * SUPER_BLOCK_BYTES if self.array.functional else None),
        ]

    # -- namespace ---------------------------------------------------------

    def create_blob(self, name: str) -> Event:
        """Create an empty blob; the event's value is its id."""
        if name in self._by_name:
            raise BlobFsError(f"blob {name!r} already exists")
        blob = Blob(self._next_blob_id, name)
        self._next_blob_id += 1
        self._blobs[blob.blob_id] = blob
        self._by_name[name] = blob.blob_id
        return self.env.process(self._create(blob), name="blobfs.create")

    def _create(self, blob: Blob):
        yield AllOf(self.env, self._write_metadata(blob))
        return blob.blob_id

    def delete_blob(self, blob_id: int) -> Event:
        blob = self._require(blob_id)
        del self._blobs[blob_id]
        del self._by_name[blob.name]
        self._free.extend(blob.clusters)
        return self.env.process(self._create(blob), name="blobfs.delete")

    def lookup(self, name: str) -> int:
        if name not in self._by_name:
            raise BlobFsError(f"no blob named {name!r}")
        return self._by_name[name]

    def blob_size(self, blob_id: int) -> int:
        return self._require(blob_id).size

    def _require(self, blob_id: int) -> Blob:
        blob = self._blobs.get(blob_id)
        if blob is None:
            raise BlobFsError(f"unknown blob id {blob_id}")
        return blob

    # -- data path ------------------------------------------------------------

    def append(self, blob_id: int, nbytes: int, data=None) -> Event:
        """Append ``nbytes`` to the blob (allocating clusters as needed)."""
        if nbytes <= 0:
            raise ValueError(f"append size must be positive, got {nbytes}")
        blob = self._require(blob_id)
        return self.env.process(self._append(blob, nbytes, data), name="blobfs.append")

    def _append(self, blob: Blob, nbytes: int, data):
        events: List[Event] = []
        grew = False
        position = blob.size
        remaining = nbytes
        data_pos = 0
        while remaining > 0:
            within = position % self.cluster_bytes
            if within == 0 and position == blob.size + (nbytes - remaining):
                pass
            if position // self.cluster_bytes >= len(blob.clusters):
                blob.clusters.append(self._allocate_cluster())
                grew = True
            cluster = blob.clusters[position // self.cluster_bytes]
            take = min(self.cluster_bytes - within, remaining)
            payload = None
            if data is not None:
                payload = data[data_pos : data_pos + take]
            events.append(
                self.array.write(self._cluster_offset(cluster) + within, take, data=payload)
            )
            position += take
            data_pos += take
            remaining -= take
        blob.size = position
        if grew:
            events.extend(self._write_metadata(blob))
        yield AllOf(self.env, events)

    def read(self, blob_id: int, offset: int, nbytes: int) -> Event:
        """Read a byte range of the blob."""
        blob = self._require(blob_id)
        if offset < 0 or nbytes <= 0 or offset + nbytes > blob.size:
            raise BlobFsError(
                f"read [{offset}, {offset + nbytes}) out of range for blob of size {blob.size}"
            )
        return self.env.process(self._read(blob, offset, nbytes), name="blobfs.read")

    def _read(self, blob: Blob, offset: int, nbytes: int):
        events: List[Event] = []
        position = offset
        remaining = nbytes
        while remaining > 0:
            within = position % self.cluster_bytes
            cluster = blob.clusters[position // self.cluster_bytes]
            take = min(self.cluster_bytes - within, remaining)
            events.append(self.array.read(self._cluster_offset(cluster) + within, take))
            position += take
            remaining -= take
        results = []
        for event in events:
            results.append((yield event))
        if results and results[0] is not None:
            import numpy as np

            return np.concatenate(results)
        return None
