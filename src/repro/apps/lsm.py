"""An LSM-tree key-value store on BlobFS — the RocksDB stand-in (§9.6).

Reproduces the I/O *structure* that shapes Figure 19: point reads hit the
memtable, then the block cache, then per-level SSTables (bloom-filtered
4 KiB block reads); writes append to a WAL and fill a memtable that flushes
to level-0 SSTs; a background compactor merges level 0 into level 1 with
large sequential reads and writes.  A single instance with internal
serialization (the paper runs exactly one, since BlobFS supports only one)
caps achievable speedups, which is why Figure 19's gains (~1.27x) are lower
than the raw-array gains — the same cap emerges here from the WAL/flush
serialization.

Key membership is tracked exactly (real key sets per SST), so lookups read
precisely the files a real LSM would consult.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.apps.blobfs import BlobFs
from repro.sim.core import AllOf, Environment, Event


@dataclass(frozen=True)
class LsmConfig:
    """Tuning knobs of the LSM tree."""

    value_bytes: int = 1024
    block_bytes: int = 4096
    memtable_bytes: int = 4 * 1024 * 1024
    level0_compaction_trigger: int = 4
    level_fanout: int = 8
    block_cache_bytes: int = 64 * 1024 * 1024
    bloom_false_positive: float = 0.01
    #: WAL group-commit batch (records per fsync-sized append)
    wal_batch: int = 8
    #: host CPU per point lookup (memtable/cache path) — RocksDB-scale
    get_cpu_ns: int = 1_500
    #: host CPU per insert/update (memtable + WAL bookkeeping)
    put_cpu_ns: int = 2_000
    #: host CPU per key returned by a range scan (iterator step)
    scan_cpu_ns_per_key: int = 200


@dataclass
class SsTable:
    """One immutable sorted run."""

    blob_id: int
    keys: Set[int]
    size_bytes: int
    level: int
    seq: int


class _BlockCache:
    """LRU cache of (sst, block) ids."""

    def __init__(self, capacity_bytes: int, block_bytes: int) -> None:
        self.capacity_blocks = max(1, capacity_bytes // block_bytes)
        self._lru: "OrderedDict[tuple, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, key: tuple) -> bool:
        """True on hit; inserts on miss (read-through)."""
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._lru[key] = None
        if len(self._lru) > self.capacity_blocks:
            self._lru.popitem(last=False)
        return False

    def invalidate_sst(self, blob_id: int) -> None:
        stale = [k for k in self._lru if k[0] == blob_id]
        for k in stale:
            del self._lru[k]


class LsmKvStore:
    """A single-instance LSM KV store over BlobFS."""

    def __init__(self, blobfs: BlobFs, config: Optional[LsmConfig] = None, seed: int = 5) -> None:
        self.fs = blobfs
        self.env: Environment = blobfs.env
        self.config = config or LsmConfig()
        self._memtable: Set[int] = set()
        self._immutable: List[Set[int]] = []
        self._levels: List[List[SsTable]] = [[], []]
        self._seq = 0
        self._wal_pending = 0
        self._wal_blob: Optional[int] = None
        self.cache = _BlockCache(self.config.block_cache_bytes, self.config.block_bytes)
        self._flush_lock = False
        self._compaction_lock = False
        import random

        self._rng = random.Random(seed)
        # stats
        self.stats = {
            "gets": 0, "puts": 0, "memtable_hits": 0, "cache_hits": 0,
            "sst_reads": 0, "flushes": 0, "compactions": 0, "bloom_skips": 0,
        }
        self._cpu = blobfs.array.cluster.host.pick_core()
        self._init_done = self.env.process(self._init(), name="lsm.init")

    def _init(self):
        self._wal_blob = yield self.fs.create_blob("wal")

    # -- write path -------------------------------------------------------

    def put(self, key: int) -> Event:
        """Insert/update ``key`` (WAL append + memtable; may trigger flush)."""
        self.stats["puts"] += 1
        return self.env.process(self._put(key), name="lsm.put")

    def _put(self, key: int):
        if self._wal_blob is None:
            yield self._init_done
        cfg = self.config
        yield self._cpu.execute(cfg.put_cpu_ns)
        self._wal_pending += 1
        if self._wal_pending >= cfg.wal_batch:
            # group commit: one WAL append covers the batch
            self._wal_pending = 0
            payload = None
            nbytes = cfg.wal_batch * (cfg.value_bytes + 32)
            if self.fs.array.functional:
                payload = b"\0" * nbytes
            yield self.fs.append(self._wal_blob, nbytes, data=payload)
        self._memtable.add(key)
        if len(self._memtable) * cfg.value_bytes >= cfg.memtable_bytes:
            frozen = self._memtable
            self._memtable = set()
            self._immutable.append(frozen)
            if not self._flush_lock:
                self.env.process(self._flush(), name="lsm.flush")

    def _flush(self):
        """Flush immutable memtables to level-0 SSTs (sequential writes)."""
        self._flush_lock = True
        cfg = self.config
        while self._immutable:
            frozen = self._immutable.pop(0)
            self.stats["flushes"] += 1
            self._seq += 1
            blob_id = yield self.fs.create_blob(f"sst-{self._seq}")
            size = max(cfg.block_bytes, len(frozen) * cfg.value_bytes)
            payload = b"\0" * size if self.fs.array.functional else None
            yield self.fs.append(blob_id, size, data=payload)
            self._levels[0].append(SsTable(blob_id, frozen, size, 0, self._seq))
            if len(self._levels[0]) >= cfg.level0_compaction_trigger and not self._compaction_lock:
                self.env.process(self._compact(), name="lsm.compact")
        self._flush_lock = False

    def _compact(self):
        """Merge all level-0 SSTs plus overlapping level-1 SSTs."""
        self._compaction_lock = True
        cfg = self.config
        while len(self._levels[0]) >= cfg.level0_compaction_trigger:
            self.stats["compactions"] += 1
            inputs = self._levels[0] + self._levels[1]
            self._levels[0] = []
            self._levels[1] = []
            # read every input sequentially
            reads = [self.fs.read(sst.blob_id, 0, sst.size_bytes) for sst in inputs]
            yield AllOf(self.env, reads)
            merged: Set[int] = set()
            for sst in inputs:
                merged |= sst.keys
            self._seq += 1
            blob_id = yield self.fs.create_blob(f"sst-{self._seq}")
            size = max(cfg.block_bytes, len(merged) * cfg.value_bytes)
            payload = b"\0" * size if self.fs.array.functional else None
            yield self.fs.append(blob_id, size, data=payload)
            self._levels[1].append(SsTable(blob_id, merged, size, 1, self._seq))
            for sst in inputs:
                self.cache.invalidate_sst(sst.blob_id)
                yield self.fs.delete_blob(sst.blob_id)
        self._compaction_lock = False

    def warm_cache(self) -> int:
        """Populate the block cache with every SST block (zero simulated time).

        Models a store whose cache was warmed by prior traffic — the state
        YCSB measurements are normally taken in.  Returns blocks inserted.
        """
        inserted = 0
        for level in self._levels:
            for sst in level:
                for block in range(max(1, sst.size_bytes // self.config.block_bytes)):
                    self.cache.access((sst.blob_id, block))
                    inserted += 1
        return inserted

    # -- read path -----------------------------------------------------------

    def get(self, key: int) -> Event:
        """Point lookup."""
        self.stats["gets"] += 1
        return self.env.process(self._get(key), name="lsm.get")

    def _candidate_ssts(self, key: int) -> List[SsTable]:
        """SSTs a lookup consults: newest level-0 first, then level 1."""
        candidates = []
        for sst in reversed(self._levels[0]):
            candidates.append(sst)
            if key in sst.keys:
                break
        else:
            candidates.extend(self._levels[1])
        return candidates

    def scan(self, start_key: int, count: int) -> Event:
        """Range scan: read ``count`` consecutive keys from ``start_key``.

        LSM scans merge-iterate every level: each overlapping SSTable
        contributes sequential block reads covering the key range (no
        bloom filters — they only help point lookups).  Returns the
        number of keys found.
        """
        if count < 1:
            raise ValueError(f"scan count must be >= 1, got {count}")
        self.stats["scans"] = self.stats.get("scans", 0) + 1
        return self.env.process(self._scan(start_key, count), name="lsm.scan")

    def _scan(self, start_key: int, count: int):
        cfg = self.config
        yield self._cpu.execute(cfg.get_cpu_ns + cfg.scan_cpu_ns_per_key * count)
        wanted = set(range(start_key, start_key + count))
        found = len(wanted & self._memtable)
        for immutable in self._immutable:
            found += len(wanted & immutable)
        for level in self._levels:
            for sst in level:
                overlap = wanted & sst.keys
                if not overlap:
                    continue
                found += len(overlap)
                # sequential read of the overlapping block range
                max_block = max(1, sst.size_bytes // cfg.block_bytes)
                start_block = (start_key * 2654435761) % max_block
                span_blocks = max(1, (len(overlap) * cfg.value_bytes) // cfg.block_bytes + 1)
                misses = 0
                for b in range(span_blocks):
                    block = (start_block + b) % max_block
                    if self.cache.access((sst.blob_id, block)):
                        self.stats["cache_hits"] += 1
                    else:
                        misses += 1
                if misses:
                    self.stats["sst_reads"] += misses
                    offset = start_block * cfg.block_bytes
                    length = min(misses * cfg.block_bytes, sst.size_bytes - offset)
                    yield self.fs.read(sst.blob_id, offset, max(cfg.block_bytes, length))
        return min(found, count)

    def _get(self, key: int):
        yield self._cpu.execute(self.config.get_cpu_ns)
        if key in self._memtable or any(key in imm for imm in self._immutable):
            self.stats["memtable_hits"] += 1
            return True
        cfg = self.config
        for sst in self._candidate_ssts(key):
            present = key in sst.keys
            if not present:
                # bloom filter rejects absent keys (except false positives)
                if self._rng.random() >= cfg.bloom_false_positive:
                    self.stats["bloom_skips"] += 1
                    continue
            block_index = (key * 2654435761) % max(1, sst.size_bytes // cfg.block_bytes)
            cache_key = (sst.blob_id, block_index)
            if self.cache.access(cache_key):
                self.stats["cache_hits"] += 1
                if present:
                    return True
                continue
            self.stats["sst_reads"] += 1
            yield self.fs.read(sst.blob_id, block_index * cfg.block_bytes, cfg.block_bytes)
            if present:
                return True
        return False
