"""The paper's lightweight hash-based object store (§9.6).

Objects are fixed-size and addressed by hashing the key onto a slot of the
block device: a ``get`` is one block-device read, a ``put`` one write.
There is deliberately no metadata path — the paper built this store to
observe the raw RAID array's limits from an application ("to further
evaluate dRAID performance under high throughput... runs directly on the
block device layer").
"""

from __future__ import annotations

from typing import Optional

from repro.sim.core import Environment, Event


class HashObjectStore:
    """Fixed-slot object store on a virtual block device."""

    def __init__(
        self,
        array,
        object_size: int = 128 * 1024,
        num_objects: int = 200_000,
        capacity: Optional[int] = None,
    ) -> None:
        if object_size <= 0:
            raise ValueError(f"object_size must be positive, got {object_size}")
        self.array = array
        self.env: Environment = array.env
        self.object_size = object_size
        geometry = array.geometry
        capacity = capacity or geometry.stripe_data_bytes * 4096
        self.slots = max(1, capacity // object_size)
        self.num_objects = min(num_objects, self.slots)
        self.gets = 0
        self.puts = 0

    def _slot_offset(self, key: int) -> int:
        # multiplicative hashing spreads adjacent keys across the device
        slot = (key * 2654435761) % self.slots
        return slot * self.object_size

    def get(self, key: int) -> Event:
        """Read the object stored under ``key`` (one array read)."""
        self.gets += 1
        return self.array.read(self._slot_offset(key), self.object_size)

    def put(self, key: int, data=None) -> Event:
        """Write the object under ``key`` (one array write)."""
        self.puts += 1
        return self.array.write(self._slot_offset(key), self.object_size, data)
