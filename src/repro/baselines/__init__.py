"""Baseline RAID controllers: the systems dRAID is compared against.

Both baselines are *host-centric*: every byte of every RAID operation
(old data, old parity, new parity, reconstruction sources) moves through
the host NIC over standard NVMe-oF, which is exactly the bandwidth
bottleneck the paper identifies (§2.3).

* :class:`SpdkRaid` models the SPDK RAID-5/6 POC the paper uses as its
  strongest baseline: user-space, lock-per-stripe (including normal reads),
  ISA-L parity speeds.
* :class:`MdRaid` models Linux software RAID (the MD driver): the same
  data path plus a single kernel RAID thread that stages every write and
  every reconstruction through a 4 KiB-page stripe cache.
"""

from repro.baselines.base import HostCentricRaid, RaidIoStats
from repro.baselines.logstructured import LogStructuredRaid
from repro.baselines.mdraid import MdRaid
from repro.baselines.spdkraid import SpdkRaid

__all__ = [
    "HostCentricRaid",
    "LogStructuredRaid",
    "MdRaid",
    "RaidIoStats",
    "SpdkRaid",
]
