"""Host-centric parity RAID over standard NVMe-oF.

This is the common implementation behind both baselines (SPDK POC and
Linux MD).  All parity math happens on the host; every constituent I/O of
a RAID operation is a plain NVMe-oF read or write, so all bytes traverse
the host NIC:

* read-modify-write moves ``2 x (data + parity-span)`` bytes through the
  host NIC (the paper's 4x amplification for RAID-5 single-chunk writes);
* a degraded read moves ``width - 1`` chunks to the host to rebuild one.

Subclasses tune CPU-cost hooks (stripe-cache staging, lock handling) to
differentiate the two baselines.

The controller runs in *functional mode* when the underlying drives carry
real bytes: parity is then actually computed with :mod:`repro.ec` and all
reconstructions are bit-exact, which the whole-array tests verify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.builder import Cluster
from repro.ec import raid5_reconstruct, raid6_reconstruct, xor_blocks
from repro.ec.gf import GF
from repro.faults.backoff import BackoffPolicy
from repro.metrics.faults import FaultStats
from repro.metrics.integrity import IntegrityStats
from repro.nvmeof.initiator import RemoteBdev
from repro.nvmeof.messages import IoError
from repro.nvmeof.target import NvmeOfTarget
from repro.qos.admission import PRIORITY_BACKGROUND, PRIORITY_FOREGROUND
from repro.qos.errors import Busy, DeadlineExceeded
from repro.raid.bitmap import WriteIntentBitmap
from repro.raid.geometry import ChunkSegment, RaidGeometry, RaidLevel, StripeExtent
from repro.raid.locks import StripeLockManager
from repro.raid.modes import WriteMode, classify_write
from repro.storage.integrity import ChecksumError
from repro.sim.core import AllOf, AnyOf, Environment, Event, Interrupt, _defuse_on_failure


@dataclass
class RaidIoStats:
    """Per-array operation counters."""

    reads: int = 0
    writes: int = 0
    degraded_reads: int = 0
    rmw_writes: int = 0
    rcw_writes: int = 0
    full_stripe_writes: int = 0
    degraded_writes: int = 0
    #: full-stripe retries after timeout/error (dRAID, §5.4)
    retries: int = 0
    #: reconstructions delegated to a remote reducer (dRAID, §6.1)
    remote_reconstructions: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class ArrayFailureError(RuntimeError):
    """More drives failed than the RAID level tolerates."""


class HostCentricRaid:
    """A parity RAID array whose controller lives entirely on the host."""

    #: CPU charged on a host core per user I/O submitted (software stack cost).
    submit_ns = 2_000
    #: Whether normal reads take the stripe lock (the SPDK POC does, §8).
    lock_reads = True
    #: Retry budget per extent operation on the resilient datapath (§5.4).
    max_retries = 3
    #: After a write attempt times out, wait ``drain_factor x timeout`` for
    #: its straggling mutations to land before fencing and retrying.
    drain_factor = 10
    #: Subclasses whose member set is not 1:1 with the cluster's servers
    #: (e.g. the §7 offloaded controller) relax the size check.
    _require_full_cluster = True

    def __init__(
        self,
        cluster: Cluster,
        geometry: RaidGeometry,
        name: str = "raid",
        timeout_ns: Optional[int] = None,
    ) -> None:
        if self._require_full_cluster and geometry.num_drives != cluster.num_servers:
            raise ValueError(
                f"geometry wants {geometry.num_drives} drives, cluster has "
                f"{cluster.num_servers} servers"
            )
        self.env: Environment = cluster.env
        self.cluster = cluster
        self.geometry = geometry
        #: guaranteed simultaneous-failure tolerance used by every fencing
        #: and tolerance guard.  Defaults to the geometry's parity count
        #: (MDS codes); non-MDS arrays (LRC) narrow it to their global-
        #: parity reach.
        self.fault_tolerance = geometry.num_parity
        self.name = name
        self.locks = StripeLockManager(self.env)
        #: §5.4 host-failure recovery: stripes with in-flight writes
        self.bitmap = WriteIntentBitmap()
        self.stats = RaidIoStats()
        self.failed: set = set()
        #: drive -> first stripe NOT yet rebuilt (see :meth:`drive_failed`)
        self.rebuild_watermark: Dict[int, int] = {}
        #: drive -> stripes already rebuilt *out of order* (risk-prioritized
        #: recovery, :mod:`repro.raid.recovery`).  Sequential rebuilds use
        #: the contiguous watermark above; this set exists only while an
        #: out-of-order rebuild is in flight, so healthy and
        #: sequential-rebuild paths never pay the extra lookup.
        self.rebuilt_stripes: Dict[int, set] = {}
        self.functional = cluster.config.functional_capacity > 0
        #: §5.4 hardening: I/O deadline (escalates per retry attempt) and
        #: fault bookkeeping.  ``timeout_ns`` may be reassigned on the
        #: instance (tests do); everything reads it at use time.
        self.timeout_ns = (
            timeout_ns if timeout_ns is not None else cluster.config.io_timeout_ns
        )
        self.backoff = BackoffPolicy(self.timeout_ns)
        self.fault_stats = FaultStats()
        self.integrity_stats = IntegrityStats()
        self.failslow_detector = None
        self._retry_rng = random.Random(f"repro.backoff:{name}")
        self._force_resilient = False
        #: Observability (repro.obs): the cluster tracer, or None when the
        #: cluster was built without an observability config.  Every traced
        #: branch below short-circuits on this being None.
        self._tracer = None if cluster.obs is None else cluster.obs.tracer
        #: Verification (repro.verify): the cluster's Verifier hub, or None
        #: when the cluster was built without a verify config.  Every
        #: checked branch short-circuits on these being None, exactly like
        #: the tracer above.
        self._verifier = cluster.verify
        self._protocol_verifier = (
            None if cluster.verify is None else cluster.verify.protocol
        )
        #: Overload control (repro.qos): the cluster's QosControl hub, or
        #: None when the cluster was built without an overload config.
        #: Every admission/deadline/budget/breaker branch short-circuits on
        #: this being None, exactly like the tracer above.
        self.qos = cluster.qos
        if self._verifier is not None:
            self._verifier.watch_array(self)
        self._attach_transport()

    def _attach_transport(self) -> None:
        """Wire up the remote-storage transport (overridden by dRAID)."""
        qos = self.qos
        target_depth = None if qos is None else qos.config.target_queue_depth
        breaker_on = qos is not None and qos.breaker is not None
        self.targets: List[NvmeOfTarget] = []
        self.bdevs: List[RemoteBdev] = []
        for i, server in enumerate(self.cluster.servers):
            target = NvmeOfTarget(
                server, self.cluster.server_end(i), queue_depth=target_depth
            )
            target.tracer = self._tracer
            self.targets.append(target)
            bdev = RemoteBdev(
                self.cluster.host,
                self.cluster.host_end(i),
                name=f"{self.name}.bdev{i}",
            )
            bdev.tracer = self._tracer
            bdev.verifier = self._protocol_verifier
            if breaker_on:
                bdev.on_result = (
                    lambda ok, member=i: self._breaker_observe(member, ok)
                )
            self.bdevs.append(bdev)

    # -- failure management ---------------------------------------------------

    def fail_drive(self, index: int) -> None:
        """Mark a member faulty; the array enters degraded state.

        Any rebuild progress recorded for the member is invalidated: a
        drive that fails again mid-rebuild restarts from scratch — resuming
        a stale watermark would serve reads from a replacement that never
        received those stripes' content.
        """
        self.failed.add(index)
        self.rebuild_watermark.pop(index, None)
        self.rebuilt_stripes.pop(index, None)
        self.cluster.servers[index].drive.fail()
        if len(self.failed) > self.fault_tolerance:
            raise ArrayFailureError(
                f"{self.name}: {len(self.failed)} failures exceed "
                f"{self._tolerance_name()} tolerance"
            )

    def repair_drive(self, index: int) -> None:
        self.failed.discard(index)
        self.rebuild_watermark.pop(index, None)
        self.rebuilt_stripes.pop(index, None)
        self.cluster.servers[index].drive.repair()
        if self.failslow_detector is not None:
            self.failslow_detector.forget(index)

    @property
    def degraded(self) -> bool:
        return bool(self.failed)

    @property
    def resilient(self) -> bool:
        """Whether the timeout/retry datapath is active.

        Armed automatically when a :class:`repro.faults.FaultInjector`
        attaches to the cluster; arrays without one keep the exact event
        sequence of the healthy paths (committed figures unchanged).
        """
        return self._force_resilient or self.cluster.fault_injection is not None

    @property
    def _guarded(self) -> bool:
        """Whether member completions may fail and need a subscriber.

        True on the resilient path (injected faults produce error
        completions) and whenever overload control is armed (bounded
        targets produce typed busy/deadline error completions even with no
        fault injector attached).
        """
        return self.resilient or self.qos is not None

    @property
    def integrity(self):
        """The cluster's :class:`~repro.storage.integrity.IntegrityStore`.

        ``None`` unless a store was attached — unarmed arrays skip every
        verification branch, keeping the seed's exact event sequence.
        """
        return self.cluster.integrity

    def drive_failed(self, drive: int, stripe: int) -> bool:
        """Whether ``drive`` should be treated as failed for ``stripe``.

        During an online rebuild (:mod:`repro.raid.rebuild`) stripes below
        the rebuild watermark have already been reconstructed onto the
        replacement, so the drive is healthy *for those stripes* while
        still failed beyond the watermark.  Risk-prioritized rebuilds
        (:mod:`repro.raid.recovery`) sweep stripes out of order and record
        them in :attr:`rebuilt_stripes` instead.
        """
        if drive not in self.failed:
            return False
        watermark = self.rebuild_watermark.get(drive)
        if watermark is not None and stripe < watermark:
            return False
        rebuilt = self.rebuilt_stripes.get(drive)
        if rebuilt is not None and stripe in rebuilt:
            return False
        return True

    def failed_in_stripe(self, stripe: int) -> set:
        """The member drives to treat as failed for ``stripe``.

        Declustered layouts narrow this to the stripe's member set: a
        failed drive that holds no chunk of ``stripe`` does not degrade
        it (the fan-out property rebuild exploits).
        """
        failed = {d for d in self.failed if self.drive_failed(d, stripe)}
        if failed and not getattr(self.geometry, "full_width", True):
            failed &= set(self.geometry.stripe_drives(stripe))
        return failed

    def _tolerance_name(self) -> str:
        """Redundancy-scheme name for error messages (level-safe)."""
        level = self.geometry.level
        if level is not None:
            return level.name
        return f"{self.fault_tolerance}-failure"

    def _stripe_members(self, stripe: int):
        """Member drives of ``stripe`` in ascending order.

        Every drive for full-width (rotating) layouts — the historical
        iteration order — and the stripe's member subset for declustered
        layouts.
        """
        if getattr(self.geometry, "full_width", True):
            return range(self.geometry.num_drives)
        return sorted(self.geometry.stripe_drives(stripe))

    # -- observability helpers (repro.obs) --------------------------------------

    def _span_wait(self, event, ctx, name, cat="compute", track="host.cpu"):
        """Yield ``event``; when tracing is armed, record a span (ns) over
        the wait.  The simulated event sequence is identical either way."""
        tracer = self._tracer
        if tracer is None or ctx is None:
            result = yield event
            return result
        t0 = self.env.now
        result = yield event
        tracer.record(ctx, name, cat, track, t0, self.env.now)
        return result

    def _lock_wait(self, stripe: int, ctx):
        """Acquire the stripe lock, recording a lock-wait span if blocked.

        Uncontended acquires complete at the same instant and record
        nothing (zero-length spans are dropped by the tracer).
        """
        tracer = self._tracer
        if tracer is None or ctx is None:
            yield self.locks.acquire(stripe, ctx)
            return
        t0 = self.env.now
        yield self.locks.acquire(stripe, ctx)
        tracer.record(
            ctx, f"stripe-{stripe}", "lock-wait", "host.locks", t0, self.env.now
        )

    def _backoff_pause(self, pause_ns: int, ctx):
        """Sleep a retry backoff, recording a backoff span when traced."""
        t0 = self.env.now
        yield self.env.timeout(pause_ns)
        if self._tracer is not None and ctx is not None:
            self._tracer.record(
                ctx, "retry-backoff", "backoff", "host.cpu", t0, self.env.now
            )

    # -- overload control (repro.qos) -------------------------------------------
    #
    # Every helper here short-circuits when ``self.qos`` is None (or the
    # relevant sub-knob is off), so unarmed arrays keep the seed's exact
    # event sequence.

    def _qos_deadline(self, deadline_ns):
        """The effective absolute deadline (ns) for a new request.

        An explicit caller deadline wins; otherwise the armed config's
        ``default_deadline_ns`` is added to *now*; otherwise None.
        """
        if deadline_ns is not None:
            return deadline_ns
        qos = self.qos
        if qos is None or qos.config.default_deadline_ns is None:
            return None
        return self.env.now + qos.config.default_deadline_ns

    def _deadline_remaining(self, deadline_ns):
        """Budget (ns) left before ``deadline_ns``; None when undeadlined."""
        if deadline_ns is None:
            return None
        return deadline_ns - self.env.now

    def _deadline_spent(self, kind: str, stripe: int):
        """Terminal abandon: the request's deadline budget is exhausted."""
        if self.qos is not None:
            self.qos.stats.deadline_exceeded += 1
        self.fault_stats.io_errors += 1
        raise DeadlineExceeded(
            f"{self.name}: {kind} on stripe {stripe} exceeded its deadline"
        )

    def _charge_retry(self, kind: str, stripe: int) -> None:
        """Spend one retry-budget token; terminal IoError when denied.

        Caps retry amplification under overload (the SRE retry-budget
        rule): when the whole array is failing, retries stop being free.
        """
        qos = self.qos
        if qos is None or qos.retry_budget is None:
            return
        if not qos.retry_budget.try_spend():
            qos.stats.retries_denied += 1
            self.fault_stats.io_errors += 1
            raise IoError(
                f"{self.name}: {kind} on stripe {stripe}: retry budget exhausted"
            )

    def _note_success(self) -> None:
        """Deposit a fractional retry token on operation success."""
        qos = self.qos
        if qos is not None and qos.retry_budget is not None:
            qos.retry_budget.note_success()

    def _admitted(self, body, priority: str):
        """Run a top-level I/O under the bounded admission queue.

        Only reached when overload control is armed; with no admission
        bound configured this is a transparent pass-through.  A refused
        admission is a typed :class:`Busy` fast-reject — no datapath work,
        no queueing.
        """
        adm = self.qos.admission
        if adm is None:
            result = yield from body
            return result
        if not adm.try_admit(priority):
            stats = self.qos.stats
            if priority == PRIORITY_BACKGROUND:
                stats.shed_background += 1
                raise Busy(f"{self.name}: background I/O shed under pressure")
            stats.busy_rejections += 1
            raise Busy(f"{self.name}: admission queue full")
        try:
            result = yield from body
        finally:
            adm.release()
        return result

    def _breaker_observe(self, member: int, ok: bool) -> None:
        """Feed one completion result into the per-member circuit breaker.

        A member whose EWMA error/timeout rate crosses the trip threshold
        is fenced (reads route around it through reconstruction) — but
        never past parity headroom: tripping the last redundant member
        would convert sickness into data loss.
        """
        breaker = self.qos.breaker
        breaker.record(member, ok)
        if ok or member in self.failed:
            return
        if len(self.failed) >= self.fault_tolerance:
            return
        if not breaker.should_trip(member, self.env.now):
            return
        breaker.note_trip(member, self.env.now)
        self.qos.stats.breaker_trips += 1
        self.failed.add(member)
        self.fault_stats.degraded_transitions += 1
        if self._verifier is not None:
            self._verifier.check_fence(self)

    # -- §5.4 resilience machinery ---------------------------------------------

    def _gather(self, events):
        """Collect the values of ``events`` in order.

        On the healthy path this yields them one by one (the seed's exact
        event sequence).  On the guarded path (resilient or overload
        control armed) it subscribes all of them at once through
        :class:`AllOf`, so an error completion on any member surfaces as
        :class:`IoError` here instead of crashing the simulation as an
        unhandled failed event.
        """
        if not self._guarded:
            results = []
            for event in events:
                results.append((yield event))
            return results
        if not events:
            return []
        outcome = yield AllOf(self.env, events)
        return [outcome[event] for event in events]

    def _subscribe_early(self, events) -> Optional[AllOf]:
        """An :class:`AllOf` over ``events``, safe to yield *later*.

        Built before an intervening CPU charge so error completions find a
        subscriber; the failure sink keeps a late error from crashing the
        simulation if the surrounding attempt is interrupted before the
        condition is ever yielded.
        """
        if not (self._guarded and events):
            return None
        gathered = AllOf(self.env, events)
        gathered.callbacks.append(_defuse_on_failure)
        return gathered

    def _check_tolerance(self, stripe: int) -> None:
        if len(self.failed_in_stripe(stripe)) > self.fault_tolerance:
            self.fault_stats.io_errors += 1
            raise IoError(
                f"{self.name}: stripe {stripe} has more failures than "
                f"{self._tolerance_name()} tolerates"
            )

    def _run_attempt(self, body, timeout_ns: int, drain: bool):
        """Run one attempt generator under a deadline.

        Returns True if the attempt succeeded.  A timed-out *write*
        attempt is given a drain window (``drain_factor x timeout``) for
        its straggling mutations to land — §5.4: a retry must never race
        the attempt it replaces — after which unresponsive members are
        fenced as prolonged failures and the attempt is abandoned.
        """
        attempt = self.env.process(body, name=f"{self.name}.attempt")
        deadline = self.env.timeout(timeout_ns)
        try:
            yield AnyOf(self.env, [attempt, deadline])
        except IoError:
            return False
        if attempt.triggered:
            return bool(attempt._ok)
        self.fault_stats.timeouts += 1
        if drain:
            drain_deadline = self.env.timeout(self.drain_factor * timeout_ns)
            try:
                yield AnyOf(self.env, [attempt, drain_deadline])
            except IoError:
                return False
            if attempt.triggered:
                return bool(attempt._ok)
            self._fence_stragglers(timeout_ns)
        if attempt.is_alive:
            attempt.interrupt("attempt timed out")
            try:
                yield attempt
            except (Interrupt, IoError):
                pass
        return False

    def _fence_stragglers(self, timeout_ns: int) -> None:
        """Fail members still holding commands after a drain window.

        Liveness is judged by completion recency, not queue depth: a busy
        member under concurrent load always has commands outstanding, but
        only a dead one stops completing them.
        """
        now = self.env.now
        fenced = 0
        for i, bdev in enumerate(self.bdevs):
            if i in self.failed or not bdev.outstanding:
                continue
            if now - bdev.last_completion_ns < timeout_ns:
                continue
            if self.qos is not None and self.qos.breaker is not None:
                # timeouts count against the member's EWMA error rate too
                self.qos.breaker.record(i, False)
            if len(self.failed) >= self.fault_tolerance:
                # fencing past redundancy converts a stall into data loss;
                # leave the member in and let the retry budget bound the op
                break
            self.failed.add(i)
            self.cluster.servers[i].drive.fail()
            fenced += 1
            self.fault_stats.prolonged_failures += 1
            self.fault_stats.degraded_transitions += 1
        if fenced and self._verifier is not None:
            # real (injected) failures may legitimately exceed parity; a
            # *fencing decision* must never be what crosses the line
            self._verifier.check_fence(self)

    def _retry_loop(
        self, make_body, stripe: int, kind: str, drain: bool, ctx=None,
        deadline_ns=None,
    ):
        """Attempt/backoff loop shared by resilient reads and pre-reads.

        With a deadline, each attempt's timeout is clamped to the
        remaining budget (cumulative attempt timeouts charge against the
        request deadline), and a spent budget is a terminal
        :class:`DeadlineExceeded` — no retry ever starts past the
        deadline.  Each retry also spends a retry-budget token when one is
        armed.
        """
        attempts = 0
        while True:
            self._check_tolerance(stripe)
            remaining = self._deadline_remaining(deadline_ns)
            if remaining is not None and remaining <= 0:
                self._deadline_spent(kind, stripe)
            timeout_ns = self.backoff.timeout_for(
                attempts, self.timeout_ns, remaining_ns=remaining
            )
            ok = yield from self._run_attempt(make_body(), timeout_ns, drain)
            if ok:
                self._note_success()
                return
            attempts += 1
            if attempts > self.max_retries:
                self.fault_stats.io_errors += 1
                raise IoError(
                    f"{self.name}: {kind} on stripe {stripe} failed after "
                    f"{attempts} attempts"
                )
            remaining = self._deadline_remaining(deadline_ns)
            if remaining is not None and remaining <= 0:
                self._deadline_spent(kind, stripe)
            self._charge_retry(kind, stripe)
            self.stats.retries += 1
            self.fault_stats.retries += 1
            pause = self.backoff.backoff_ns(attempts, self._retry_rng)
            if remaining is not None:
                pause = min(pause, remaining)
            if pause:
                yield from self._backoff_pause(pause, ctx)

    # -- end-to-end integrity: verification and read-repair ---------------------
    #
    # Active only when an IntegrityStore is attached to the cluster.
    # Checksum verification itself is charged no host CPU: production
    # T10-DIF verification runs in NIC/controller hardware on the wire
    # (DESIGN.md §10); only the parity math of an actual repair costs CPU.

    def _verify_read(self, extents, buffer, io_base: int, take_locks: bool):
        """Post-read verification: every chunk a read touched must match
        its expectation; a mismatch triggers parity read-repair and a
        re-read of the extent."""
        store = self.integrity
        drives = self.cluster.drives()
        for ext in extents:
            for _ in range(3):
                failed = self.failed_in_stripe(ext.stripe)
                seg_drives = {s.drive for s in ext.segments}
                if seg_drives & failed:
                    # a segment was reconstructed: its bytes were derived
                    # from every surviving member, so verify the whole
                    # stripe (a corrupt survivor poisons the result)
                    check = set(self._stripe_members(ext.stripe))
                else:
                    check = seg_drives
                bad = []
                for d in sorted(check - failed):
                    self.integrity_stats.chunks_verified += 1
                    if not store.chunk_ok(drives[d], ext.stripe):
                        bad.append(d)
                if not bad:
                    break
                self.integrity_stats.read_repairs += 1
                ok = yield from self._read_repair(
                    ext.stripe, bad, locked=not take_locks
                )
                if not ok:
                    raise ChecksumError(
                        f"{self.name}: stripe {ext.stripe} corruption on "
                        f"drives {bad} is beyond parity"
                    )
                yield from self._read_extent(ext, buffer, io_base, take_locks)
            else:
                raise ChecksumError(
                    f"{self.name}: stripe {ext.stripe} still dirty after "
                    f"repeated read-repair"
                )

    def _verify_stripe_before_write(self, ext: StripeExtent):
        """Pre-write verification (caller holds the stripe lock).

        RMW/RCW/degraded dispatch folds *old* chunk content into the new
        parity; writing over a silently-corrupt stripe would launder the
        corruption into freshly-written parity, beyond checksum reach.
        Repair the stripe first.
        """
        store = self.integrity
        drives = self.cluster.drives()
        for _ in range(3):
            failed = self.failed_in_stripe(ext.stripe)
            bad = []
            for d in self._stripe_members(ext.stripe):
                if d in failed:
                    continue
                self.integrity_stats.chunks_verified += 1
                if not store.chunk_ok(drives[d], ext.stripe):
                    bad.append(d)
            if not bad:
                return
            self.integrity_stats.write_repairs += 1
            ok = yield from self._read_repair(ext.stripe, bad, locked=True)
            if not ok:
                raise ChecksumError(
                    f"{self.name}: stripe {ext.stripe} corruption on "
                    f"drives {bad} is beyond parity"
                )
        raise ChecksumError(
            f"{self.name}: stripe {ext.stripe} still dirty after repeated "
            f"pre-write repair"
        )

    def _await_repair_io(self, gathered):
        """Race a repair-I/O condition against the array's deadline.

        Repair member I/O runs outside the §5.4 retry loop, so it needs
        its own deadline: a member going silent mid-repair would otherwise
        park the repair — and the stripe lock it holds — forever.  Returns
        the outcome dict, or None on member error or expiry (fencing
        stragglers exactly like the resilient datapath does).
        """
        deadline = self.env.timeout(self.timeout_ns)
        try:
            yield AnyOf(self.env, [gathered, deadline])
        except IoError:
            return None
        if not gathered.triggered:
            self.fault_stats.timeouts += 1
            self._fence_stragglers(self.timeout_ns)
            return None
        return gathered._value

    def _read_repair(self, stripe: int, bad_drives, locked: bool = False):
        """Reconstruct checksum-bad chunks from parity and rewrite them.

        Returns True once every reported chunk verifies clean, False when
        the stripe's erasures (bad chunks + failed members) exceed parity
        or repeated repair attempts keep failing.  Detection/repair
        accounting happens here, under the stripe lock, exactly once per
        corruption episode (``store.known_bad`` dedupes).
        """
        store = self.integrity
        g = self.geometry
        chunk = g.chunk_bytes
        drives = self.cluster.drives()
        if not locked:
            yield self.locks.acquire(stripe)
        try:
            # Re-verify under the lock (a concurrent repair may have won)
            # and widen to the whole stripe: repair sources must be clean,
            # so any bad chunk the caller didn't check is repaired too.
            failed = self.failed_in_stripe(stripe)
            bad = sorted(
                d
                for d in self._stripe_members(stripe)
                if d not in failed and not store.chunk_ok(drives[d], stripe)
            )
            if not bad:
                return True
            kinds_of = {d: store.bad_kinds(drives[d], stripe) for d in bad}
            for d in bad:
                key = (d, stripe)
                if key not in store.known_bad:
                    store.known_bad.add(key)
                    first = store.first_poison_ns(drives[d], stripe)
                    latency = None if first is None else self.env.now - first
                    self.integrity_stats.record_detected(kinds_of[d], latency)
            if len(set(bad) | failed) > self.fault_tolerance:
                for d in bad:
                    self.integrity_stats.record_unrecoverable(kinds_of[d])
                return False
            for _ in range(3):
                erasures = set(bad) | self.failed_in_stripe(stripe)
                if len(erasures) > self.fault_tolerance:
                    break
                sources = [
                    d for d in self._stripe_members(stripe) if d not in erasures
                ]
                reads = [
                    self.env.process(self._member_read(d, stripe * chunk, chunk))
                    for d in sources
                ]
                gathered = AllOf(self.env, reads)
                gathered.callbacks.append(_defuse_on_failure)
                outcome = yield from self._await_repair_io(gathered)
                if outcome is None:
                    continue
                blocks = [outcome[e] for e in reads]
                yield self._charge_xor(len(sources) + 1, chunk)
                if g.level is RaidLevel.RAID6:
                    yield self._charge_gf(len(sources), chunk)
                repaired = None
                if self.functional:
                    repaired = self._repair_stripe_blocks(
                        stripe, dict(zip(sources, blocks)), bad
                    )
                writes = [
                    self.env.process(
                        self._member_write(
                            d,
                            stripe * chunk,
                            chunk,
                            None if repaired is None else repaired[d],
                        )
                    )
                    for d in bad
                ]
                gathered = AllOf(self.env, writes)
                gathered.callbacks.append(_defuse_on_failure)
                if (yield from self._await_repair_io(gathered)) is None:
                    continue
                # re-verify: an armed corruption may have eaten the repair
                # write itself — if so, go around again
                still_bad = []
                for d in bad:
                    if store.chunk_ok(drives[d], stripe):
                        self.integrity_stats.record_repaired(kinds_of[d])
                    else:
                        still_bad.append(d)
                if not still_bad:
                    return True
                bad = still_bad
            for d in bad:
                self.integrity_stats.record_unrecoverable(kinds_of[d])
            return False
        finally:
            if not locked:
                self.locks.release(stripe)

    def _repair_stripe_blocks(
        self, stripe: int, present: Dict[int, np.ndarray], bad
    ) -> Dict[int, np.ndarray]:
        """Decode replacement blocks for ``bad`` drives from ``present``
        (drive -> chunk bytes of every other member).  Functional mode."""
        g = self.geometry
        parity = list(g.parity_drives(stripe))
        code = getattr(self, "code", None)
        if g.level is None and code is not None:
            # generic Reed-Solomon geometry: global shard index space is
            # data 0..k-1 then parity k..k+m-1
            shards = {}
            for drive, blk in present.items():
                if drive in parity:
                    shards[g.data_per_stripe + parity.index(drive)] = blk
                else:
                    shards[g.data_index_of_drive(stripe, drive)] = blk
            data_shards = code.decode(shards, g.chunk_bytes)
            parity_shards = code.encode(data_shards)
            out = {}
            for d in bad:
                if d in parity:
                    out[d] = parity_shards[parity.index(d)]
                else:
                    out[d] = data_shards[g.data_index_of_drive(stripe, d)]
            return out
        data_blocks: Dict[int, np.ndarray] = {}
        p_block = q_block = None
        for drive, blk in present.items():
            if drive == parity[0]:
                p_block = blk
            elif len(parity) > 1 and drive == parity[1]:
                q_block = blk
            else:
                data_blocks[g.data_index_of_drive(stripe, drive)] = blk
        bad_data = [d for d in bad if d not in parity]
        missing = [i for i in range(g.data_per_stripe) if i not in data_blocks]
        if missing:
            if len(missing) == 1 and p_block is not None:
                data_blocks[missing[0]] = raid5_reconstruct(
                    list(data_blocks.values()) + [p_block]
                )
            else:
                data_blocks.update(
                    raid6_reconstruct(
                        dict(data_blocks), g.data_per_stripe, p_block, q_block
                    )
                )
        full = [data_blocks[i] for i in range(g.data_per_stripe)]
        out = {}
        for d in bad_data:
            out[d] = data_blocks[g.data_index_of_drive(stripe, d)]
        for d in bad:
            if d not in parity:
                continue
            if parity.index(d) == 0:
                out[d] = xor_blocks(full)
            else:
                q = np.zeros(g.chunk_bytes, dtype=np.uint8)
                for i, blk in enumerate(full):
                    GF.mul_bytes_inplace_xor(q, GF.gen_pow(i), blk)
                out[d] = q
        return out

    def _bdev_read(self, drive: int, offset: int, length: int, ctx=None,
                   deadline_ns=None):
        """Member read, stamping the deadline on the wire command when set.

        The kwarg is only forwarded when armed so transports whose proxies
        predate the deadline field (e.g. the offload engine's) keep
        working unmodified.
        """
        if deadline_ns is None:
            return self.bdevs[drive].read(offset, length, ctx=ctx)
        return self.bdevs[drive].read(
            offset, length, ctx=ctx, deadline_ns=deadline_ns
        )

    def _bdev_write(self, drive: int, offset: int, length: int, data=None,
                    ctx=None, deadline_ns=None):
        """Member write; deadline stamping as in :meth:`_bdev_read`."""
        if deadline_ns is None:
            return self.bdevs[drive].write(offset, length, data, ctx=ctx)
        return self.bdevs[drive].write(
            offset, length, data, ctx=ctx, deadline_ns=deadline_ns
        )

    def _member_read(self, drive: int, offset: int, nbytes: int):
        """Raw read of one member chunk region (integrity/scrub path)."""
        data = yield self.bdevs[drive].read(offset, nbytes)
        return data

    def _member_write(self, drive: int, offset: int, nbytes: int, data):
        """Raw write of one member chunk region (integrity/scrub path)."""
        yield self.bdevs[drive].write(offset, nbytes, data)

    # -- public block interface -----------------------------------------------

    def read(
        self, offset: int, nbytes: int, ctx=None, deadline_ns=None,
        priority: str = PRIORITY_FOREGROUND,
    ) -> Event:
        """Read; event value is the data in functional mode, else None.

        ``ctx`` is an optional :class:`repro.obs.TraceContext` the spans of
        this I/O are parented to (None = untraced).  ``deadline_ns`` is an
        optional absolute sim-time deadline; with overload control armed an
        unset deadline defaults to ``now + default_deadline_ns``.
        ``priority`` selects the admission class (foreground vs
        background) when an admission bound is armed.
        """
        if self.qos is not None:
            return self.env.process(
                self._admitted(
                    self._read(
                        offset, nbytes, ctx=ctx,
                        deadline_ns=self._qos_deadline(deadline_ns),
                    ),
                    priority,
                ),
                name=f"{self.name}.read",
            )
        return self.env.process(
            self._read(offset, nbytes, ctx=ctx, deadline_ns=deadline_ns),
            name=f"{self.name}.read",
        )

    def read_unlocked(self, offset: int, nbytes: int) -> Event:
        """Read without taking stripe locks.

        For callers that already hold the stripe lock (e.g. the online
        rebuild job, which reads under the lock to serialize with writers).
        """
        return self.env.process(
            self._read(offset, nbytes, take_locks=False), name=f"{self.name}.read"
        )

    def write(
        self, offset: int, nbytes: int, data=None, ctx=None, deadline_ns=None,
        priority: str = PRIORITY_FOREGROUND,
    ) -> Event:
        """Write; ``data`` (bytes/ndarray) is required in functional mode.

        ``ctx`` is an optional :class:`repro.obs.TraceContext` the spans of
        this I/O are parented to (None = untraced).  ``deadline_ns`` and
        ``priority`` behave exactly as on :meth:`read`.
        """
        if self.functional and data is None:
            raise ValueError("functional mode requires write data")
        if data is not None:
            data = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
            if len(data) != nbytes:
                raise ValueError(f"data length {len(data)} != nbytes {nbytes}")
        if self.qos is not None:
            return self.env.process(
                self._admitted(
                    self._write(
                        offset, nbytes, data, ctx=ctx,
                        deadline_ns=self._qos_deadline(deadline_ns),
                    ),
                    priority,
                ),
                name=f"{self.name}.write",
            )
        return self.env.process(
            self._write(offset, nbytes, data, ctx=ctx, deadline_ns=deadline_ns),
            name=f"{self.name}.write",
        )

    # -- CPU cost hooks (overridden by MdRaid) ---------------------------------

    def _charge_submit(self):
        core = self.cluster.host.pick_core()
        return core.execute(self.submit_ns)

    def _charge_write_staging(self, staged_bytes: int, ext: StripeExtent):
        """Extra per-write CPU beyond parity math (MD stripe cache)."""
        return self.env.timeout(0)

    def _charge_reconstruct_staging(self, source_bytes: int, ext: StripeExtent):
        """Extra per-reconstruction CPU (MD stripe cache)."""
        return self.env.timeout(0)

    def _charge_degraded_read_staging(self, nbytes: int, ext: StripeExtent):
        """Extra CPU for *normal* reads while the array is degraded.

        Linux MD disables its read fast path on a degraded array: every
        read goes through the stripe cache.  No-op for user-space systems.
        """
        return self.env.timeout(0)

    def _charge_xor(self, num_sources: int, nbytes: int):
        core = self.cluster.host.pick_core()
        work = self.cluster.host.cpu_profile.xor_ns(nbytes) * max(0, num_sources - 1)
        return core.execute(work)

    def _charge_gf(self, num_sources: int, nbytes: int):
        core = self.cluster.host.pick_core()
        work = self.cluster.host.cpu_profile.gf_ns(nbytes) * num_sources
        return core.execute(work)

    # -- top-level read/write processes ----------------------------------------

    def _read(
        self, offset: int, nbytes: int, take_locks: bool = True, ctx=None,
        deadline_ns=None,
    ):
        yield from self._span_wait(self._charge_submit(), ctx, "submit")
        extents = self.geometry.map_extent(offset, nbytes)
        buffer = np.zeros(nbytes, dtype=np.uint8) if self.functional else None
        done = [
            self.env.process(
                self._read_extent(
                    ext, buffer, offset, take_locks, ctx, deadline_ns=deadline_ns
                )
            )
            for ext in extents
        ]
        yield AllOf(self.env, done)
        if self.integrity is not None:
            yield from self._verify_read(extents, buffer, offset, take_locks)
        self.stats.reads += 1
        return buffer

    def _write(self, offset: int, nbytes: int, data, ctx=None, deadline_ns=None):
        yield from self._span_wait(self._charge_submit(), ctx, "submit")
        extents = self.geometry.map_extent(offset, nbytes)
        done = [
            self.env.process(
                self._write_extent(ext, data, ctx, deadline_ns=deadline_ns)
            )
            for ext in extents
        ]
        yield AllOf(self.env, done)
        self.stats.writes += 1

    # -- read paths ---------------------------------------------------------------

    def _read_extent(
        self, ext: StripeExtent, buffer, io_base: int, take_locks: bool = True,
        ctx=None, deadline_ns=None,
    ):
        lock = self.lock_reads and take_locks
        if lock:
            yield from self._lock_wait(ext.stripe, ctx)
        try:
            if self.resilient:
                # reads are idempotent: on timeout or member error, retry
                # with an escalated deadline (reconstructing around any
                # member that has been fenced in the meantime)
                yield from self._retry_loop(
                    lambda: self._read_extent_once(
                        ext, buffer, ctx, deadline_ns=deadline_ns
                    ),
                    ext.stripe,
                    "read",
                    drain=False,
                    ctx=ctx,
                    deadline_ns=deadline_ns,
                )
            else:
                yield from self._read_extent_once(
                    ext, buffer, ctx, deadline_ns=deadline_ns
                )
        finally:
            if lock:
                self.locks.release(ext.stripe)

    def _read_extent_once(self, ext: StripeExtent, buffer, ctx=None,
                          deadline_ns=None):
        failed = self.failed_in_stripe(ext.stripe)
        healthy = [s for s in ext.segments if s.drive not in failed]
        lost = [s for s in ext.segments if s.drive in failed]
        events = [
            self._bdev_read(s.drive, s.drive_offset, s.length, ctx=ctx,
                            deadline_ns=deadline_ns)
            for s in healthy
        ]
        if lost:
            events += [
                self.env.process(
                    self._reconstruct_segment(ext, s, ctx, deadline_ns=deadline_ns)
                )
                for s in lost
            ]
        # subscribe before the staging charge so an error completion
        # arriving mid-charge is handled, not an unhandled failed event
        gathered = self._subscribe_early(events)
        if self.degraded and healthy:
            yield from self._span_wait(
                self._charge_degraded_read_staging(
                    sum(s.length for s in healthy), ext
                ),
                ctx,
                "staging",
            )
        if gathered is not None:
            outcome = yield gathered
            results = [outcome[event] for event in events]
        else:
            results = yield from self._gather(events)
        if buffer is not None:
            for seg, data in zip(list(healthy) + list(lost), results):
                buffer[seg.io_offset : seg.io_offset + seg.length] = data

    def _reconstruct_segment(self, ext: StripeExtent, seg: ChunkSegment, ctx=None,
                             deadline_ns=None):
        """Rebuild one lost data segment on the host from all survivors."""
        self.stats.degraded_reads += 1
        g = self.geometry
        region = (seg.chunk_offset, seg.length)
        sources: List[Tuple[int, int]] = []  # (drive, kind) kind: data index or -1/-2
        failed = self.failed_in_stripe(ext.stripe)
        for d in range(g.data_per_stripe):
            drive = g.data_drive(ext.stripe, d)
            if drive == seg.drive or drive in failed:
                continue
            sources.append((drive, d))
        parities = [p for p in ext.parity_drives if p not in failed]
        lost_data = [
            d for d in range(g.data_per_stripe)
            if g.data_drive(ext.stripe, d) in failed
        ]
        needed_parities = parities[: len(lost_data)]
        events = []
        for drive, _ in sources:
            events.append(
                self._bdev_read(
                    drive, ext.stripe * g.chunk_bytes + region[0], region[1],
                    ctx=ctx, deadline_ns=deadline_ns,
                )
            )
        for p in needed_parities:
            events.append(
                self._bdev_read(
                    p, ext.stripe * g.chunk_bytes + region[0], region[1],
                    ctx=ctx, deadline_ns=deadline_ns,
                )
            )
        blocks = yield from self._gather(events)
        total_source_bytes = region[1] * len(events)
        yield from self._span_wait(
            self._charge_reconstruct_staging(total_source_bytes, ext), ctx, "staging"
        )
        yield from self._span_wait(
            self._charge_xor(len(events), region[1]), ctx, "xor"
        )
        if not self.functional:
            return None
        if len(lost_data) == 1 and ext.parity_drives[0] not in failed:
            return raid5_reconstruct(blocks)
        # RAID-6 double failure or P lost: full decode
        present = {d: blk for (_, d), blk in zip(sources, blocks)}
        p_block = None
        q_block = None
        parity_blocks = blocks[len(sources):]
        for parity_drive, blk in zip(needed_parities, parity_blocks):
            if parity_drive == ext.parity_drives[0]:
                p_block = blk
            else:
                q_block = blk
        recovered = raid6_reconstruct(present, g.data_per_stripe, p_block, q_block)
        lost_index = g.data_index_of_drive(ext.stripe, seg.drive)
        return recovered[lost_index]

    # -- write paths -----------------------------------------------------------

    def _write_extent(self, ext: StripeExtent, io_data, ctx=None, deadline_ns=None):
        self.bitmap.mark(ext.stripe)
        yield from self._lock_wait(ext.stripe, ctx)
        try:
            if self.integrity is not None:
                yield from self._verify_stripe_before_write(ext)
            if self.resilient:
                yield from self._write_resilient(
                    ext, io_data, ctx, deadline_ns=deadline_ns
                )
            else:
                yield from self._write_stripe_once(
                    ext, io_data, ctx, deadline_ns=deadline_ns
                )
        finally:
            self.locks.release(ext.stripe)
            self.bitmap.clear(ext.stripe)

    def _write_stripe_once(self, ext: StripeExtent, io_data, ctx=None,
                           deadline_ns=None):
        """One pass of the normal write dispatch (caller holds the lock)."""
        failed = self.failed_in_stripe(ext.stripe)
        failed_parities = [p for p in ext.parity_drives if p in failed]
        failed_touched = [s for s in ext.segments if s.drive in failed]
        failed_untouched_data = [
            d for d in failed
            if d not in ext.parity_drives
            and d not in {s.drive for s in ext.segments}
        ]
        mode = classify_write(self.geometry, ext)
        if failed_touched:
            self.stats.degraded_writes += 1
            only_failed_chunk = (
                len(failed_touched) == len(ext.segments) == 1
                and len(failed - set(ext.parity_drives)) == 1
            )
            if only_failed_chunk:
                yield from self._write_degraded_region(
                    ext, io_data, failed_touched[0], ctx, deadline_ns=deadline_ns
                )
            else:
                yield from self._write_degraded_data(
                    ext, io_data, failed_touched, ctx, deadline_ns=deadline_ns
                )
        elif mode is WriteMode.FULL_STRIPE:
            self.stats.full_stripe_writes += 1
            yield from self._write_full(ext, io_data, ctx, deadline_ns=deadline_ns)
        elif mode is WriteMode.RECONSTRUCT_WRITE and not failed_untouched_data:
            self.stats.rcw_writes += 1
            yield from self._write_rcw(ext, io_data, ctx, deadline_ns=deadline_ns)
        else:
            # RMW; also the fallback when an untouched data drive is
            # failed (its chunk cannot be read for RCW).
            self.stats.rmw_writes += 1
            if failed_untouched_data or failed_parities:
                self.stats.degraded_writes += 1
            yield from self._write_rmw(ext, io_data, ctx, deadline_ns=deadline_ns)

    # resilient write path (§5.4) --------------------------------------------

    def _data_drives_in(self, stripe: int, members) -> bool:
        g = self.geometry
        return any(
            g.data_drive(stripe, d) in members for d in range(g.data_per_stripe)
        )

    def _write_resilient(self, ext: StripeExtent, io_data, ctx=None,
                         deadline_ns=None):
        """Timeout/retry write with the §5.4 idempotent-retry invariant.

        The first attempt on a stripe with no failed data member uses the
        normal dispatch.  Every retry — and every attempt on a degraded
        stripe — writes from a *pinned* full-stripe image whose gap
        regions were read exactly once, before any mutation, so replays
        are idempotent no matter which of a previous attempt's writes
        landed.
        """
        g = self.geometry
        pinned = None
        failed = self.failed_in_stripe(ext.stripe)
        if self._data_drives_in(ext.stripe, failed):
            self._check_tolerance(ext.stripe)
            self.stats.degraded_writes += 1
            pinned = yield from self._pin_with_retries(
                ext, ctx, deadline_ns=deadline_ns
            )
        attempts = 0
        while True:
            self._check_tolerance(ext.stripe)
            remaining = self._deadline_remaining(deadline_ns)
            if remaining is not None and remaining <= 0:
                self._deadline_spent("write", ext.stripe)
            if pinned is None and attempts > 0:
                failed = self.failed_in_stripe(ext.stripe)
                gaps = self._stripe_gaps(ext)
                if any(g.data_drive(ext.stripe, d) in failed for d, _, _ in gaps):
                    # Write hole: the first attempt may have torn parity,
                    # and a gap chunk now lives on a failed member — its
                    # content cannot be trusted from parity.  Surface a
                    # terminal error; the stripe is repaired by resync
                    # once the member returns.
                    self.fault_stats.io_errors += 1
                    raise IoError(
                        f"{self.name}: write hole on stripe {ext.stripe}"
                    )
                pinned = yield from self._pin_with_retries(
                    ext, ctx, deadline_ns=deadline_ns
                )
            if pinned is None:
                body = self._write_stripe_once(
                    ext, io_data, ctx, deadline_ns=deadline_ns
                )
            else:
                body = self._write_pinned(
                    ext, io_data, *pinned, ctx=ctx, deadline_ns=deadline_ns
                )
            timeout_ns = self.backoff.timeout_for(
                attempts, self.timeout_ns, remaining_ns=remaining
            )
            ok = yield from self._run_attempt(body, timeout_ns, drain=True)
            if ok:
                self._note_success()
                return
            attempts += 1
            if attempts > self.max_retries:
                self.fault_stats.io_errors += 1
                raise IoError(
                    f"{self.name}: write to stripe {ext.stripe} failed after "
                    f"{attempts} attempts"
                )
            remaining = self._deadline_remaining(deadline_ns)
            if remaining is not None and remaining <= 0:
                self._deadline_spent("write", ext.stripe)
            self._charge_retry("write", ext.stripe)
            self.stats.retries += 1
            self.fault_stats.retries += 1
            pause = self.backoff.backoff_ns(attempts, self._retry_rng)
            if remaining is not None:
                pause = min(pause, remaining)
            if pause:
                yield from self._backoff_pause(pause, ctx)

    def _pin_with_retries(self, ext: StripeExtent, ctx=None, deadline_ns=None):
        """Degraded-aware read of every stripe region the write will not
        cover, retried like any read; returns ``(gaps, blocks)``."""
        out = {}
        yield from self._retry_loop(
            lambda: self._pin_stripe_image(ext, out, ctx, deadline_ns=deadline_ns),
            ext.stripe,
            "stripe pre-read",
            drain=False,
            ctx=ctx,
            deadline_ns=deadline_ns,
        )
        return out["gaps"], out["blocks"]

    def _pin_stripe_image(self, ext: StripeExtent, out: dict, ctx=None,
                          deadline_ns=None):
        g = self.geometry
        gaps = self._stripe_gaps(ext)
        stripe_base = ext.stripe * g.stripe_data_bytes
        blocks = []
        for d, off, length in gaps:
            buffer = np.zeros(length, dtype=np.uint8) if self.functional else None
            gap_ext, = g.map_extent(stripe_base + d * g.chunk_bytes + off, length)
            yield from self._read_extent_once(
                gap_ext, buffer, ctx, deadline_ns=deadline_ns
            )
            blocks.append(buffer)
        out["gaps"] = gaps
        out["blocks"] = blocks

    def _write_pinned(self, ext: StripeExtent, io_data, gaps, gap_blocks, ctx=None,
                      deadline_ns=None):
        """Write the stripe from the pinned image: touched segments from
        the user data, full parity recomputed from image + user data."""
        g = self.geometry
        chunk = g.chunk_bytes
        yield from self._span_wait(
            self._charge_xor(g.data_per_stripe, chunk), ctx, "xor"
        )
        p_block = q_block = None
        if self.functional:
            stripe_img = self._assemble_stripe(ext, io_data, gaps, gap_blocks)
            p_block = xor_blocks(stripe_img)
            if g.level is RaidLevel.RAID6:
                q_block = np.zeros(chunk, dtype=np.uint8)
                for i, blk in enumerate(stripe_img):
                    GF.mul_bytes_inplace_xor(q_block, GF.gen_pow(i), blk)
        if g.level is RaidLevel.RAID6:
            yield from self._span_wait(
                self._charge_gf(g.data_per_stripe, chunk), ctx, "gf"
            )
        staged = ext.touched_bytes + len(ext.parity_drives) * chunk
        yield from self._span_wait(
            self._charge_write_staging(staged, ext), ctx, "staging"
        )
        failed = self.failed_in_stripe(ext.stripe)
        events = [
            self._bdev_write(
                s.drive, s.drive_offset, s.length, self._seg_data(io_data, s),
                ctx=ctx, deadline_ns=deadline_ns,
            )
            for s in ext.segments
            if s.drive not in failed
        ]
        for p in ext.parity_drives:
            if p in failed:
                continue
            block = p_block if self._parity_index(ext, p) == 0 else q_block
            events.append(
                self._bdev_write(p, ext.parity_offset, chunk, block, ctx=ctx,
                                 deadline_ns=deadline_ns)
            )
        if events:
            yield AllOf(self.env, events)

    # data helpers -----------------------------------------------------------

    def _seg_data(self, io_data, seg: ChunkSegment):
        if io_data is None:
            return None
        return io_data[seg.io_offset : seg.io_offset + seg.length]

    def _alive_parities(self, ext: StripeExtent) -> List[int]:
        failed = self.failed_in_stripe(ext.stripe)
        return [p for p in ext.parity_drives if p not in failed]

    def _parity_index(self, ext: StripeExtent, drive: int) -> int:
        """0 for P, 1 for Q."""
        return ext.parity_drives.index(drive)

    def _write_full(self, ext: StripeExtent, io_data, ctx=None, deadline_ns=None):
        """Full-stripe write: host computes parity, writes every member."""
        g = self.geometry
        chunk = g.chunk_bytes
        new_chunks = [self._seg_data(io_data, s) for s in ext.segments]
        yield from self._span_wait(
            self._charge_xor(g.data_per_stripe, chunk), ctx, "xor"
        )
        p_block = q_block = None
        if self.functional:
            p_block = xor_blocks(new_chunks)
        if g.level is RaidLevel.RAID6:
            yield from self._span_wait(
                self._charge_gf(g.data_per_stripe, chunk), ctx, "gf"
            )
            if self.functional:
                q_block = np.zeros(chunk, dtype=np.uint8)
                for i, blk in enumerate(new_chunks):
                    GF.mul_bytes_inplace_xor(q_block, GF.gen_pow(i), blk)
        staged = ext.touched_bytes + len(ext.parity_drives) * chunk
        yield from self._span_wait(
            self._charge_write_staging(staged, ext), ctx, "staging"
        )
        failed = self.failed_in_stripe(ext.stripe)
        events = [
            self._bdev_write(
                s.drive, s.drive_offset, s.length, self._seg_data(io_data, s),
                ctx=ctx, deadline_ns=deadline_ns,
            )
            for s in ext.segments
            if s.drive not in failed
        ]
        for parity_drive, block in zip(ext.parity_drives, (p_block, q_block)):
            if parity_drive in failed:
                continue
            events.append(
                self._bdev_write(parity_drive, ext.parity_offset, chunk, block,
                                 ctx=ctx, deadline_ns=deadline_ns)
            )
        yield AllOf(self.env, events)

    def _write_rmw(self, ext: StripeExtent, io_data, ctx=None, deadline_ns=None):
        """Read-modify-write: 2 reads + 2 writes of the touched extent
        through the host NIC (3 + 3 for RAID-6)."""
        g = self.geometry
        span_off, span_len = ext.parity_span()
        parities = self._alive_parities(ext)
        # phase 1: read old data segments and old parity spans
        read_events = [
            self._bdev_read(s.drive, s.drive_offset, s.length, ctx=ctx,
                            deadline_ns=deadline_ns)
            for s in ext.segments
        ]
        for p in parities:
            read_events.append(
                self._bdev_read(p, ext.parity_offset + span_off, span_len,
                                ctx=ctx, deadline_ns=deadline_ns)
            )
        old_blocks = yield from self._gather(read_events)
        old_data = old_blocks[: len(ext.segments)]
        old_parity = old_blocks[len(ext.segments):]
        # phase 2: compute deltas and new parities
        yield from self._span_wait(
            self._charge_xor(2 * len(ext.segments), span_len), ctx, "xor"
        )
        new_parities: Dict[int, Optional[np.ndarray]] = {}
        if self.functional:
            for order, p in enumerate(parities):
                block = old_parity[order].copy()
                for seg, old in zip(ext.segments, old_data):
                    delta = old ^ self._seg_data(io_data, seg)
                    rel = seg.chunk_offset - span_off
                    if self._parity_index(ext, p) == 0:
                        block[rel : rel + seg.length] ^= delta
                    else:
                        GF.mul_bytes_inplace_xor(
                            block[rel : rel + seg.length],
                            GF.gen_pow(seg.data_index),
                            delta,
                        )
                new_parities[p] = block
        else:
            new_parities = {p: None for p in parities}
        if g.level is RaidLevel.RAID6 and len(parities) > 1:
            yield from self._span_wait(
                self._charge_gf(len(ext.segments), span_len), ctx, "gf"
            )
        staged = 2 * ext.touched_bytes + 2 * len(parities) * span_len
        yield from self._span_wait(
            self._charge_write_staging(staged, ext), ctx, "staging"
        )
        # phase 3: write new data and new parities
        write_events = [
            self._bdev_write(
                s.drive, s.drive_offset, s.length, self._seg_data(io_data, s),
                ctx=ctx, deadline_ns=deadline_ns,
            )
            for s in ext.segments
        ]
        for p in parities:
            write_events.append(
                self._bdev_write(
                    p, ext.parity_offset + span_off, span_len, new_parities[p],
                    ctx=ctx, deadline_ns=deadline_ns,
                )
            )
        yield AllOf(self.env, write_events)

    def _write_rcw(self, ext: StripeExtent, io_data, ctx=None, deadline_ns=None):
        """Reconstruct-write: read untouched data, recompute parity fully."""
        g = self.geometry
        chunk = g.chunk_bytes
        # Build the full new stripe image: read whatever the write does not
        # cover (untouched chunks and partial-chunk complements).
        gaps = self._stripe_gaps(ext)
        read_events = [
            self._bdev_read(
                g.data_drive(ext.stripe, d), ext.stripe * chunk + off, length,
                ctx=ctx, deadline_ns=deadline_ns,
            )
            for d, off, length in gaps
        ]
        gap_blocks = yield from self._gather(read_events)
        yield from self._span_wait(
            self._charge_xor(g.data_per_stripe, chunk), ctx, "xor"
        )
        p_block = q_block = None
        if self.functional:
            stripe_img = self._assemble_stripe(ext, io_data, gaps, gap_blocks)
            p_block = xor_blocks(stripe_img)
            if g.level is RaidLevel.RAID6:
                q_block = np.zeros(chunk, dtype=np.uint8)
                for i, blk in enumerate(stripe_img):
                    GF.mul_bytes_inplace_xor(q_block, GF.gen_pow(i), blk)
        if g.level is RaidLevel.RAID6:
            yield from self._span_wait(
                self._charge_gf(g.data_per_stripe, chunk), ctx, "gf"
            )
        gap_bytes = sum(length for _, _, length in gaps)
        staged = ext.touched_bytes + gap_bytes + len(self._alive_parities(ext)) * chunk
        yield from self._span_wait(
            self._charge_write_staging(staged, ext), ctx, "staging"
        )
        write_events = [
            self._bdev_write(
                s.drive, s.drive_offset, s.length, self._seg_data(io_data, s),
                ctx=ctx, deadline_ns=deadline_ns,
            )
            for s in ext.segments
        ]
        for p in self._alive_parities(ext):
            block = p_block if self._parity_index(ext, p) == 0 else q_block
            write_events.append(
                self._bdev_write(p, ext.parity_offset, chunk, block, ctx=ctx,
                                 deadline_ns=deadline_ns)
            )
        yield AllOf(self.env, write_events)

    def _write_degraded_region(
        self, ext: StripeExtent, io_data, seg: ChunkSegment, ctx=None,
        deadline_ns=None,
    ):
        """Write covering only a failed data chunk: region-scoped parity rebuild.

        Since parity is the (weighted) sum of all data chunks, the new
        parity over the written region is simply the sum of the *other*
        chunks' same region with the new data — no reconstruction of the
        failed chunk's old content and no old-parity read are needed, and
        the cost is proportional to the I/O size, keeping the degraded
        write penalty small (Fig. 18/30: ~5-11% drop).
        """
        g = self.geometry
        failed_index = g.data_index_of_drive(ext.stripe, seg.drive)
        region_offset, region_len = seg.chunk_offset, seg.length
        failed = self.failed_in_stripe(ext.stripe)
        survivors = [
            d for d in range(g.data_per_stripe)
            if d != failed_index and g.data_drive(ext.stripe, d) not in failed
        ]
        read_events = [
            self._bdev_read(
                g.data_drive(ext.stripe, d),
                ext.stripe * g.chunk_bytes + region_offset, region_len,
                ctx=ctx, deadline_ns=deadline_ns,
            )
            for d in survivors
        ]
        blocks = yield from self._gather(read_events)
        yield from self._span_wait(
            self._charge_reconstruct_staging(region_len * len(blocks), ext),
            ctx,
            "staging",
        )
        yield from self._span_wait(
            self._charge_xor(len(blocks) + 1, region_len), ctx, "xor"
        )
        new_data = self._seg_data(io_data, seg)
        write_events = []
        for parity_drive in self._alive_parities(ext):
            block = None
            if self.functional:
                block = np.zeros(region_len, dtype=np.uint8)
                if self._parity_index(ext, parity_drive) == 0:
                    for blk in blocks:
                        block ^= blk
                    block ^= new_data
                else:
                    for d, blk in zip(survivors, blocks):
                        GF.mul_bytes_inplace_xor(block, GF.gen_pow(d), blk)
                    GF.mul_bytes_inplace_xor(block, GF.gen_pow(failed_index), new_data)
            write_events.append(
                self._bdev_write(
                    parity_drive, ext.parity_offset + region_offset, region_len,
                    block, ctx=ctx, deadline_ns=deadline_ns,
                )
            )
        finish = self._subscribe_early(write_events)
        if self.geometry.level is RaidLevel.RAID6 and len(write_events) > 1:
            yield from self._span_wait(
                self._charge_gf(len(survivors) + 1, region_len), ctx, "gf"
            )
        yield finish if finish is not None else AllOf(self.env, write_events)

    def _write_degraded_data(self, ext: StripeExtent, io_data, failed_touched,
                             ctx=None, deadline_ns=None):
        """Write when a touched data chunk lives on a failed drive.

        Reconstructs the failed chunk's old content when the write only
        partially covers it, merges the new data, recomputes parity from
        the full stripe image and writes all survivors.
        """
        g = self.geometry
        chunk = g.chunk_bytes
        touched_by_index = {s.data_index: s for s in ext.segments}
        failed_indices = {
            g.data_index_of_drive(ext.stripe, s.drive) for s in failed_touched
        }
        partial_failed = [
            i for i in failed_indices if touched_by_index[i].length < chunk
        ]
        # read every surviving data chunk in full
        failed = self.failed_in_stripe(ext.stripe)
        survivors = [
            d for d in range(g.data_per_stripe)
            if g.data_drive(ext.stripe, d) not in failed
        ]
        read_events = [
            self._bdev_read(
                g.data_drive(ext.stripe, d), ext.stripe * chunk, chunk,
                ctx=ctx, deadline_ns=deadline_ns,
            )
            for d in survivors
        ]
        # if the failed chunk is partially covered we need its old content:
        # read parity too so it can be reconstructed
        parity_blocks: Dict[int, Optional[np.ndarray]] = {}
        parities_to_read = self._alive_parities(ext)[: len(failed_indices)] if partial_failed else []
        for p in parities_to_read:
            read_events.append(
                self._bdev_read(p, ext.parity_offset, chunk, ctx=ctx,
                                deadline_ns=deadline_ns)
            )
        blocks = yield from self._gather(read_events)
        survivor_blocks = blocks[: len(survivors)]
        for p, blk in zip(parities_to_read, blocks[len(survivors):]):
            parity_blocks[p] = blk
        source_bytes = chunk * len(blocks)
        yield from self._span_wait(
            self._charge_reconstruct_staging(source_bytes, ext), ctx, "staging"
        )
        yield from self._span_wait(
            self._charge_xor(len(blocks), chunk), ctx, "xor"
        )
        stripe_img: Optional[List[np.ndarray]] = None
        if self.functional:
            present = dict(zip(survivors, survivor_blocks))
            if partial_failed:
                p_blk = parity_blocks.get(ext.parity_drives[0])
                q_blk = (
                    parity_blocks.get(ext.parity_drives[1])
                    if len(ext.parity_drives) > 1
                    else None
                )
                recovered = raid6_reconstruct(
                    dict(present), g.data_per_stripe, p_blk, q_blk
                ) if g.level is RaidLevel.RAID6 else {
                    next(iter(failed_indices)): raid5_reconstruct(
                        survivor_blocks + [parity_blocks[ext.parity_drives[0]]]
                    )
                }
                present.update(recovered)
            else:
                for i in failed_indices:
                    present[i] = np.zeros(chunk, dtype=np.uint8)
            # merge new data over the old image
            stripe_img = []
            for d in range(g.data_per_stripe):
                base = present.get(d)
                if base is None:
                    base = np.zeros(chunk, dtype=np.uint8)
                base = base.copy()
                seg = touched_by_index.get(d)
                if seg is not None:
                    base[seg.chunk_offset : seg.chunk_end] = self._seg_data(io_data, seg)
                stripe_img.append(base)
        yield from self._span_wait(
            self._charge_xor(g.data_per_stripe, chunk), ctx, "xor"
        )
        p_block = q_block = None
        if self.functional:
            p_block = xor_blocks(stripe_img)
            if g.level is RaidLevel.RAID6:
                q_block = np.zeros(chunk, dtype=np.uint8)
                for i, blk in enumerate(stripe_img):
                    GF.mul_bytes_inplace_xor(q_block, GF.gen_pow(i), blk)
        if g.level is RaidLevel.RAID6:
            yield from self._span_wait(
                self._charge_gf(g.data_per_stripe, chunk), ctx, "gf"
            )
        staged = chunk * (len(survivors) + len(self._alive_parities(ext)))
        yield from self._span_wait(
            self._charge_write_staging(staged, ext), ctx, "staging"
        )
        write_events = [
            self._bdev_write(
                s.drive, s.drive_offset, s.length, self._seg_data(io_data, s),
                ctx=ctx, deadline_ns=deadline_ns,
            )
            for s in ext.segments
            if s.drive not in self.failed
        ]
        for p in self._alive_parities(ext):
            block = p_block if self._parity_index(ext, p) == 0 else q_block
            write_events.append(
                self._bdev_write(p, ext.parity_offset, chunk, block, ctx=ctx,
                                 deadline_ns=deadline_ns)
            )
        yield AllOf(self.env, write_events)

    # stripe assembly helpers -----------------------------------------------

    def _stripe_gaps(self, ext: StripeExtent) -> List[Tuple[int, int, int]]:
        """(data_index, chunk_offset, length) of stripe regions not written."""
        g = self.geometry
        covered: Dict[int, List[Tuple[int, int]]] = {}
        for s in ext.segments:
            covered.setdefault(s.data_index, []).append((s.chunk_offset, s.chunk_end))
        gaps: List[Tuple[int, int, int]] = []
        for d in range(g.data_per_stripe):
            intervals = sorted(covered.get(d, []))
            cursor = 0
            for start, end in intervals:
                if start > cursor:
                    gaps.append((d, cursor, start - cursor))
                cursor = max(cursor, end)
            if cursor < g.chunk_bytes:
                gaps.append((d, cursor, g.chunk_bytes - cursor))
        return gaps

    def _assemble_stripe(
        self, ext: StripeExtent, io_data, gaps, gap_blocks
    ) -> List[np.ndarray]:
        """Full new data image of the stripe (functional mode only)."""
        g = self.geometry
        image = [np.zeros(g.chunk_bytes, dtype=np.uint8) for _ in range(g.data_per_stripe)]
        for (d, off, length), block in zip(gaps, gap_blocks):
            image[d][off : off + length] = block
        for s in ext.segments:
            image[s.data_index][s.chunk_offset : s.chunk_end] = self._seg_data(io_data, s)
        return image
