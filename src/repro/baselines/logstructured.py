"""Log-structured RAID: the NVRAM-staging alternative (§2.3).

"A solution to this problem [partial-stripe write amplification] is to
batch partial stripe writes and only submit full stripe writes [Menon &
Cortney].  This approach requires using non-volatile memory as the cache
layer and causes I/O amplification in the background."

This controller implements that design so the trade can be measured
against dRAID:

* writes land in an NVRAM staging buffer (durable immediately — µs-scale
  completion) and are remapped into an append-only log of *full-stripe*
  writes, so the array never issues read-modify-write;
* reads consult the remap table: a logically contiguous extent may have
  been scattered across many log stripes (read amplification);
* a garbage collector rewrites the live blocks of cold stripes when free
  log space runs low (background write amplification — the cost §2.3
  names).

Layout is block-granular (4 KiB); parity is computed host-side for each
full stripe like the other host-centric baselines.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import HostCentricRaid
from repro.cluster.builder import Cluster
from repro.raid.geometry import RaidGeometry
from repro.sim.core import AllOf, Event

BLOCK = 4096


@dataclass
class LogStats:
    staged_writes: int = 0
    stripes_flushed: int = 0
    gc_runs: int = 0
    gc_blocks_moved: int = 0
    #: device bytes written / user bytes written (amplification)
    user_bytes: int = 0
    device_bytes: int = 0

    def write_amplification(self) -> float:
        if self.user_bytes == 0:
            return 0.0
        return self.device_bytes / self.user_bytes


class LogStructuredRaid(HostCentricRaid):
    """Full-stripe-only RAID over an NVRAM staging buffer."""

    #: NVRAM staging latency per write (PCIe NVDIMM/PMem-class); does not
    #: consume ingest bandwidth (DMA overlaps).
    nvram_write_ns = 3_000
    #: NVRAM ingest bandwidth.
    nvram_bw_bytes_per_s = 8e9
    #: flush once this many stripes' worth of data is staged
    flush_batch_stripes = 1
    #: staging buffer capacity: writers stall (backpressure) beyond this
    max_staged_stripes = 8
    #: run GC when free log stripes fall below this fraction
    gc_low_watermark = 0.25

    def __init__(
        self,
        cluster: Cluster,
        geometry: RaidGeometry,
        name: str = "log-raid",
        log_stripes: int = 4096,
    ) -> None:
        super().__init__(cluster, geometry, name=name)
        if geometry.stripe_data_bytes % BLOCK:
            raise ValueError("stripe size must be a multiple of 4 KiB")
        self.blocks_per_stripe = geometry.stripe_data_bytes // BLOCK
        self.log_stripes = log_stripes
        self.log_stats = LogStats()
        #: logical block -> (stripe, slot) in the log
        self._remap: Dict[int, Tuple[int, int]] = {}
        #: per log stripe: logical block per slot (None = dead/free)
        self._stripe_contents: Dict[int, List[Optional[int]]] = {}
        self._free_stripes: List[int] = list(range(log_stripes - 1, -1, -1))
        #: staged logical blocks awaiting flush (insertion ordered)
        self._staging: "OrderedDict[int, Optional[np.ndarray]]" = OrderedDict()
        self._nvram = None
        from repro.sim.resources import BandwidthChannel

        self._nvram = BandwidthChannel(
            cluster.env, self.nvram_bw_bytes_per_s,
            per_op_overhead_ns=300, name=f"{name}.nvram",
        )
        self._flusher_running = False
        self._drained = cluster.env.event()

    # -- public block interface ------------------------------------------------

    def write(self, offset: int, nbytes: int, data=None, ctx=None) -> Event:
        # ctx accepted for interface parity; the staged path is untraced
        if self.functional and data is None:
            raise ValueError("functional mode requires write data")
        if data is not None:
            data = (
                np.frombuffer(data, dtype=np.uint8)
                if isinstance(data, (bytes, bytearray))
                else np.asarray(data, dtype=np.uint8)
            )
            if len(data) != nbytes:
                raise ValueError(f"data length {len(data)} != nbytes {nbytes}")
        return self.env.process(self._staged_write(offset, nbytes, data),
                                name=f"{self.name}.write")

    def read(self, offset: int, nbytes: int, ctx=None) -> Event:
        return self.env.process(self._remapped_read(offset, nbytes),
                                name=f"{self.name}.read")

    # -- write path: stage into NVRAM ------------------------------------------

    def _staged_write(self, offset: int, nbytes: int, data):
        yield self._charge_submit()
        # backpressure: sustained load runs at the flusher's (full-stripe)
        # rate; only bursts within the buffer get pure NVRAM latency
        while len(self._staging) >= self.max_staged_stripes * self.blocks_per_stripe:
            if not self._flusher_running:
                self.env.process(self._flush(), name=f"{self.name}.flush")
            if self._drained.triggered:
                self._drained = self.env.event()
            yield self._drained
        self.log_stats.staged_writes += 1
        self.log_stats.user_bytes += nbytes
        first_block = offset // BLOCK
        last_block = (offset + nbytes - 1) // BLOCK
        # partial head/tail blocks need their old content merged in
        for block in range(first_block, last_block + 1):
            block_start = block * BLOCK
            lo = max(offset, block_start)
            hi = min(offset + nbytes, block_start + BLOCK)
            if (hi - lo) < BLOCK and block not in self._staging:
                old = yield self.env.process(self._read_block(block))
                self._staging[block] = old
                self._staging.move_to_end(block)
            elif block not in self._staging:
                self._staging[block] = (
                    np.zeros(BLOCK, dtype=np.uint8) if self.functional else None
                )
                self._staging.move_to_end(block)
            if self.functional:
                buf = self._staging[block]
                buf[lo - block_start : hi - block_start] = data[lo - offset : hi - offset]
            # a freshly staged block supersedes its logged copy
            located = self._remap.pop(block, None)
            if located is not None:
                stripe, slot = located
                self._stripe_contents[stripe][slot] = None
        # durable once NVRAM accepted the bytes (fixed latency overlaps
        # with other writers; the channel models ingest bandwidth)
        yield self._nvram.transfer(nbytes)
        yield self.env.timeout(self.nvram_write_ns)
        self.stats.writes += 1
        if (
            len(self._staging) >= self.flush_batch_stripes * self.blocks_per_stripe
            and not self._flusher_running
        ):
            self.env.process(self._flush(), name=f"{self.name}.flush")

    def _flush(self):
        """Drain staged blocks as append-only full-stripe writes."""
        self._flusher_running = True
        while len(self._staging) >= self.blocks_per_stripe:
            if not self._free_stripes:
                yield self.env.process(self._collect_garbage())
                if not self._free_stripes:
                    break  # log truly full of live data
            stripe = self._free_stripes.pop()
            blocks: List[Tuple[int, Optional[np.ndarray]]] = []
            for _ in range(self.blocks_per_stripe):
                block, payload = self._staging.popitem(last=False)
                blocks.append((block, payload))
            contents: List[Optional[int]] = []
            image = None
            if self.functional:
                image = np.concatenate(
                    [p if p is not None else np.zeros(BLOCK, dtype=np.uint8)
                     for _, p in blocks]
                )
            for slot, (block, _) in enumerate(blocks):
                self._remap[block] = (stripe, slot)
                contents.append(block)
            self._stripe_contents[stripe] = contents
            self.log_stats.stripes_flushed += 1
            self.log_stats.device_bytes += self.geometry.stripe_data_bytes
            yield from self._full_stripe_write(stripe, image)
            if not self._drained.triggered:
                self._drained.succeed()
            if len(self._free_stripes) < self.log_stripes * self.gc_low_watermark:
                yield self.env.process(self._collect_garbage())
        self._flusher_running = False

    def _full_stripe_write(self, stripe: int, image):
        offset = stripe * self.geometry.stripe_data_bytes
        (ext,) = self.geometry.map_extent(offset, self.geometry.stripe_data_bytes)
        self.bitmap.mark(ext.stripe)
        yield self.locks.acquire(ext.stripe)
        try:
            self.stats.full_stripe_writes += 1
            yield from self._write_full(ext, image)
        finally:
            self.locks.release(ext.stripe)
            self.bitmap.clear(ext.stripe)

    # -- garbage collection --------------------------------------------------------

    def _collect_garbage(self):
        """Rewrite the live blocks of the coldest stripes back into staging.

        The background I/O amplification §2.3 warns about: every live
        block GC moves is device traffic with no new user data.
        """
        self.log_stats.gc_runs += 1
        candidates = sorted(
            self._stripe_contents,
            key=lambda s: sum(1 for b in self._stripe_contents[s] if b is not None),
        )
        target_free = max(2, int(self.log_stripes * self.gc_low_watermark * 2))
        for stripe in candidates:
            if len(self._free_stripes) >= target_free:
                break
            contents = self._stripe_contents.pop(stripe)
            live = [(slot, block) for slot, block in enumerate(contents) if block is not None]
            for slot, block in live:
                data = None
                if self.functional:
                    data = yield self.env.process(
                        self._read_log_block(stripe, slot)
                    )
                self._remap.pop(block, None)
                self._staging[block] = data
                self._staging.move_to_end(block)
                self.log_stats.gc_blocks_moved += 1
                self.log_stats.device_bytes += BLOCK
            self._free_stripes.append(stripe)

    # -- read path --------------------------------------------------------------------

    def _remapped_read(self, offset: int, nbytes: int):
        yield self._charge_submit()
        buffer = np.zeros(nbytes, dtype=np.uint8) if self.functional else None
        first_block = offset // BLOCK
        last_block = (offset + nbytes - 1) // BLOCK
        pending = []
        for block in range(first_block, last_block + 1):
            pending.append(
                self.env.process(self._fill_block(block, offset, nbytes, buffer))
            )
        yield AllOf(self.env, pending)
        self.stats.reads += 1
        return buffer

    def _fill_block(self, block: int, offset: int, nbytes: int, buffer):
        data = yield self.env.process(self._read_block(block))
        if buffer is None or data is None:
            return
        block_start = block * BLOCK
        lo = max(offset, block_start)
        hi = min(offset + nbytes, block_start + BLOCK)
        buffer[lo - offset : hi - offset] = data[lo - block_start : hi - block_start]

    def _read_block(self, block: int):
        """One logical 4 KiB block: staging, the log, or zeros."""
        if block in self._staging:
            staged = self._staging[block]
            yield self.env.timeout(0)
            return staged.copy() if staged is not None else None
        located = self._remap.get(block)
        if located is None:
            yield self.env.timeout(0)
            return np.zeros(BLOCK, dtype=np.uint8) if self.functional else None
        data = yield self.env.process(self._read_log_block(*located))
        return data

    def _read_log_block(self, stripe: int, slot: int):
        user_offset = stripe * self.geometry.stripe_data_bytes + slot * BLOCK
        (ext,) = self.geometry.map_extent(user_offset, BLOCK)
        buffer = np.zeros(BLOCK, dtype=np.uint8) if self.functional else None
        yield from self._read_extent(ext, buffer, user_offset)
        return buffer
