"""The Linux software RAID (MD driver) model.

Linux MD routes every write and every reconstruction through a stripe
cache managed in 4 KiB pages by a single kernel thread (``md/raidX``).
That thread is the documented reason MD cannot approach the theoretical
bound (§2.3) and shows *negative* scaling with stripe width (Fig. 12/16):
per-stripe-head bookkeeping touches state for every member drive.

The model charges, on one dedicated core:

* ``page_ns`` per 4 KiB page staged through the cache on writes
  (new data + old data read for RMW + parity, i.e. all bytes handled);
* ``head_ns_per_row_per_drive`` × stripe-rows × width per write —
  the stripe-head state machine cost that grows with array width;
* ``recon_page_ns`` per 4 KiB source page on reconstruction, plus the
  same width-dependent head cost with ``recon_head_ns`` — degraded reads
  collapse to under a GB/s exactly as Fig. 15/16 report.

Normal reads bypass the stripe cache (as in MD itself) but pay the kernel
block-layer submission cost, which keeps small-I/O reads below the
user-space systems (Fig. 9).
"""

from __future__ import annotations

from repro.baselines.base import HostCentricRaid
from repro.cluster.builder import Cluster
from repro.cluster.machines import CpuCore
from repro.raid.geometry import RaidGeometry, StripeExtent

PAGE = 4096


class MdRaid(HostCentricRaid):
    """Linux MD flavour of host-centric RAID."""

    #: Kernel block layer + MD remap per user I/O.
    submit_ns = 15_000
    #: MD serves normal reads without the stripe cache (no stripe lock).
    lock_reads = False

    #: Stripe-cache page handling cost (single kernel thread).
    page_ns = 850
    #: Per-row, per-member stripe-head bookkeeping on writes.
    head_ns_per_row_per_drive = 100
    #: Reconstruction source-page handling cost.
    recon_page_ns = 2_000
    #: Per-row, per-member stripe-head bookkeeping on reconstruction.
    recon_head_ns = 800

    def __init__(
        self, cluster: Cluster, geometry: RaidGeometry, name: str = "md", **kwargs
    ) -> None:
        super().__init__(cluster, geometry, name=name, **kwargs)
        #: The single md/raidX kernel thread everything serializes on.
        self.md_thread = CpuCore(self.env, f"{name}.raid-thread")

    def _rows(self, ext: StripeExtent) -> int:
        span_off, span_len = ext.parity_span()
        return max(1, (span_len + PAGE - 1) // PAGE)

    def _charge_write_staging(self, staged_bytes: int, ext: StripeExtent):
        pages = (staged_bytes + PAGE - 1) // PAGE
        head = self._rows(ext) * self.geometry.num_drives * self.head_ns_per_row_per_drive
        return self.md_thread.execute(pages * self.page_ns + head)

    def _charge_reconstruct_staging(self, source_bytes: int, ext: StripeExtent):
        pages = (source_bytes + PAGE - 1) // PAGE
        head = self._rows(ext) * self.geometry.num_drives * self.recon_head_ns
        return self.md_thread.execute(pages * self.recon_page_ns + head)

    def _charge_degraded_read_staging(self, nbytes: int, ext: StripeExtent):
        # MD's read bypass is off on degraded arrays: reads page through
        # the stripe cache even when their chunk is intact.
        pages = (nbytes + PAGE - 1) // PAGE
        head = self._rows(ext) * self.geometry.num_drives * self.head_ns_per_row_per_drive
        return self.md_thread.execute(pages * self.page_ns + head)
