"""The SPDK RAID-5/6 POC model.

This is the paper's strongest baseline (§9.1): the Intel SPDK RAID-5 proof
of concept, enhanced by the authors with ISA-L and RAID-6 support.  It is
user-space and poll-mode (low per-command cost), computes all parity on the
host with ISA-L-class kernels, and — unlike dRAID — takes the stripe lock
even for normal reads (§8, implementation choice (ii)).
"""

from __future__ import annotations

from repro.baselines.base import HostCentricRaid


class SpdkRaid(HostCentricRaid):
    """Host-centric user-space RAID, SPDK-POC flavour."""

    #: SPDK submit path: bdev layer + RAID mapping, a few microseconds.
    submit_ns = 2_000
    #: The POC locks stripes on reads as well as writes.
    lock_reads = True
