"""Cluster assembly: machines, CPU cores, and topology builders.

A cluster mirrors the paper's testbed (§9.1): one host machine plus N
storage servers, each with a poll-mode CPU core, a NIC and an NVMe drive,
all attached to a single-switch RDMA fabric.  The host holds an RDMA RC
connection to every server; servers are additionally connected pairwise so
dRAID bdevs can exchange partial parities peer-to-peer (§3).
"""

from repro.cluster.machines import CpuCore, HostMachine, Machine, StorageServer
from repro.cluster.profiles import CpuProfile, DEFAULT_CPU
from repro.cluster.builder import Cluster, ClusterConfig, build_cluster

__all__ = [
    "Cluster",
    "ClusterConfig",
    "CpuCore",
    "CpuProfile",
    "DEFAULT_CPU",
    "HostMachine",
    "Machine",
    "StorageServer",
    "build_cluster",
]
