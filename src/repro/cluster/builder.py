"""Topology builder.

:func:`build_cluster` assembles the paper's testbed shape: one host, N
storage servers, a single switch, host-to-server RDMA connections and a
full mesh of server-to-server connections (used only by dRAID).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # annotation only: keep repro.cluster import-light
    from repro.faults.domains import DomainTopology
    from repro.qos import OverloadConfig

from repro.cluster.machines import HostMachine, StorageServer
from repro.cluster.profiles import DEFAULT_CPU, CpuProfile
from repro.net.fabric import Fabric, RdmaConnection
from repro.net.nic import GOODPUT_100G, Nic
from repro.obs import Observability, ObservabilityConfig
from repro.sim.core import Environment
from repro.verify import Verifier, VerifyConfig
from repro.storage.drive import NvmeDrive
from repro.storage.profiles import DELL_AGN_MU, DriveProfile


@dataclass
class ClusterConfig:
    """Parameters of a simulated testbed."""

    num_servers: int = 8
    #: Topology name prefixed (as ``"<name>."``) onto every machine, NIC,
    #: drive and connection name, so several clusters can share one
    #: :class:`~repro.sim.core.Environment` (rack-scale composition,
    #: :mod:`repro.rack`) without colliding in traces and process names.
    #: The default empty string reproduces the historic unprefixed names
    #: byte-for-byte.
    name: str = ""
    host_nic_rate: float = GOODPUT_100G
    #: One rate per server; None means every server gets ``server_nic_rate``.
    server_nic_rates: Optional[Sequence[float]] = None
    server_nic_rate: float = GOODPUT_100G
    #: NICs per storage server (§5.5 network sharing: connections are
    #: placed on the least-used NIC at connect time).
    nics_per_server: int = 1
    drive_profile: DriveProfile = DELL_AGN_MU
    cpu_profile: CpuProfile = DEFAULT_CPU
    host_cores: int = 4
    server_cores: int = 1
    #: 0 = timing-only mode; otherwise per-drive functional capacity (bytes).
    functional_capacity: int = 0
    propagation_ns: int = 1_500
    rdma_op_ns: int = 3_000
    #: Per-attempt I/O timeout for the RAID controllers built on this
    #: cluster (§5.4 prolonged-failure detection).  Controllers may override
    #: it per array via their ``timeout_ns`` constructor parameter.
    io_timeout_ns: int = 50_000_000
    #: None (the default) leaves tracing/utilization sampling entirely
    #: unarmed — runs are byte-identical to an unobserved simulation.  Set
    #: an :class:`repro.obs.ObservabilityConfig` to attach a
    #: :class:`repro.obs.Observability` hub at ``cluster.obs``.
    observability: Optional[ObservabilityConfig] = None
    #: None (the default) leaves the sanitizer/protocol checker entirely
    #: unarmed — runs are byte-identical to an unverified simulation.  Set
    #: a :class:`repro.verify.VerifyConfig` to attach a
    #: :class:`repro.verify.Verifier` hub at ``cluster.verify``.
    verify: Optional[VerifyConfig] = None
    #: None (the default) gives faults no shape — every fault event is
    #: independent, exactly as before.  Set a
    #: :class:`repro.faults.domains.DomainTopology` to give correlated
    #: events (``DomainOutage``, ``BatchFailureStorm``) and the
    #: domain-aware chaos budget a blast-radius map.  Pure bookkeeping:
    #: attaching a topology changes nothing until an event references it.
    domains: Optional["DomainTopology"] = None
    #: None (the default) leaves overload control entirely unarmed — queues
    #: stay unbounded and runs are byte-identical to the historic datapath.
    #: Set a :class:`repro.qos.OverloadConfig` to attach a
    #: :class:`repro.qos.QosControl` hub at ``cluster.qos`` (admission
    #: bounds, deadlines, retry budget, circuit breaker).
    overload: Optional["OverloadConfig"] = None


class Cluster:
    """A wired-up testbed: host + servers + connections."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        host: HostMachine,
        servers: List[StorageServer],
        host_connections: List[RdmaConnection],
        peer_connections: Dict[Tuple[int, int], RdmaConnection],
        config: ClusterConfig,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.host = host
        self.servers = servers
        self.host_connections = host_connections
        self._peer_connections = peer_connections
        self.config = config
        #: Armed by :class:`repro.faults.FaultInjector`; when set, the RAID
        #: controllers enable their resilient (timeout/retry) datapaths.
        self.fault_injection = None
        #: Armed by :class:`repro.storage.integrity.IntegrityStore.attach`;
        #: when set, the RAID controllers verify chunk checksums on reads
        #: and repair mismatches from parity.
        self.integrity = None
        #: Armed by :func:`build_cluster` when
        #: ``config.observability`` is set: a :class:`repro.obs.Observability`
        #: hub (tracer + utilization sampler).  None keeps every
        #: instrumentation site on its zero-cost short-circuit path.
        self.obs = None
        #: Armed by :func:`build_cluster` when ``config.verify`` is set: a
        #: :class:`repro.verify.Verifier` hub (kernel sanitizer + protocol
        #: checker).  None keeps every check site on its zero-cost
        #: short-circuit path.
        self.verify = None
        #: Armed by :class:`repro.raid.recovery.RecoveryOrchestrator`; when
        #: set, the fault injector routes heal-triggered rebuilds through
        #: the orchestrator (risk-ordered, SLO-paced) instead of kicking
        #: off a plain sequential :class:`~repro.raid.rebuild.RebuildJob`.
        self.recovery = None
        #: Armed by :func:`build_cluster` when ``config.overload`` is set: a
        #: :class:`repro.qos.QosControl` hub (admission queue, retry budget,
        #: circuit breaker, shared stats).  None keeps every overload check
        #: on its zero-cost short-circuit path.
        self.qos = None

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def host_connection(self, server_index: int) -> RdmaConnection:
        """The host <-> server ``server_index`` queue pair."""
        return self.host_connections[server_index]

    def peer_connection(self, i: int, j: int) -> RdmaConnection:
        """The server ``i`` <-> server ``j`` queue pair (order-insensitive)."""
        if i == j:
            raise ValueError("no peer connection to self")
        return self._peer_connections[(min(i, j), max(i, j))]

    def _end_of(self, connection: RdmaConnection, machine) -> "ConnectionEnd":
        """The connection end belonging to one of ``machine``'s NICs."""
        for end in (connection.a, connection.b):
            if end.nic in machine.nics:
                return end
        raise ValueError(f"{machine!r} owns neither end of {connection.name}")

    def host_end(self, server_index: int):
        """The host's end of its queue pair to ``server_index``."""
        return self._end_of(self.host_connections[server_index], self.host)

    def server_end(self, server_index: int):
        """Server ``server_index``'s end of its host queue pair."""
        return self._end_of(
            self.host_connections[server_index], self.servers[server_index]
        )

    def peer_end(self, i: int, j: int):
        """Server ``i``'s end of the i <-> j peer queue pair."""
        return self._end_of(self.peer_connection(i, j), self.servers[i])

    def drives(self) -> List[NvmeDrive]:
        return [s.drive for s in self.servers]

    def reset_accounting(self) -> None:
        """Zero every NIC/drive/CPU counter (used between warmup and measure)."""
        for server in self.servers:
            for nic in server.nics:
                nic.reset_accounting()
            server.drive.stats.reset()
            for core in server.cores:
                core.reset_accounting()
        for nic in self.host.nics:
            nic.reset_accounting()
        for core in self.host.cores:
            core.reset_accounting()


def build_cluster(env: Environment, config: Optional[ClusterConfig] = None) -> Cluster:
    """Build a cluster according to ``config`` (paper defaults if omitted)."""
    config = config or ClusterConfig()
    if config.num_servers < 1:
        raise ValueError("need at least one server")
    rates = config.server_nic_rates
    if rates is not None and len(rates) != config.num_servers:
        raise ValueError(
            f"server_nic_rates has {len(rates)} entries for {config.num_servers} servers"
        )
    fabric = Fabric(
        env, propagation_ns=config.propagation_ns, rdma_op_ns=config.rdma_op_ns
    )
    # "" for the historic single-cluster testbed; "<name>." under a rack
    prefix = f"{config.name}." if config.name else ""
    host = HostMachine(
        env,
        f"{prefix}host",
        [Nic(env, config.host_nic_rate, name=f"{prefix}host.nic")],
        num_cores=config.host_cores,
        cpu_profile=config.cpu_profile,
    )
    if config.nics_per_server < 1:
        raise ValueError("need at least one NIC per server")
    servers: List[StorageServer] = []
    for i in range(config.num_servers):
        rate = rates[i] if rates is not None else config.server_nic_rate
        nics = [
            Nic(env, rate, name=f"{prefix}server{i}.nic{n}")
            for n in range(config.nics_per_server)
        ]
        drive = NvmeDrive(
            env,
            config.drive_profile,
            name=f"{prefix}server{i}.nvme",
            functional_capacity=config.functional_capacity,
        )
        servers.append(
            StorageServer(
                env,
                f"{prefix}server{i}",
                nics,
                [drive],
                num_cores=config.server_cores,
                cpu_profile=config.cpu_profile,
            )
        )

    def pick_nic(server: StorageServer) -> "Nic":
        # §5.5: "new connections are created on the least used NIC";
        # at build time usage = number of connections already placed.
        nic = min(server.nics, key=lambda n: placement_counts[id(n)])
        placement_counts[id(nic)] += 1
        return nic

    placement_counts: Dict[int, int] = {
        id(nic): 0 for server in servers for nic in server.nics
    }
    host_connections = [
        fabric.connect(host.nic, pick_nic(server), name=f"{prefix}host-s{i}")
        for i, server in enumerate(servers)
    ]
    peer_connections: Dict[Tuple[int, int], RdmaConnection] = {}
    for i in range(config.num_servers):
        for j in range(i + 1, config.num_servers):
            peer_connections[(i, j)] = fabric.connect(
                pick_nic(servers[i]), pick_nic(servers[j]), name=f"{prefix}s{i}-s{j}"
            )
    cluster = Cluster(
        env, fabric, host, servers, host_connections, peer_connections, config
    )
    if config.observability is not None:
        cluster.obs = Observability(cluster, config.observability)
    if config.verify is not None:
        cluster.verify = Verifier(cluster, config.verify)
    if config.overload is not None:
        from repro.qos import QosControl  # local: keep repro.cluster import-light

        cluster.qos = QosControl(config.overload)
    return cluster
