"""Machines: CPU cores, hosts and storage servers."""

from __future__ import annotations

from typing import List

from repro.cluster.profiles import DEFAULT_CPU, CpuProfile
from repro.net.nic import Nic
from repro.sim.core import Environment, Event
from repro.sim.resources import NS_PER_S, BandwidthChannel
from repro.storage.drive import NvmeDrive


class CpuCore:
    """A poll-mode CPU core modeled as a FIFO work queue.

    Work is expressed directly in nanoseconds; the core serves it in FIFO
    order at real-time rate (one nanosecond of work per nanosecond).
    """

    def __init__(self, env: Environment, name: str = "core") -> None:
        self.env = env
        self.name = name
        self._channel = BandwidthChannel(env, NS_PER_S, name=name)

    def execute(self, work_ns: int) -> Event:
        """Event that fires when ``work_ns`` of queued work completes."""
        if work_ns < 0:
            raise ValueError(f"negative work {work_ns}")
        if work_ns == 0:
            return self.env.timeout(0)
        return self._channel.transfer(int(work_ns))

    @property
    def busy_ns(self) -> int:
        return self._channel.busy_ns

    def utilization(self, elapsed_ns: int) -> float:
        return self._channel.utilization(elapsed_ns)

    def reset_accounting(self) -> None:
        self._channel.reset_accounting()


class Machine:
    """A server with NICs and CPU cores."""

    def __init__(
        self,
        env: Environment,
        name: str,
        nics: List[Nic],
        num_cores: int = 1,
        cpu_profile: CpuProfile = DEFAULT_CPU,
    ) -> None:
        if not nics:
            raise ValueError(f"{name}: at least one NIC required")
        self.env = env
        self.name = name
        self.nics = nics
        self.cpu_profile = cpu_profile
        self.cores = [CpuCore(env, f"{name}.core{i}") for i in range(num_cores)]
        self._next_core = 0

    @property
    def nic(self) -> Nic:
        """Primary NIC."""
        return self.nics[0]

    @property
    def cpu(self) -> CpuCore:
        """Primary core (servers are limited to one core per SSD, §7)."""
        return self.cores[0]

    def pick_core(self) -> CpuCore:
        """Round-robin core selection for multi-core hosts."""
        core = self.cores[self._next_core]
        self._next_core = (self._next_core + 1) % len(self.cores)
        return core

    def least_used_nic(self) -> Nic:
        """NIC with the smallest TX backlog (§5.5 network sharing)."""
        return min(self.nics, key=lambda nic: nic.tx.backlog_ns())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class StorageServer(Machine):
    """A storage server exporting one (or more) NVMe drives."""

    def __init__(
        self,
        env: Environment,
        name: str,
        nics: List[Nic],
        drives: List[NvmeDrive],
        num_cores: int = 1,
        cpu_profile: CpuProfile = DEFAULT_CPU,
    ) -> None:
        super().__init__(env, name, nics, num_cores, cpu_profile)
        if not drives:
            raise ValueError(f"{name}: at least one drive required")
        self.drives = drives

    @property
    def drive(self) -> NvmeDrive:
        return self.drives[0]


class HostMachine(Machine):
    """The machine where the virtual RAID block device is attached."""
