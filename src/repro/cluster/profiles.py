"""CPU cost profiles.

Calibrated against the systems the paper builds on:

* SPDK poll-mode command handling is a couple of microseconds per command.
* ISA-L XOR runs at tens of GB/s on one modern x86 core; GF(2^8)
  multiply-accumulate (the RAID-6 Q kernel) is roughly half that (§8).
* The Linux MD model additionally pays a per-4KiB-page stripe-cache cost on
  a single kernel thread; that constant lives with the MD controller
  (:mod:`repro.baselines.mdraid`), not here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuProfile:
    """Per-core software costs for a poll-mode storage stack."""

    #: CPU time to parse/dispatch one command capsule.
    cmd_handle_ns: int = 1_500
    #: CPU time to post one completion / callback.
    completion_ns: int = 500
    #: ISA-L XOR throughput per core (RAID-5 parity, partial parities).
    xor_bytes_per_s: float = 25e9
    #: ISA-L GF multiply-accumulate throughput per core (RAID-6 Q).
    gf_bytes_per_s: float = 12e9

    def xor_ns(self, nbytes: int) -> int:
        """CPU time to XOR ``nbytes`` (per source block)."""
        return int(nbytes * 1e9 / self.xor_bytes_per_s)

    def gf_ns(self, nbytes: int) -> int:
        """CPU time for a GF multiply-accumulate over ``nbytes``."""
        return int(nbytes * 1e9 / self.gf_bytes_per_s)


DEFAULT_CPU = CpuProfile()
