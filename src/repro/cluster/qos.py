"""Back-compat alias: the QoS layer moved to :mod:`repro.qos`.

The §5.5 token bucket started life here; the overload-control subsystem
(admission bounds, deadlines, retry budgets, circuit breakers) absorbed it
into the dedicated :mod:`repro.qos` package.  This module keeps the old
import path working for existing callers and tests.
"""

from repro.qos.tokens import NS_PER_S, RateLimitedDevice, TokenBucket

__all__ = ["NS_PER_S", "RateLimitedDevice", "TokenBucket"]
