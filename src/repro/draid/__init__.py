"""dRAID: disaggregated RAID with peer-to-peer parity offload.

The paper's contribution (§3-§6).  dRAID keeps a thin coordinator on the
host and pushes parity generation, parity reduction and data
reconstruction to the storage servers, which exchange partial results
peer-to-peer.  The result: a partial-stripe write moves each user byte
through the host NIC exactly once (vs 2x for host-centric RAID-5 RMW and
3x for RAID-6), and a degraded read returns only requested bytes to the
host (vs ``width - 1`` chunks).

* :mod:`repro.draid.protocol` — the NVMe-oF protocol extension (§4).
* :mod:`repro.draid.bdev` — the server-side controller (§5.1-§5.3).
* :mod:`repro.draid.host` — the host-side controller (§3, §5, §6.1).
* :mod:`repro.draid.reconstruction` — reducer selection, random and
  bandwidth-aware (§6.2).
"""

from repro.draid.host import DraidArray
from repro.draid.bdev import DraidBdevServer
from repro.draid.ec_array import EcDraidArray, EcGeometry
from repro.draid.offload import OffloadedController, OffloadedDraidArray
from repro.draid.reconstruction import (
    BandwidthAwareSelector,
    RandomReducerSelector,
    solve_reducer_probabilities,
)

__all__ = [
    "BandwidthAwareSelector",
    "DraidArray",
    "DraidBdevServer",
    "EcDraidArray",
    "EcGeometry",
    "OffloadedController",
    "OffloadedDraidArray",
    "RandomReducerSelector",
    "solve_reducer_probabilities",
]
