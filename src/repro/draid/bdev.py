"""The dRAID server-side controller (one per storage server).

A dRAID bdev services standard NVMe-oF reads/writes *plus* the extended
opcodes of §4.  It holds an RDMA RC connection end to the host and one to
every peer server, runs Algorithm 1 (partial-write handling) with the §5.3
I/O pipeline, Algorithm 2 (reduce-phase handling with late-Parity
tolerance), and the §6.1 reconstruction participant/reducer roles.

A bdev is unaware of RAID configuration: every command carries all the
information needed (next-dest, wait-num, fwd-offset/length, ...).

Overload control (armed via ``queue_depth``): intake on the *host*
connection is bounded — a host command arriving while ``queue_depth``
host commands are in service is fast-rejected with a typed ``"busy"``
completion, and a host command dequeued past its ``deadline_ns`` is
fast-failed with ``"deadline"``.  Peer messages are never bounded or
expired: a partial parity in flight must always be allowed to land, or an
admitted write could never reach a final state.  With the knob unset the
historic unbounded behavior is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.builder import Cluster
from repro.draid.protocol import (
    DraidCompletion,
    ParityCmd,
    PartialWriteCmd,
    PeerMsg,
    ReconstructionCmd,
    Subtype,
)
from repro.ec import raid6_reconstruct, xor_blocks
from repro.ec.gf import GF
from repro.nvmeof.messages import RESPONSE_BYTES, NvmeOfCommand, Opcode
from repro.sim.core import Environment
from repro.storage.drive import DriveFailedError

#: PeerMsg.key value marking a reconstruction partial (keyed by cid instead).
RECON_KEY = -1

_RS_CODES = {}


def _rs_code_cache_get(k: int, m: int):
    """Memoized Reed-Solomon codes (building the matrix is O(k^3))."""
    code = _RS_CODES.get((k, m))
    if code is None:
        from repro.ec.rs import ReedSolomon

        code = ReedSolomon(k, m)
        _RS_CODES[(k, m)] = code
    return code


_LRC_CODES = {}


def _lrc_code_cache_get(k: int, l: int, g: int):
    """Memoized local-reconstruction codes (same reason as RS)."""
    code = _LRC_CODES.get((k, l, g))
    if code is None:
        from repro.ec.lrc import LocalReconstructionCode

        code = LocalReconstructionCode(k, l, g)
        _LRC_CODES[(k, l, g)] = code
    return code


@dataclass
class _ParityReduceState:
    """Algorithm 2 state for one in-flight parity reduction.

    Partials are *collected* in arrival order and folded at completion —
    XOR's commutativity makes the fold order irrelevant (§5), and deferring
    the arithmetic keeps late-Parity handling trivial: nothing about the
    final region needs to be known until the Parity command has arrived.
    """

    partials: List[Tuple[int, Optional[np.ndarray]]] = field(default_factory=list)
    old_parity: Optional[Tuple[int, Optional[np.ndarray]]] = None
    received: int = 0
    #: None until the Parity command arrives (late-arrival handling, §5.2)
    wait_num: Optional[int] = None
    cmd: Optional[ParityCmd] = None
    #: fires when the Parity command arrives (used by the §5.2 barrier
    #: ablation, where partials may not be processed before the command)
    cmd_arrived: Optional[object] = None
    #: the end the Parity command came from (completion destination)
    origin: Optional[object] = None


@dataclass
class _ReconReduceState:
    """Reducer-side state for one reconstruction (§6.1)."""

    received: int = 0
    blocks: Dict[Tuple[str, int], Optional[np.ndarray]] = field(default_factory=dict)
    #: None until the reducer's own Reconstruction command arrives
    cmd: Optional[ReconstructionCmd] = None
    own_done: bool = False
    #: the end the command came from (completion destination)
    origin: Optional[object] = None


class DraidBdevServer:
    """Server-side dRAID controller for one storage server."""

    def __init__(
        self,
        cluster: Cluster,
        index: int,
        pipeline: bool = True,
        blocking_reduce: bool = False,
        queue_depth: Optional[int] = None,
    ) -> None:
        if queue_depth is not None and queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        self.env: Environment = cluster.env
        self.cluster = cluster
        self.index = index
        self.server = cluster.servers[index]
        #: §5.3 pipeline on/off (ablation knob)
        self.pipeline = pipeline
        #: §5.2 ablation: process peer partials only after the Parity
        #: command has arrived (the "barrier" design dRAID rejects)
        self.blocking_reduce = blocking_reduce
        self.functional = cluster.config.functional_capacity > 0
        self.host_end = cluster.server_end(index)
        self.peer_ends = {}
        for j in range(cluster.num_servers):
            if j == index:
                continue
            self.peer_ends[j] = cluster.peer_end(index, j)
        self._parity_states: Dict[int, _ParityReduceState] = {}
        self._recon_states: Dict[int, _ReconReduceState] = {}
        self.commands_served = 0
        self.down_until = 0
        self.crashes = 0
        #: Overload control: max in-service host commands (None = unbounded).
        self.queue_depth = queue_depth
        self.inflight = 0
        self.busy_rejections = 0
        self.deadline_rejections = 0
        #: Observability: armed by the host controller when ``cluster.obs``
        #: is set; server-side spans parent to each command's ``trace``.
        self.tracer = None
        #: Verification: armed by the host controller when ``cluster.verify``
        #: is set; a :class:`repro.verify.protocol.ProtocolChecker` that
        #: audits every completion/fold this bdev produces.
        self.verifier = None
        self.env.process(self._serve(self.host_end), name=f"{self.server.name}.draid")
        for end in self.peer_ends.values():
            self.env.process(self._serve(end), name=f"{self.server.name}.peer")

    # -- fault injection -----------------------------------------------------

    def crash(self, down_ns: int) -> None:
        """Crash/restart this storage server.

        Everything volatile is lost: queued command capsules and — crucially
        for §5.4 — the in-flight partial-parity and reconstruction reduce
        state.  Commands arriving while down are dropped without completion;
        the host recovers via timeout + idempotent full-stripe retry.
        """
        if down_ns <= 0:
            raise ValueError(f"crash duration must be positive, got {down_ns}")
        self.down_until = max(self.down_until, self.env.now + down_ns)
        self.crashes += 1
        if self.verifier is not None:
            self.verifier.on_server_crash(self.index)
        self._parity_states.clear()
        self._recon_states.clear()
        self.host_end.inbox.clear()
        for end in self.peer_ends.values():
            end.inbox.clear()

    # -- dispatch ---------------------------------------------------------

    def _serve(self, end):
        host = end is self.host_end
        while True:
            message = yield end.recv()
            if self.env.now < self.down_until:
                continue  # crashed: message lost, no completion ever sent
            self.commands_served += 1
            bounded = host and not isinstance(message, PeerMsg)
            if bounded and self._fast_reject(message, end):
                continue
            if isinstance(message, NvmeOfCommand):
                handler = self._handle_plain(message, end)
            elif isinstance(message, PartialWriteCmd):
                handler = self._handle_partial_write(message, end)
            elif isinstance(message, ParityCmd):
                handler = self._handle_parity(message, end)
            elif isinstance(message, ReconstructionCmd):
                handler = self._handle_reconstruction(message, end)
            elif isinstance(message, PeerMsg):
                handler = self._handle_peer(message, end)
            else:
                raise TypeError(f"unknown dRAID message {message!r}")
            if bounded and self.queue_depth is not None:
                self.inflight += 1
                handler = self._run_bounded(handler)
            self.env.process(handler, name=f"{self.server.name}.op")

    def _run_bounded(self, handler):
        """Wrap a host-command handler with in-service accounting."""
        try:
            yield from handler
        finally:
            self.inflight -= 1

    def _completion_kind(self, message) -> str:
        """The DraidCompletion kind a rejection of ``message`` must carry."""
        if isinstance(message, NvmeOfCommand):
            return "read" if message.opcode is Opcode.READ else "write"
        if isinstance(message, PartialWriteCmd):
            return "data"
        if isinstance(message, ParityCmd):
            return "parity"
        return "recon"

    def _fast_reject(self, message, origin) -> bool:
        """Typed busy/deadline fast-reject for host commands (armed only).

        Rejecting *before* dispatch means no parity/reconstruction reduce
        state is ever created for the command, so nothing dangles; the
        host sees the error completion, aborts the op and retries
        idempotently (§5.4).
        """
        # unknown message types carry no deadline and fall through to the
        # dispatch table's own rejection path
        deadline = getattr(message, "deadline_ns", None)
        if deadline is not None and self.env.now >= deadline:
            self.deadline_rejections += 1
            self._complete(
                origin, message.cid, self._completion_kind(message), ok=False,
                error=f"{self.server.name}: deadline exceeded at target",
                ctx=self._ctx(message), status="deadline",
            )
            return True
        if self.queue_depth is not None and self.inflight >= self.queue_depth:
            self.busy_rejections += 1
            self._complete(
                origin, message.cid, self._completion_kind(message), ok=False,
                error=f"{self.server.name}: submission queue full",
                ctx=self._ctx(message), status="busy",
            )
            return True
        return False

    def _complete(self, origin, cid, kind, ok=True, data=None, io_offset=0,
                  error=None, payload=0, ctx=None, status=None):
        """Send a completion back to the end the command came from —
        normally the host, or the controller server when the host-side
        controller is offloaded (§7)."""
        if self.verifier is not None:
            self.verifier.on_server_completion(
                self.index, cid, kind, ok, io_offset=io_offset, trace=ctx
            )
        origin.send(
            DraidCompletion(cid, kind, ok=ok, data=data, io_offset=io_offset,
                            error=error, trace=ctx, status=status),
            payload_bytes=payload,
            header_bytes=RESPONSE_BYTES,
        )

    def _ctx(self, message):
        """The trace context of ``message`` (None when tracing is off)."""
        return message.trace if self.tracer is not None else None

    def _span(self, work_event, ctx, name):
        """Yield a CPU charge, recording a compute span (ns) when traced."""
        if ctx is None:
            yield work_event
            return
        t0 = self.env.now
        yield work_event
        self.tracer.record(
            ctx, name, "compute", f"{self.server.name}.cpu", t0, self.env.now
        )

    # -- plain NVMe-oF ------------------------------------------------------

    def _handle_plain(self, cmd: NvmeOfCommand, origin):
        cpu = self.server.cpu
        profile = self.server.cpu_profile
        ctx = self._ctx(cmd)
        yield from self._span(cpu.execute(profile.cmd_handle_ns), ctx, "draid.parse")
        try:
            if cmd.opcode is Opcode.READ:
                data = yield self.server.drive.read(cmd.offset, cmd.length, ctx=ctx)
                yield from self._span(
                    cpu.execute(profile.completion_ns), ctx, "draid.complete"
                )
                self._complete(origin, cmd.cid, "read", data=data,
                               payload=cmd.length, ctx=ctx)
            else:
                yield origin.rdma_read(cmd.length, ctx=ctx)
                yield self.server.drive.write(cmd.offset, cmd.length, cmd.data, ctx=ctx)
                yield from self._span(
                    cpu.execute(profile.completion_ns), ctx, "draid.complete"
                )
                self._complete(origin, cmd.cid, "write", ctx=ctx)
        except (DriveFailedError, ValueError) as exc:
            self._complete(origin, cmd.cid,
                           "read" if cmd.opcode is Opcode.READ else "write",
                           ok=False, error=str(exc), ctx=ctx)

    # -- PartialWrite: Algorithm 1 + §5.3 pipeline ---------------------------

    def _handle_partial_write(self, cmd: PartialWriteCmd, origin):
        cpu = self.server.cpu
        profile = self.server.cpu_profile
        ctx = self._ctx(cmd)
        yield from self._span(cpu.execute(profile.cmd_handle_ns), ctx, "draid.parse")
        try:
            if self.pipeline:
                yield from self._partial_write_pipelined(cmd, origin, ctx)
            else:
                yield from self._partial_write_serial(cmd, origin, ctx)
        except (DriveFailedError, ValueError) as exc:
            self._complete(origin, cmd.cid, "data", ok=False, error=str(exc), ctx=ctx)

    def _fetch_and_read(self, cmd: PartialWriteCmd, origin, ctx=None):
        """Start the remote-data fetch and the drive read(s).

        Returns ``(fetch_event_or_None, [((chunk_offset, length), event)])``.
        Both are started eagerly so they overlap (§5.3).
        """
        fetch = origin.rdma_read(cmd.length, ctx=ctx) if cmd.length else None
        reads: List[Tuple[Tuple[int, int], Any]] = []
        chunk_base = cmd.chunk_drive_offset
        if cmd.subtype is Subtype.RMW:
            reads.append(
                ((cmd.chunk_offset, cmd.length),
                 self.server.drive.read(cmd.drive_offset, cmd.length, ctx=ctx))
            )
        elif cmd.subtype is Subtype.RW_WRITE:
            # read the chunk complement so the full new image can be forwarded
            seg_start, seg_end = cmd.chunk_offset, cmd.chunk_offset + cmd.length
            fwd_end = cmd.fwd_offset + cmd.fwd_length
            if seg_start > cmd.fwd_offset:
                length = seg_start - cmd.fwd_offset
                reads.append(
                    ((cmd.fwd_offset, length),
                     self.server.drive.read(chunk_base + cmd.fwd_offset, length, ctx=ctx))
                )
            if seg_end < fwd_end:
                length = fwd_end - seg_end
                reads.append(
                    ((seg_end, length),
                     self.server.drive.read(chunk_base + seg_end, length, ctx=ctx))
                )
        elif cmd.subtype is Subtype.RW_READ:
            reads.append(
                ((cmd.fwd_offset, cmd.fwd_length),
                 self.server.drive.read(
                     chunk_base + cmd.fwd_offset, cmd.fwd_length, ctx=ctx
                 ))
            )
        else:
            raise ValueError(f"bad PartialWrite subtype {cmd.subtype}")
        return fetch, reads

    def _build_partial(self, cmd: PartialWriteCmd, old_blocks):
        """The partial parity this bdev contributes (functional mode only)."""
        if not self.functional:
            return None
        partial = np.zeros(cmd.fwd_length, dtype=np.uint8)
        if cmd.subtype is Subtype.RMW:
            old = old_blocks[0][1]
            rel = cmd.chunk_offset - cmd.fwd_offset
            partial[rel : rel + cmd.length] = old ^ cmd.data
        else:
            # full new chunk image: complement reads + the new segment
            for (offset, length), block in old_blocks:
                rel = offset - cmd.fwd_offset
                partial[rel : rel + length] = block
            if cmd.length:
                rel = cmd.chunk_offset - cmd.fwd_offset
                partial[rel : rel + cmd.length] = cmd.data
        return partial

    def _partial_write_pipelined(self, cmd: PartialWriteCmd, origin, ctx=None):
        fetch, reads = self._fetch_and_read(cmd, origin, ctx)
        # remote-data fetch and drive reads overlap (§5.3)
        old_blocks = []
        for region, event in reads:
            block = yield event
            old_blocks.append((region, block))
        if fetch is not None:
            yield fetch
        # drive write proceeds concurrently with parity generation/forwarding
        write_event = None
        if cmd.length:
            write_event = self.server.drive.write(
                cmd.drive_offset, cmd.length, cmd.data, ctx=ctx
            )
        forward_done = self.env.process(self._forward_partials(cmd, old_blocks, ctx))
        if write_event is not None:
            yield write_event
            yield from self._span(
                self.server.cpu.execute(self.server.cpu_profile.completion_ns),
                ctx, "draid.complete",
            )
            # §5.3: the data bdev reports its own drive-write completion,
            # overlapping with partial-parity forwarding.
            self._complete(origin, cmd.cid, "data", ctx=ctx)
        yield forward_done

    def _partial_write_serial(self, cmd: PartialWriteCmd, origin, ctx=None):
        """Ablation: NVMe-oF-style strictly serial processing (no §5.3)."""
        fetch, reads = self._fetch_and_read(cmd, origin, ctx)
        if fetch is not None:
            yield fetch
        old_blocks = []
        for region, event in reads:
            block = yield event
            old_blocks.append((region, block))
        if cmd.length:
            yield self.server.drive.write(cmd.drive_offset, cmd.length, cmd.data, ctx=ctx)
        yield self.env.process(self._forward_partials(cmd, old_blocks, ctx))
        if cmd.length:
            yield from self._span(
                self.server.cpu.execute(self.server.cpu_profile.completion_ns),
                ctx, "draid.complete",
            )
            self._complete(origin, cmd.cid, "data", ctx=ctx)

    def _forward_partials(self, cmd: PartialWriteCmd, old_blocks, ctx=None):
        cpu = self.server.cpu
        profile = self.server.cpu_profile
        yield from self._span(
            cpu.execute(profile.xor_ns(cmd.fwd_length)), ctx, "draid.partial-xor"
        )
        partial = self._build_partial(cmd, old_blocks)
        if cmd.dests is not None:
            # generic erasure code (§7): explicit per-parity coefficients
            destinations = [
                (dest, None if coefficient == 1 else coefficient)
                for dest, coefficient in cmd.dests
            ]
        else:
            # RAID-5/6: role 0 forwards the raw delta (P); role 1 weights
            # it by g^data_index (Q, §4 "other command data")
            destinations = [(cmd.next_dest, None if cmd.next_dest_parity == 0
                             else GF.gen_pow(cmd.data_index))]
            if cmd.next_dest2 is not None:
                destinations.append(
                    (cmd.next_dest2, None if cmd.next_dest2_parity == 0
                     else GF.gen_pow(cmd.data_index))
                )
        for dest, coefficient in destinations:
            block = partial
            if coefficient is not None:
                yield from self._span(
                    cpu.execute(profile.gf_ns(cmd.fwd_length)), ctx, "draid.partial-gf"
                )
                if partial is not None:
                    block = GF.mul_bytes(coefficient, partial)
            self._signal_peer(
                dest,
                PeerMsg(cmd.cid, key=cmd.parity_key, fwd_offset=cmd.fwd_offset,
                        fwd_length=cmd.fwd_length, source=("data", cmd.data_index),
                        data=block, trace=ctx),
            )

    def _signal_peer(self, dest: int, msg: PeerMsg) -> None:
        if dest == self.index:
            raise ValueError("a bdev never forwards a partial to itself")
        self.peer_ends[dest].send(msg)

    # -- Parity: Algorithm 2 -------------------------------------------------

    def _parity_state(self, key: int) -> _ParityReduceState:
        state = self._parity_states.get(key)
        if state is None:
            state = _ParityReduceState()
            self._parity_states[key] = state
        return state

    def _handle_parity(self, cmd: ParityCmd, origin):
        cpu = self.server.cpu
        profile = self.server.cpu_profile
        ctx = self._ctx(cmd)
        yield from self._span(cpu.execute(profile.cmd_handle_ns), ctx, "draid.parse")
        key = cmd.key
        state = self._parity_state(key)
        state.origin = origin
        if cmd.subtype is Subtype.RMW:
            try:
                old = yield self.server.drive.read(
                    cmd.parity_drive_offset + cmd.fwd_offset, cmd.fwd_length, ctx=ctx
                )
            except (DriveFailedError, ValueError) as exc:
                del self._parity_states[key]
                self._complete(origin, cmd.cid, "parity", ok=False, error=str(exc),
                               ctx=ctx)
                return
            yield from self._span(
                cpu.execute(profile.xor_ns(cmd.fwd_length)), ctx, "draid.parity-xor"
            )
            state.old_parity = (cmd.fwd_offset, old)
        state.wait_num = (state.wait_num or 0) + cmd.wait_num
        state.cmd = cmd
        if self.verifier is not None:
            self.verifier.on_parity_cmd(self.index, cmd.cid, key, cmd.wait_num)
        if state.cmd_arrived is not None and not state.cmd_arrived.triggered:
            # wake peers held at the §5.2 barrier (ablation mode only)
            state.cmd_arrived.succeed()
        yield from self._maybe_finish_parity(key)

    def _maybe_finish_parity(self, key: int):
        """Persist and acknowledge once Parity arrived and all partials are in."""
        state = self._parity_states.get(key)
        if state is None or state.cmd is None:
            return
        if state.wait_num is None or state.received < state.wait_num:
            return
        cmd = state.cmd
        del self._parity_states[key]
        data = None
        if self.functional:
            data = np.zeros(cmd.fwd_length, dtype=np.uint8)
            if state.old_parity is not None:
                offset, block = state.old_parity
                rel = offset - cmd.fwd_offset
                data[rel : rel + len(block)] ^= block
            for offset, block in state.partials:
                rel = offset - cmd.fwd_offset
                data[rel : rel + len(block)] ^= block
        origin = state.origin if state.origin is not None else self.host_end
        ctx = self._ctx(cmd)
        try:
            yield self.server.drive.write(
                cmd.parity_drive_offset + cmd.fwd_offset, cmd.fwd_length, data, ctx=ctx
            )
        except (DriveFailedError, ValueError) as exc:
            self._complete(origin, cmd.cid, "parity", ok=False, error=str(exc), ctx=ctx)
            return
        yield from self._span(
            self.server.cpu.execute(self.server.cpu_profile.completion_ns),
            ctx, "draid.complete",
        )
        self._complete(origin, cmd.cid, "parity", ctx=ctx)

    # -- Peer messages ----------------------------------------------------------

    def _handle_peer(self, msg: PeerMsg, end):
        cpu = self.server.cpu
        profile = self.server.cpu_profile
        ctx = self._ctx(msg)
        yield from self._span(cpu.execute(profile.cmd_handle_ns), ctx, "draid.parse")
        if msg.key != RECON_KEY and self.blocking_reduce:
            # §5.2 ablation: a barrier design cannot even fetch the partial
            # before the Parity command has set up the reduction, so the
            # one-sided READ and everything after it wait for the command.
            # dRAID proper proceeds immediately (non-blocking multi-stage).
            state = self._parity_state(msg.key)
            if state.cmd is None:
                if state.cmd_arrived is None:
                    state.cmd_arrived = self.env.event()
                yield state.cmd_arrived
        # fetch the partial from the signalling peer (one-sided READ)
        yield end.rdma_read(msg.fwd_length, ctx=ctx)
        yield from self._span(
            cpu.execute(profile.xor_ns(msg.fwd_length)), ctx, "draid.reduce-xor"
        )
        if msg.key == RECON_KEY:
            yield from self._reduce_recon_partial(msg)
        else:
            state = self._parity_state(msg.key)
            state.partials.append((msg.fwd_offset, msg.data))
            state.received += 1
            if self.verifier is not None:
                self.verifier.on_parity_fold(self.index, msg.key)
            yield from self._maybe_finish_parity(msg.key)

    # -- Reconstruction (§6.1) ---------------------------------------------------

    def _recon_state(self, cid: int) -> _ReconReduceState:
        state = self._recon_states.get(cid)
        if state is None:
            state = _ReconReduceState()
            self._recon_states[cid] = state
        return state

    def _handle_reconstruction(self, cmd: ReconstructionCmd, origin):
        cpu = self.server.cpu
        profile = self.server.cpu_profile
        ctx = self._ctx(cmd)
        yield from self._span(cpu.execute(profile.cmd_handle_ns), ctx, "draid.parse")
        # read the union of the normal-read segment and the recon region
        # (a single drive I/O even when they are disjoint, §6.1)
        spans = [(cmd.region_offset, cmd.region_offset + cmd.region_length)]
        if cmd.read_segment is not None:
            offset, length, _io = cmd.read_segment
            spans.append((offset, offset + length))
        union_start = min(s for s, _ in spans)
        union_end = max(e for _, e in spans)
        try:
            block = yield self.server.drive.read(
                cmd.chunk_drive_offset + union_start, union_end - union_start, ctx=ctx
            )
        except (DriveFailedError, ValueError) as exc:
            self._complete(origin, cmd.cid, "recon", ok=False, error=str(exc), ctx=ctx)
            return
        region = None
        if self.functional:
            rel = cmd.region_offset - union_start
            region = block[rel : rel + cmd.region_length]
        if cmd.reducer == self.index:
            state = self._recon_state(cmd.cid)
            state.cmd = cmd
            state.origin = origin
            state.own_done = True
            state.blocks[cmd.source] = region
            yield from self._maybe_finish_recon(cmd.cid)
        else:
            # prioritize forwarding the partial to the reducer (§6.1)
            self._signal_peer(
                cmd.reducer,
                PeerMsg(cmd.cid, key=RECON_KEY, fwd_offset=cmd.region_offset,
                        fwd_length=cmd.region_length, source=cmd.source, data=region,
                        trace=ctx),
            )
        if cmd.read_segment is not None:
            offset, length, io_offset = cmd.read_segment
            seg = None
            if self.functional:
                rel = offset - union_start
                seg = block[rel : rel + length]
            yield from self._span(
                cpu.execute(profile.completion_ns), ctx, "draid.complete"
            )
            # normal-read bytes return directly to the host (§6.1 key idea)
            self._complete(origin, cmd.cid, "read", data=seg, io_offset=io_offset,
                           payload=length, ctx=ctx)

    def _reduce_recon_partial(self, msg: PeerMsg):
        state = self._recon_state(msg.cid)
        state.blocks[msg.source] = msg.data
        state.received += 1
        yield from self._maybe_finish_recon(msg.cid)

    def _maybe_finish_recon(self, cid: int):
        state = self._recon_states.get(cid)
        if state is None or state.cmd is None or not state.own_done:
            return
        if state.received < state.cmd.wait_num:
            return
        cmd = state.cmd
        del self._recon_states[cid]
        profile = self.server.cpu_profile
        ctx = self._ctx(cmd)
        yield from self._span(
            self.server.cpu.execute(
                profile.xor_ns(cmd.region_length) * max(1, len(state.blocks) - 1)
            ),
            ctx, "draid.decode",
        )
        result = None
        if self.functional:
            result = self._decode_lost(cmd, state)
        yield from self._span(
            self.server.cpu.execute(profile.completion_ns), ctx, "draid.complete"
        )
        origin = state.origin if state.origin is not None else self.host_end
        self._complete(origin, cmd.cid, "recon", data=result,
                       io_offset=cmd.lost_io_offset, payload=cmd.region_length,
                       ctx=ctx)

    def _decode_lost(self, cmd: ReconstructionCmd, state: _ReconReduceState):
        """Rebuild the lost region from the labeled partials."""
        kind, index = cmd.lost
        parity_blocks = {i: b for (k, i), b in state.blocks.items() if k == "parity"}
        data_blocks = {i: b for (k, i), b in state.blocks.items() if k == "data"}
        if cmd.code_km is not None:
            if cmd.code_km[0] == "lrc":
                # local-reconstruction code: single in-group losses repair
                # with the group's XOR, anything wider runs the GF decode
                _, k_data, l_local, g_global = cmd.code_km
                code = _lrc_code_cache_get(k_data, l_local, g_global)
                shards = dict(data_blocks)
                for j, block in parity_blocks.items():
                    shards[k_data + j] = block
                return code.decode_one(index, shards, length=cmd.region_length)
            # generic Reed-Solomon decode (§7)
            k_data, m_parity = cmd.code_km
            code = _rs_code_cache_get(k_data, m_parity)
            shards = dict(data_blocks)
            for j, block in parity_blocks.items():
                shards[k_data + j] = block
            recovered = code.decode(shards, length=cmd.region_length)
            return recovered[index]
        if (
            kind == "data"
            and set(parity_blocks) == {0}
            and len(data_blocks) == cmd.num_data - 1
        ):
            # plain XOR path (RAID-5, or RAID-6 single failure through P)
            return xor_blocks(list(data_blocks.values()) + [parity_blocks[0]])
        recovered = raid6_reconstruct(
            dict(data_blocks),
            cmd.num_data,
            parity_blocks.get(0),
            parity_blocks.get(1),
        )
        return recovered[index]
