"""dRAID generalized to arbitrary Reed-Solomon codes (§7).

"Most erasure codes can also be generated in parallel, so I/O
disaggregation still applies."  This module proves it: the same
broadcast/reduce protocol runs a systematic (k+m) Reed-Solomon layout —
each data bdev forwards, for parity row j, ``C[j,i] * partial`` (where C is
the code's parity matrix and i its data index), and each of the m parity
bdevs reduces with plain XOR, exactly as RAID-5/6.

:class:`EcGeometry` rotates all m parity chunks across members (balancing
load, as RAID-6 does for P and Q), and :class:`EcDraidArray` reuses the
dRAID host controller wholesale, overriding only the places where parity
math is computed or destinations chosen.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.builder import Cluster
from repro.draid.host import DraidArray
from repro.draid.protocol import ParityCmd, PartialWriteCmd, ReconstructionCmd, Subtype
from repro.ec.gf import GF
from repro.ec.lrc import LocalReconstructionCode
from repro.ec.rs import ReedSolomon, UnrecoverableErasureError
from repro.nvmeof.messages import NvmeOfCommand, Opcode, next_cid
from repro.raid.geometry import RaidGeometry, StripeExtent
from repro.raid.layout import Layout, RotatingLayout


class EcGeometry(RaidGeometry):
    """Striped layout with ``num_parity`` rotating parity chunks.

    ``layout`` plugs in an alternative placement (e.g. a
    :class:`~repro.raid.layout.DeclusteredLayout`); the default
    :class:`~repro.raid.layout.RotatingLayout` reproduces the historical
    m-parity rotation byte-for-byte.
    """

    def __init__(
        self,
        num_drives: int,
        chunk_bytes: int,
        num_parity: int,
        layout: Optional[Layout] = None,
    ) -> None:
        if num_parity < 1:
            raise ValueError(f"need at least one parity, got {num_parity}")
        if num_drives <= num_parity + 1:
            raise ValueError(
                f"{num_drives} drives cannot host {num_parity} parities + data"
            )
        if chunk_bytes <= 0 or chunk_bytes % 4096:
            raise ValueError(f"chunk size must be a positive multiple of 4096, got {chunk_bytes}")
        if layout is None:
            layout = RotatingLayout(num_drives, num_parity)
        if layout.num_drives != num_drives or layout.num_parity != num_parity:
            raise ValueError(
                f"layout {layout.describe()} does not match "
                f"{num_drives} drives / {num_parity} parity"
            )
        self.level = None  #: not a standard RAID level
        self.num_drives = num_drives
        self.chunk_bytes = chunk_bytes
        self.num_parity = num_parity
        self.layout = layout
        self.data_per_stripe = layout.data_per_stripe
        self.stripe_data_bytes = self.data_per_stripe * chunk_bytes
        self.full_width = layout.stripe_width == num_drives

    def __repr__(self) -> str:
        return (
            f"<EcGeometry RS({self.data_per_stripe}+{self.num_parity}) "
            f"drives={self.num_drives} chunk={self.chunk_bytes // 1024}KiB>"
        )


class EcDraidArray(DraidArray):
    """A disaggregated erasure-coded array: dRAID over RS(k+m).

    Tolerates up to ``m`` simultaneous member failures.  The host-side
    orchestration (stripe queue, broadcast, reduce callbacks, §5.4
    retries) is inherited from :class:`DraidArray`; only the parity
    arithmetic and destination wiring differ.
    """

    #: code family name used in failure messages (subclasses override)
    code_name = "RS"

    def __init__(
        self,
        cluster: Cluster,
        geometry: EcGeometry,
        name: str = "ec-draid",
        **kwargs,
    ) -> None:
        if not isinstance(geometry, EcGeometry):
            raise TypeError("EcDraidArray requires an EcGeometry")
        if getattr(self, "code", None) is None:
            self.code = ReedSolomon(geometry.data_per_stripe, geometry.num_parity)
        super().__init__(cluster, geometry, name=name, **kwargs)
        # non-MDS codes (LRC) tolerate fewer than num_parity arbitrary losses
        self.fault_tolerance = getattr(
            self.code, "fault_tolerance", geometry.num_parity
        )

    # -- failure tolerance -------------------------------------------------

    def fail_drive(self, index: int) -> None:
        self.failed.add(index)
        self.cluster.servers[index].drive.fail()
        if len(self.failed) > self.fault_tolerance:
            from repro.baselines.base import ArrayFailureError

            raise ArrayFailureError(
                f"{self.name}: {len(self.failed)} failures exceed "
                f"{self.code_name} tolerance of {self.fault_tolerance}"
            )

    # -- parity computation overrides ------------------------------------------

    def _encode_parities(self, chunks: List[Optional[np.ndarray]]):
        """All m parity blocks for a full stripe image (functional mode)."""
        if not self.functional:
            return [None] * self.geometry.num_parity
        return self.code.encode(chunks)

    def _write_full(self, ext: StripeExtent, io_data, ctx=None, deadline_ns=None):
        g = self.geometry
        chunk = g.chunk_bytes
        yield from self._span_wait(
            self._charge_gf(g.data_per_stripe * g.num_parity, chunk), ctx, "gf"
        )
        blocks = self._encode_parities(
            [self._seg_data(io_data, s) for s in ext.segments]
        )
        failed = self.failed_in_stripe(ext.stripe)
        cid = next_cid()
        writes = 0
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for seg in ext.segments:
            if seg.drive in failed:
                continue
            cmd = NvmeOfCommand(cid, Opcode.WRITE, seg.drive_offset, seg.length,
                                data=self._seg_data(io_data, seg),
                                deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[seg.drive].send(cmd)
            writes += 1
        for j, p in enumerate(ext.parity_drives):
            if p in failed:
                continue
            cmd = NvmeOfCommand(cid, Opcode.WRITE, ext.parity_offset, chunk,
                                data=blocks[j], deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[p].send(cmd)
            writes += 1
        waiter = self._register(cid, {"write": writes})
        expired = yield from self._await_op(cid, waiter, deadline_ns=deadline_ns)
        self._record_envelope(ectx, "draid.write-full", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)

    def _write_distributed(self, ext: StripeExtent, io_data, rcw: bool, ctx=None,
                           deadline_ns=None):
        g = self.geometry
        chunk = g.chunk_bytes
        failed = self.failed_in_stripe(ext.stripe)
        alive_parities = [
            (j, p) for j, p in enumerate(ext.parity_drives) if p not in failed
        ]
        if not alive_parities:
            return (yield from self._plain_segment_writes(
                ext, io_data, ctx, deadline_ns=deadline_ns
            ))
        if rcw:
            fwd_off, fwd_len = 0, chunk
            subtype_parity = Subtype.RW_READ
        else:
            fwd_off, fwd_len = ext.parity_span()
            subtype_parity = Subtype.RMW
        cid = next_cid()
        touched = {s.data_index: s for s in ext.segments}
        contributors = list(range(g.data_per_stripe)) if rcw else sorted(touched)
        matrix = self.code.parity_matrix
        writers = 0
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for d in contributors:
            seg = touched.get(d)
            drive = g.data_drive(ext.stripe, d)
            if rcw:
                subtype = Subtype.RW_WRITE if seg is not None else Subtype.RW_READ
                cmd_fwd = (0, chunk)
            else:
                subtype = Subtype.RMW
                cmd_fwd = (seg.chunk_offset, seg.length)
            dests = tuple((self._server_of(p), int(matrix[j, d])) for j, p in alive_parities)
            self.host_ends[drive].send(
                PartialWriteCmd(
                    cid,
                    subtype=subtype,
                    drive_offset=seg.drive_offset if seg else 0,
                    length=seg.length if seg else 0,
                    chunk_offset=seg.chunk_offset if seg else 0,
                    data_index=d,
                    fwd_offset=cmd_fwd[0],
                    fwd_length=cmd_fwd[1],
                    next_dest=self._server_of(alive_parities[0][1]),
                    chunk_drive_offset=ext.stripe * chunk,
                    parity_key=cid,
                    dests=dests,
                    data=self._seg_data(io_data, seg) if seg is not None else None,
                    trace=ectx,
                    deadline_ns=deadline_ns,
                )
            )
            if seg is not None:
                writers += 1
        for j, p in alive_parities:
            self.host_ends[p].send(
                ParityCmd(cid, subtype=subtype_parity,
                          parity_drive_offset=ext.parity_offset,
                          fwd_offset=fwd_off, fwd_length=fwd_len,
                          wait_num=len(contributors), parity_index=j, key=cid,
                          trace=ectx, deadline_ns=deadline_ns)
            )
        waiter = self._register(cid, {"data": writers, "parity": len(alive_parities)})
        expired = yield from self._await_op(cid, waiter, deadline_ns=deadline_ns)
        self._record_envelope(ectx, "draid.partial-write", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)

    # -- reconstruction overrides -------------------------------------------------

    def _recon_participants(self, ext: StripeExtent, lost_index=None):
        g = self.geometry
        failed = self.failed_in_stripe(ext.stripe)
        participants = []
        lost_data = 0
        for d in range(g.data_per_stripe):
            drive = g.data_drive(ext.stripe, d)
            if drive in failed:
                lost_data += 1
            else:
                participants.append((drive, ("data", d)))
        alive_parities = [
            (p, ("parity", j))
            for j, p in enumerate(ext.parity_drives)
            if p not in failed
        ]
        participants.extend(alive_parities[:lost_data])
        return participants

    def _recon_cmd(self, *args, **kwargs):
        # stamp the RS code so reducers run the generic decode (§7)
        kwargs["code_km"] = (self.geometry.data_per_stripe, self.geometry.num_parity)
        return ReconstructionCmd(*args, **kwargs)

    # -- degraded / fallback writes -------------------------------------------------

    def _write_degraded(self, ext: StripeExtent, io_data, failed_touched, ctx=None,
                        deadline_ns=None):
        g = self.geometry
        chunk = g.chunk_bytes
        failed = self.failed_in_stripe(ext.stripe)
        alive_parities = [
            (j, p) for j, p in enumerate(ext.parity_drives) if p not in failed
        ]
        if not alive_parities:
            return (yield from self._plain_segment_writes(
                ext, io_data, ctx, deadline_ns=deadline_ns
            ))
        only_failed_chunk = (
            len(failed_touched) == len(ext.segments) == 1
            and len(failed - set(ext.parity_drives)) == 1
        )
        if not only_failed_chunk:
            return (yield from self._write_host_fallback(
                ext, io_data, ctx=ctx, deadline_ns=deadline_ns
            ))
        seg = failed_touched[0]
        failed_index = g.data_index_of_drive(ext.stripe, seg.drive)
        region_offset, region_len = seg.chunk_offset, seg.length
        matrix = self.code.parity_matrix
        cid = next_cid()
        contributors = 0
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for d in range(g.data_per_stripe):
            drive = g.data_drive(ext.stripe, d)
            if drive in failed:
                continue
            dests = tuple((self._server_of(p), int(matrix[j, d])) for j, p in alive_parities)
            self.host_ends[drive].send(
                PartialWriteCmd(
                    cid, subtype=Subtype.RW_READ, drive_offset=0, length=0,
                    chunk_offset=0, data_index=d, fwd_offset=region_offset,
                    fwd_length=region_len, next_dest=self._server_of(alive_parities[0][1]),
                    chunk_drive_offset=ext.stripe * chunk, parity_key=cid,
                    dests=dests, trace=ectx, deadline_ns=deadline_ns,
                )
            )
            contributors += 1
        new_data = self._seg_data(io_data, seg)
        from repro.draid.protocol import PeerMsg

        for j, p in alive_parities:
            block = None
            if self.functional:
                block = GF.mul_bytes(int(matrix[j, failed_index]), new_data)
            yield from self._span_wait(self._charge_gf(1, region_len), ctx, "gf")
            self.host_ends[p].send(
                PeerMsg(cid, key=cid, fwd_offset=region_offset, fwd_length=region_len,
                        source=("data", failed_index), data=block, trace=ectx)
            )
            self.host_ends[p].send(
                ParityCmd(cid, subtype=Subtype.RW_READ,
                          parity_drive_offset=ext.parity_offset,
                          fwd_offset=region_offset, fwd_length=region_len,
                          wait_num=contributors + 1, parity_index=j, key=cid,
                          trace=ectx, deadline_ns=deadline_ns)
            )
        waiter = self._register(cid, {"parity": len(alive_parities)})
        expired = yield from self._await_op(cid, waiter, deadline_ns=deadline_ns)
        self._record_envelope(ectx, "draid.degraded-write", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)

    def _write_host_fallback(self, ext: StripeExtent, io_data, attempt: int = 0,
                             ctx=None, deadline_ns=None):
        g = self.geometry
        chunk = g.chunk_bytes
        gaps = self._stripe_gaps(ext)
        stripe_base = ext.stripe * g.stripe_data_bytes
        gap_buffers = []
        for d, off, length in gaps:
            user_offset = stripe_base + d * chunk + off
            gap_ext, = g.map_extent(user_offset, length)
            buffer = np.zeros(length, dtype=np.uint8) if self.functional else None
            yield from self._read_extent(
                gap_ext, buffer, user_offset, ctx=ctx, deadline_ns=deadline_ns
            )
            gap_buffers.append(buffer)
        yield from self._span_wait(
            self._charge_gf(g.data_per_stripe * g.num_parity, chunk), ctx, "gf"
        )
        stripe_img = None
        blocks = [None] * g.num_parity
        if self.functional:
            stripe_img = self._assemble_stripe(ext, io_data, gaps, gap_buffers)
            blocks = self.code.encode(stripe_img)
        failed = self.failed_in_stripe(ext.stripe)
        cid = next_cid()
        writes = 0
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for d in range(g.data_per_stripe):
            drive = g.data_drive(ext.stripe, d)
            if drive in failed:
                continue
            block = stripe_img[d] if stripe_img is not None else None
            cmd = NvmeOfCommand(cid, Opcode.WRITE, ext.stripe * chunk, chunk,
                                data=block, deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[drive].send(cmd)
            writes += 1
        for j, p in enumerate(ext.parity_drives):
            if p in failed:
                continue
            cmd = NvmeOfCommand(cid, Opcode.WRITE, ext.parity_offset, chunk,
                                data=blocks[j], deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[p].send(cmd)
            writes += 1
        waiter = self._register(cid, {"write": writes})
        expired = yield from self._await_op(
            cid, waiter, attempt=attempt, deadline_ns=deadline_ns
        )
        self._record_envelope(ectx, "draid.write-fallback", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)


class LrcDraidArray(EcDraidArray):
    """dRAID over a local-reconstruction code (LRC(k, l, g)).

    The geometry's ``num_parity`` chunks are split into ``local_groups``
    local XOR parities plus ``num_parity - local_groups`` global RS
    parities.  Full-stripe writes and partial-parity forwarding reuse the
    generic §7 machinery unchanged (out-of-group local parities receive
    zero-coefficient partials, which fold to no-ops); degraded reads
    narrow the reconstruction broadcast to the lost chunk's *local group*
    whenever the decode planner picks local repair, so single-failure
    rebuild reads touch ``k/l + 1`` members instead of ``k``.

    Tolerance is the code's: ``g`` arbitrary failures (non-MDS — fewer
    than the ``l + g`` parities the stripe carries).
    """

    code_name = "LRC"

    def __init__(
        self,
        cluster: Cluster,
        geometry: EcGeometry,
        local_groups: int = 2,
        name: str = "lrc-draid",
        **kwargs,
    ) -> None:
        if not isinstance(geometry, EcGeometry):
            raise TypeError("LrcDraidArray requires an EcGeometry")
        global_parities = geometry.num_parity - local_groups
        if local_groups < 1 or global_parities < 1:
            raise ValueError(
                f"{geometry.num_parity} parities cannot split into "
                f"{local_groups} local groups + >=1 global parity"
            )
        self.code = LocalReconstructionCode(
            geometry.data_per_stripe, local_groups, global_parities
        )
        super().__init__(cluster, geometry, name=name, **kwargs)

    def _recon_cmd(self, *args, **kwargs):
        # stamp the LRC descriptor so reducers prefer local repair
        code = self.code
        kwargs["code_km"] = ("lrc", code.k, code.l, code.g)
        return ReconstructionCmd(*args, **kwargs)

    def _recon_participants(self, ext: StripeExtent, lost_index=None):
        g = self.geometry
        code = self.code
        failed = self.failed_in_stripe(ext.stripe)
        erased = [
            d for d in range(g.data_per_stripe)
            if g.data_drive(ext.stripe, d) in failed
        ] + [
            code.k + j for j, p in enumerate(ext.parity_drives) if p in failed
        ]
        if lost_index is None or not erased:
            return super()._recon_participants(ext, lost_index)
        try:
            plan = self.code.plan_decode(erased)
        except UnrecoverableErasureError:
            return super()._recon_participants(ext, lost_index)
        target_step = next(
            (s for s in plan.steps if s.target == lost_index), None
        )
        if target_step is not None and target_step.method == "local":
            sources = sorted(target_step.sources)
        else:
            # global repair: the planner's independent row set decodes
            # every erased shard, so ship exactly those sources
            sources = sorted(
                {s for step in plan.steps if step.method == "global"
                 for s in step.sources}
            )
        if not sources:
            return super()._recon_participants(ext, lost_index)
        participants = []
        for shard in sources:
            if shard < code.k:
                participants.append(
                    (g.data_drive(ext.stripe, shard), ("data", shard))
                )
            else:
                participants.append(
                    (ext.parity_drives[shard - code.k], ("parity", shard - code.k))
                )
        return participants
