"""The dRAID host-side controller (§3, §5, §6.1).

The host is a thin coordinator: it admits one write per stripe (stripe
queue), decides the write mode, broadcasts PartialWrite/Parity commands,
and collects callbacks.  Data bytes leave the host exactly once per write;
partial parities flow peer-to-peer between the storage servers.  Normal
reads are lock-free (§8).

Where dRAID gains nothing from disaggregation the host handles data
itself (§3): full-stripe writes compute parity locally, and degraded
writes that touch a failed chunk contribute the failed chunk's image as a
host-supplied partial parity.

Failure handling follows §5.4: completions are collected until every
sub-operation reaches a final state; on error or timeout the host marks
prolonged-failed drives faulty and retries the whole stripe as a
(degraded-aware) full-stripe write.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import HostCentricRaid
from repro.cluster.builder import Cluster
from repro.draid.bdev import DraidBdevServer
from repro.draid.protocol import (
    DraidCompletion,
    ParityCmd,
    PartialWriteCmd,
    PeerMsg,
    ReconstructionCmd,
    Subtype,
)
from repro.draid.reconstruction import RandomReducerSelector
from repro.ec import xor_blocks
from repro.ec.gf import GF
from repro.nvmeof.messages import IoError, NvmeOfCommand, Opcode, next_cid
from repro.raid.geometry import RaidGeometry, RaidLevel, StripeExtent
from repro.raid.modes import WriteMode, classify_write
from repro.sim.core import AnyOf, Event


class _OpWaiter:
    """Collects the multiple completions of one dRAID operation.

    Releases when every expected completion bucket is drained, or
    immediately on the first error (all constituent mutations are
    idempotent re-executions of the same logical write, so an abort
    followed by a full-stripe retry is safe — §5.4).
    """

    def __init__(self, env, expected: Dict[str, int], participants=()) -> None:
        self.event: Event = env.event()
        self.remaining = {k: v for k, v in expected.items() if v > 0}
        self.completions: List[DraidCompletion] = []
        self.errors: List[DraidCompletion] = []
        #: members expected to answer directly / seen answering (§5.4
        #: prolonged-failure fencing keys off the difference)
        self.participants = set(participants)
        self.responded: set = set()
        self.start_ns = env.now
        if not self.remaining:
            self.event.succeed(self)

    def on_completion(self, comp: DraidCompletion) -> None:
        if self.event.triggered:
            return
        if not comp.ok:
            self.errors.append(comp)
            self.event.succeed(self)
            return
        self.completions.append(comp)
        if comp.kind in self.remaining:
            self.remaining[comp.kind] -= 1
            if self.remaining[comp.kind] <= 0:
                del self.remaining[comp.kind]
        if not self.remaining:
            self.event.succeed(self)


class DraidArray(HostCentricRaid):
    """The dRAID virtual block device."""

    submit_ns = 2_000
    #: dRAID normal reads are lock-free (§8 implementation choice (ii)).
    lock_reads = False
    #: §5.4 per-operation execution time upper bound.
    timeout_ns = 50_000_000
    #: give up after this many full-stripe retries of one extent.
    max_retries = 3

    def __init__(
        self,
        cluster: Cluster,
        geometry: RaidGeometry,
        name: str = "draid",
        selector=None,
        pipeline: bool = True,
        blocking_reduce: bool = False,
        timeout_ns: Optional[int] = None,
        failslow_detector=None,
    ) -> None:
        self.pipeline = pipeline
        self.blocking_reduce = blocking_reduce
        self.selector = selector or RandomReducerSelector(seed=17)
        super().__init__(cluster, geometry, name=name, timeout_ns=timeout_ns)
        if failslow_detector is not None:
            self.failslow_detector = failslow_detector

    # -- transport --------------------------------------------------------

    def _attach_transport(self) -> None:
        target_depth = (
            None if self.qos is None else self.qos.config.target_queue_depth
        )
        self.bdev_servers = [
            DraidBdevServer(
                self.cluster, i,
                pipeline=self.pipeline,
                blocking_reduce=self.blocking_reduce,
                queue_depth=target_depth,
            )
            for i in range(self.cluster.num_servers)
        ]
        for bdev_server in self.bdev_servers:
            bdev_server.tracer = self._tracer
            bdev_server.verifier = self._protocol_verifier
        self.host_ends = [
            self.cluster.host_end(i) for i in range(self.cluster.num_servers)
        ]
        self._waiters: Dict[int, _OpWaiter] = {}
        for member, end in enumerate(self.host_ends):
            self.env.process(self._receive(end, member), name=f"{self.name}.cq")

    def _receive(self, end, member: int):
        while True:
            comp: DraidCompletion = yield end.recv()
            if self._protocol_verifier is not None:
                self._protocol_verifier.on_host_completion(member, comp)
            waiter = self._waiters.get(comp.cid)
            if waiter is None:
                continue
            waiter.responded.add(member)
            if comp.ok and self.failslow_detector is not None:
                self.failslow_detector.observe(
                    member, self.env.now - waiter.start_ns
                )
                self._maybe_eject_failslow(member)
            if self.qos is not None and self.qos.breaker is not None:
                self._breaker_observe(member, comp.ok)
            waiter.on_completion(comp)

    def _maybe_eject_failslow(self, member: int) -> None:
        """EWMA fail-slow detection (§5.4): a member whose completion
        latency dwarfs its peers' is proactively transitioned to degraded
        so reads reconstruct around it instead of waiting on it."""
        if member in self.failed or len(self.failed) >= self.fault_tolerance:
            return
        if self.failslow_detector.suspect(
            member, exclude=self.failed, now_ns=self.env.now
        ):
            self.failed.add(member)
            self.failslow_detector.note_eject(member, self.env.now)
            self.fault_stats.fail_slow_ejections += 1
            self.fault_stats.degraded_transitions += 1
            if self._verifier is not None:
                self._verifier.check_fence(self)

    def _register(
        self, cid: int, expected: Dict[str, int], participants=()
    ) -> _OpWaiter:
        if self._protocol_verifier is not None:
            self._protocol_verifier.on_register(cid, expected, participants)
        waiter = _OpWaiter(self.env, expected, participants)
        self._waiters[cid] = waiter
        return waiter

    def _await_op(
        self, cid: int, waiter: _OpWaiter, attempt: int = 0, drain: bool = True,
        deadline_ns=None,
    ):
        """Wait for all final states; flag expiry past the §5.4 deadline.

        On the resilient datapath the deadline escalates with the attempt
        number and a timed-out mutation gets a bounded drain window
        (``drain_factor x timeout``) before unresponsive participants are
        fenced; without fault injection the original unbounded wait is
        kept so healthy-path runs are bit-identical.  A request deadline
        (overload control) clamps the per-attempt timeout to the remaining
        budget either way.
        """
        if self.resilient:
            timeout_ns = self.backoff.timeout_for(
                attempt, self.timeout_ns,
                remaining_ns=self._deadline_remaining(deadline_ns),
            )
        else:
            timeout_ns = self.timeout_ns
            remaining = self._deadline_remaining(deadline_ns)
            if remaining is not None:
                timeout_ns = min(timeout_ns, max(1, remaining))
        deadline = self.env.timeout(timeout_ns)
        yield AnyOf(self.env, [waiter.event, deadline])
        expired = not waiter.event.triggered
        if expired:
            if not self.resilient:
                # §5.4: never retry until every sub-operation reached a
                # final state (concurrent writes on a stripe are forbidden).
                yield waiter.event
            else:
                self.fault_stats.timeouts += 1
                if drain:
                    # bounded §5.4 drain: one window for stragglers to
                    # land, then fence whoever never answered so their
                    # queued mutations can never race the retry
                    drain_deadline = self.env.timeout(self.drain_factor * timeout_ns)
                    yield AnyOf(self.env, [waiter.event, drain_deadline])
                    if not waiter.event.triggered:
                        self._fence_unresponsive(waiter)
        del self._waiters[cid]
        if self._protocol_verifier is not None:
            self._protocol_verifier.on_deregister(cid)
        return expired

    def _fence_unresponsive(self, waiter: _OpWaiter) -> None:
        fenced = 0
        for member in sorted(waiter.participants - waiter.responded):
            if member in self.failed:
                continue
            if len(self.failed) >= self.fault_tolerance:
                # never fence past redundancy: that converts a stall into
                # data loss; the retry budget bounds the op instead
                break
            self.failed.add(member)
            self.cluster.servers[self._server_of(member)].drive.fail()
            self.fault_stats.prolonged_failures += 1
            self.fault_stats.degraded_transitions += 1
            fenced += 1
        if fenced and self._verifier is not None:
            # real (injected) failures may legitimately exceed parity; a
            # *fencing decision* must never be what crosses the line
            self._verifier.check_fence(self)

    def _mark_prolonged_failures(self, waiter: _OpWaiter) -> None:
        """§5.4 prolonged failure: faulty drives detected via error status."""
        if not waiter.errors:
            return
        for i, server in enumerate(self.cluster.servers):
            if server.drive.failed and i not in self.failed:
                self.failed.add(i)
                self.fault_stats.degraded_transitions += 1

    # -- integrity member I/O (read-repair / scrub path) -----------------------

    def _await_repair_io(self, gathered):
        """dRAID member ops carry their own expiry (:meth:`_await_op`
        escalates deadlines and fences internally), so repair I/O cannot
        stall; unlike the base class no extra deadline race is needed."""
        try:
            outcome = yield gathered
        except IoError:
            return None
        return outcome

    def _member_read(self, drive: int, offset: int, nbytes: int):
        """Raw chunk-region read over the dRAID transport."""
        cid = next_cid()
        waiter = self._register(cid, {"read": 1}, participants={drive})
        self.host_ends[drive].send(NvmeOfCommand(cid, Opcode.READ, offset, nbytes))
        expired = yield from self._await_op(cid, waiter, drain=False)
        if waiter.errors or expired:
            raise IoError(f"{self.name}: integrity read on member {drive} failed")
        comp = next(c for c in waiter.completions if c.kind == "read")
        return comp.data

    def _member_write(self, drive: int, offset: int, nbytes: int, data):
        """Raw chunk-region write over the dRAID transport."""
        cid = next_cid()
        waiter = self._register(cid, {"write": 1}, participants={drive})
        self.host_ends[drive].send(
            NvmeOfCommand(cid, Opcode.WRITE, offset, nbytes, data=data)
        )
        expired = yield from self._await_op(cid, waiter)
        if waiter.errors or expired:
            raise IoError(f"{self.name}: integrity write on member {drive} failed")

    # -- reads -----------------------------------------------------------------

    def _read_extent(
        self, ext: StripeExtent, buffer, io_base: int, take_locks: bool = True,
        ctx=None, deadline_ns=None,
    ):
        # dRAID reads are lock-free (§8); take_locks is part of the shared
        # controller interface and has nothing to suppress here.
        if self.resilient:
            self._check_tolerance(ext.stripe)
        failed = self.failed_in_stripe(ext.stripe)
        healthy = [s for s in ext.segments if s.drive not in failed]
        lost = [s for s in ext.segments if s.drive in failed]
        if not lost:
            yield from self._plain_reads(
                ext, healthy, buffer, ctx, deadline_ns=deadline_ns
            )
            return
        yield from self._degraded_read(
            ext, healthy, lost, buffer, ctx, deadline_ns=deadline_ns
        )

    def _plain_reads(self, ext: StripeExtent, segments, buffer, ctx=None,
                     deadline_ns=None):
        pending = list(segments)
        attempts = 0
        while pending:
            # one command id per segment so payloads map back unambiguously
            submitted = []
            for seg in pending:
                cid = next_cid()
                waiter = self._register(cid, {"read": 1}, participants={seg.drive})
                cmd = NvmeOfCommand(cid, Opcode.READ, seg.drive_offset, seg.length,
                                    deadline_ns=deadline_ns)
                ectx = self._derive(ctx)
                if ectx is not None:
                    cmd.trace = ectx
                self.host_ends[seg.drive].send(cmd)
                submitted.append((cid, seg, waiter, ectx, self.env.now))
            retry = []
            for cid, seg, waiter, ectx, sent_ns in submitted:
                expired = yield from self._await_op(
                    cid, waiter, attempt=attempts, drain=False,
                    deadline_ns=deadline_ns,
                )
                self._record_envelope(ectx, "draid.read", sent_ns)
                if waiter.errors or expired:
                    # NVMe-oF reads are idempotent: resend expired ones
                    # (§5.4); errors mean a prolonged failure, handled by
                    # the degraded path on the retry round.
                    self._mark_prolonged_failures(waiter)
                    if (
                        self.resilient
                        and expired
                        and not waiter.errors
                        and attempts >= 2
                        and seg.drive not in self.failed
                        and len(self.failed) < self.fault_tolerance
                    ):
                        # silent across escalating deadlines: prolonged
                        # failure — fence the member so the degraded path
                        # serves the read instead of burning the budget
                        self.failed.add(seg.drive)
                        self.cluster.servers[self._server_of(seg.drive)].drive.fail()
                        self.fault_stats.prolonged_failures += 1
                        self.fault_stats.degraded_transitions += 1
                    retry.append(seg)
                    continue
                if buffer is not None:
                    comp = next(c for c in waiter.completions if c.kind == "read")
                    buffer[seg.io_offset : seg.io_offset + seg.length] = comp.data
            if retry:
                attempts += 1
                if attempts > self.max_retries:
                    if self.resilient:
                        self.fault_stats.io_errors += 1
                    raise IoError(f"{self.name}: read failed on stripe {ext.stripe}")
                remaining = self._deadline_remaining(deadline_ns)
                if remaining is not None and remaining <= 0:
                    self._deadline_spent("read", ext.stripe)
                self._charge_retry("read", ext.stripe)
                if self.resilient:
                    self.fault_stats.retries += 1
                    pause = self.backoff.backoff_ns(attempts, self._retry_rng)
                    if remaining is not None:
                        pause = min(pause, remaining)
                    if pause:
                        yield from self._backoff_pause(pause, ctx)
                failed = self.failed_in_stripe(ext.stripe)
                still_healthy = [s for s in retry if s.drive not in failed]
                lost = [s for s in retry if s.drive in failed]
                if lost:
                    yield from self._degraded_read(
                        ext, [], lost, buffer, ctx, deadline_ns=deadline_ns
                    )
                pending = still_healthy
            else:
                pending = []
        self._note_success()

    def _degraded_read(self, ext: StripeExtent, healthy, lost, buffer, ctx=None,
                       deadline_ns=None):
        """§6.1: merge normal reads into the reconstruction broadcast."""
        g = self.geometry
        remaining_healthy = {s.drive: s for s in healthy}
        for order, seg in enumerate(lost):
            self.stats.degraded_reads += 1
            self.stats.remote_reconstructions += 1
            lost_index = g.data_index_of_drive(ext.stripe, seg.drive)
            participants = self._recon_participants(ext, lost_index)
            region = (seg.chunk_offset, seg.length)
            reducer_member = self.selector.pick(
                [d for d, _ in participants], seg.length
            )
            reducer = self._server_of(reducer_member)
            cid = next_cid()
            also_read = 0
            folded = []
            responders = {reducer_member}
            ectx = self._derive(ctx)
            sent_ns = self.env.now
            for drive, source in participants:
                read_segment = None
                if order == 0 and drive in remaining_healthy:
                    h = remaining_healthy.pop(drive)
                    read_segment = (h.chunk_offset, h.length, h.io_offset)
                    folded.append(h)
                    also_read += 1
                    responders.add(drive)
                cmd = self._recon_cmd(
                    cid,
                    subtype=Subtype.ALSO_READ if read_segment else Subtype.NO_READ,
                    chunk_drive_offset=ext.stripe * g.chunk_bytes,
                    region_offset=region[0],
                    region_length=region[1],
                    source=source,
                    reducer=reducer,
                    wait_num=len(participants) - 1,
                    lost=("data", lost_index),
                    num_data=g.data_per_stripe,
                    read_segment=read_segment,
                    lost_io_offset=seg.io_offset,
                    deadline_ns=deadline_ns,
                )
                if ectx is not None:
                    cmd.trace = ectx
                self.host_ends[drive].send(cmd)
            waiter = self._register(
                cid, {"recon": 1, "read": also_read}, participants=responders
            )
            expired = yield from self._await_op(
                cid, waiter, drain=False, deadline_ns=deadline_ns
            )
            self._record_envelope(ectx, "draid.recon", sent_ns)
            if waiter.errors or expired:
                # reconstruction reads are idempotent too: retry once with
                # a fresh broadcast before giving up
                self._mark_prolonged_failures(waiter)
                # keep whatever normal-read payloads already arrived and
                # re-read the folded segments that were lost with the op
                received = set()
                for comp in waiter.completions:
                    if comp.kind == "read":
                        received.add(comp.io_offset)
                        if buffer is not None and comp.data is not None:
                            buffer[comp.io_offset : comp.io_offset + len(comp.data)] = comp.data
                missing = [h for h in folded if h.io_offset not in received]
                if missing:
                    yield from self._plain_reads(
                        ext, missing, buffer, ctx, deadline_ns=deadline_ns
                    )
                remaining = self._deadline_remaining(deadline_ns)
                if remaining is not None and remaining <= 0:
                    self._deadline_spent("read", ext.stripe)
                self._charge_retry("read", ext.stripe)
                if self.resilient:
                    self.fault_stats.retries += 1
                cid2 = next_cid()
                participants = self._recon_participants(ext, lost_index)
                reducer_member = self.selector.pick(
                    [d for d, _ in participants], seg.length
                )
                reducer = self._server_of(reducer_member)
                ectx2 = self._derive(ctx)
                sent2_ns = self.env.now
                for drive, source in participants:
                    cmd2 = self._recon_cmd(
                        cid2,
                        subtype=Subtype.NO_READ,
                        chunk_drive_offset=ext.stripe * g.chunk_bytes,
                        region_offset=region[0],
                        region_length=region[1],
                        source=source,
                        reducer=reducer,
                        wait_num=len(participants) - 1,
                        lost=("data", lost_index),
                        num_data=g.data_per_stripe,
                        lost_io_offset=seg.io_offset,
                        deadline_ns=deadline_ns,
                    )
                    if ectx2 is not None:
                        cmd2.trace = ectx2
                    self.host_ends[drive].send(cmd2)
                waiter = self._register(
                    cid2, {"recon": 1}, participants={reducer_member}
                )
                expired = yield from self._await_op(
                    cid2, waiter, attempt=1, drain=False, deadline_ns=deadline_ns
                )
                self._record_envelope(ectx2, "draid.recon", sent2_ns)
                if waiter.errors or expired:
                    if self.resilient:
                        self.fault_stats.io_errors += 1
                    raise IoError(
                        f"{self.name}: degraded read failed on stripe {ext.stripe}"
                    )
            if buffer is not None:
                for comp in waiter.completions:
                    if comp.data is not None:
                        buffer[comp.io_offset : comp.io_offset + len(comp.data)] = comp.data
        # healthy segments not folded into any reconstruction broadcast
        leftovers = list(remaining_healthy.values())
        if leftovers:
            yield from self._plain_reads(
                ext, leftovers, buffer, ctx, deadline_ns=deadline_ns
            )

    def _recon_participants(
        self, ext: StripeExtent, lost_index: Optional[int] = None
    ) -> List[Tuple[int, Tuple[str, int]]]:
        """(server, source-role) pairs contributing to a reconstruction.

        ``lost_index`` (the data index being rebuilt) lets locality-aware
        codes narrow the read set; the RAID-5/6 path ignores it.
        """
        g = self.geometry
        participants: List[Tuple[int, Tuple[str, int]]] = []
        failed = self.failed_in_stripe(ext.stripe)
        lost_data = 0
        for d in range(g.data_per_stripe):
            drive = g.data_drive(ext.stripe, d)
            if drive in failed:
                lost_data += 1
            else:
                participants.append((drive, ("data", d)))
        alive_parities = [
            (p, ("parity", idx))
            for idx, p in enumerate(ext.parity_drives)
            if p not in failed
        ]
        participants.extend(alive_parities[:lost_data])
        return participants

    def _recon_cmd(self, *args, **kwargs) -> ReconstructionCmd:
        """ReconstructionCmd factory (EcDraidArray stamps its RS code on)."""
        return ReconstructionCmd(*args, **kwargs)

    # -- observability (repro.obs) ---------------------------------------------

    def _derive(self, ctx):
        """Reserve the envelope span of one dRAID command batch.

        Returns a derived context to stamp on every command of the batch
        (they are one logical remote operation), or None when untraced.
        """
        if self._tracer is None or ctx is None:
            return None
        return self._tracer.derive(ctx)

    def _record_envelope(self, ectx, name: str, start_ns: int) -> None:
        """Close a reserved envelope span over [start_ns, now] (ns)."""
        if ectx is not None:
            self._tracer.record_at(
                ectx, name, "rpc", f"host.{self.name}", start_ns, self.env.now
            )

    def _server_of(self, drive: int) -> int:
        """Server index hosting member ``drive``.

        Identity for the normal topology; the offloaded-controller variant
        (§7) skips the controller's own server slot.
        """
        return drive

    # -- writes ----------------------------------------------------------------

    def _write_extent(self, ext: StripeExtent, io_data, ctx=None, deadline_ns=None):
        # §3: the host-side controller admits one write per stripe.
        self.bitmap.mark(ext.stripe)
        yield from self._lock_wait(ext.stripe, ctx)
        try:
            if self.integrity is not None:
                yield from self._verify_stripe_before_write(ext)
            if self.resilient:
                self._check_tolerance(ext.stripe)
            ok = yield from self._write_extent_once(
                ext, io_data, ctx, deadline_ns=deadline_ns
            )
            attempts = 0
            while not ok:
                # §5.4: explicit full-stripe retry after timeout/failure.
                attempts += 1
                if attempts > self.max_retries:
                    if self.resilient:
                        self.fault_stats.io_errors += 1
                    raise IoError(f"{self.name}: write failed on stripe {ext.stripe}")
                remaining = self._deadline_remaining(deadline_ns)
                if remaining is not None and remaining <= 0:
                    self._deadline_spent("write", ext.stripe)
                self._charge_retry("write", ext.stripe)
                self.stats.retries += 1
                if self.resilient:
                    self.fault_stats.retries += 1
                    self._check_tolerance(ext.stripe)
                    pause = self.backoff.backoff_ns(attempts, self._retry_rng)
                    if remaining is not None:
                        pause = min(pause, remaining)
                    if pause:
                        yield from self._backoff_pause(pause, ctx)
                failed = self.failed_in_stripe(ext.stripe)
                gaps = self._stripe_gaps(ext)
                g = self.geometry
                if any(g.data_drive(ext.stripe, d) in failed for d, _, _ in gaps):
                    # Write hole (same guard as the host-centric resilient
                    # path): the failed attempt may have torn parity, and a
                    # gap chunk now lives on a failed member — reconstructing
                    # it from that parity would launder garbage into the new
                    # parity.  Surface a terminal error; resync repairs the
                    # stripe once the member returns.
                    if self.resilient:
                        self.fault_stats.io_errors += 1
                    raise IoError(f"{self.name}: write hole on stripe {ext.stripe}")
                ok = yield from self._write_host_fallback(
                    ext, io_data, attempt=attempts, ctx=ctx, deadline_ns=deadline_ns
                )
            self._note_success()
        finally:
            self.locks.release(ext.stripe)
            self.bitmap.clear(ext.stripe)

    def _write_extent_once(self, ext: StripeExtent, io_data, ctx=None,
                           deadline_ns=None):
        """One attempt at the optimal disaggregated write path.

        Returns True on clean completion, False if a retry is needed.
        """
        failed = self.failed_in_stripe(ext.stripe)
        failed_touched = [s for s in ext.segments if s.drive in failed]
        failed_untouched_data = [
            d for d in failed
            if d not in ext.parity_drives and d not in {s.drive for s in ext.segments}
        ]
        mode = classify_write(self.geometry, ext)
        if failed_touched:
            self.stats.degraded_writes += 1
            return (yield from self._write_degraded(
                ext, io_data, failed_touched, ctx, deadline_ns=deadline_ns
            ))
        if mode is WriteMode.FULL_STRIPE:
            self.stats.full_stripe_writes += 1
            return (yield from self._write_full(
                ext, io_data, ctx, deadline_ns=deadline_ns
            ))
        if mode is WriteMode.RECONSTRUCT_WRITE and not failed_untouched_data:
            self.stats.rcw_writes += 1
            return (yield from self._write_distributed(
                ext, io_data, rcw=True, ctx=ctx, deadline_ns=deadline_ns
            ))
        self.stats.rmw_writes += 1
        if failed_untouched_data:
            self.stats.degraded_writes += 1
        return (yield from self._write_distributed(
            ext, io_data, rcw=False, ctx=ctx, deadline_ns=deadline_ns
        ))

    # .. full-stripe (host-side parity, §3) ....................................

    def _write_full(self, ext: StripeExtent, io_data, ctx=None, deadline_ns=None):
        g = self.geometry
        chunk = g.chunk_bytes
        yield from self._span_wait(
            self._charge_xor(g.data_per_stripe, chunk), ctx, "xor"
        )
        p_block = q_block = None
        if self.functional:
            chunks = [self._seg_data(io_data, s) for s in ext.segments]
            p_block = xor_blocks(chunks)
            if g.level is RaidLevel.RAID6:
                q_block = np.zeros(chunk, dtype=np.uint8)
                for i, blk in enumerate(chunks):
                    GF.mul_bytes_inplace_xor(q_block, GF.gen_pow(i), blk)
        if g.level is RaidLevel.RAID6:
            yield from self._span_wait(
                self._charge_gf(g.data_per_stripe, chunk), ctx, "gf"
            )
        failed = self.failed_in_stripe(ext.stripe)
        cid = next_cid()
        writes = 0
        writers = set()
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for seg in ext.segments:
            if seg.drive in failed:
                continue
            cmd = NvmeOfCommand(cid, Opcode.WRITE, seg.drive_offset, seg.length,
                                data=self._seg_data(io_data, seg),
                                deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[seg.drive].send(cmd)
            writes += 1
            writers.add(seg.drive)
        for idx, p in enumerate(ext.parity_drives):
            if p in failed:
                continue
            block = p_block if idx == 0 else q_block
            cmd = NvmeOfCommand(cid, Opcode.WRITE, ext.parity_offset, chunk,
                                data=block, deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[p].send(cmd)
            writes += 1
            writers.add(p)
        waiter = self._register(cid, {"write": writes}, participants=writers)
        expired = yield from self._await_op(cid, waiter, deadline_ns=deadline_ns)
        self._record_envelope(ectx, "draid.write-full", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)

    # .. the disaggregated partial-stripe write (§5) ...........................

    def _write_distributed(self, ext: StripeExtent, io_data, rcw: bool, ctx=None,
                           deadline_ns=None):
        g = self.geometry
        chunk = g.chunk_bytes
        alive_parities = [
            (idx, p) for idx, p in enumerate(ext.parity_drives)
            if not self.drive_failed(p, ext.stripe)
        ]
        if not alive_parities:
            # no parity to maintain (e.g. RAID-5 with P failed): plain writes
            return (yield from self._plain_segment_writes(
                ext, io_data, ctx, deadline_ns=deadline_ns
            ))
        if rcw:
            fwd_off, fwd_len = 0, chunk
            subtype_parity = Subtype.RW_READ  # no parity preread
        else:
            fwd_off, fwd_len = ext.parity_span()
            subtype_parity = Subtype.RMW
        cid = next_cid()
        touched = {s.data_index: s for s in ext.segments}
        # every data bdev participates in RCW; only touched ones in RMW
        if rcw:
            contributors = list(range(g.data_per_stripe))
        else:
            contributors = sorted(touched)
        next_dest = self._server_of(alive_parities[0][1])
        next_dest_parity = alive_parities[0][0]
        next_dest2 = next_dest2_parity = None
        if len(alive_parities) > 1:
            next_dest2 = self._server_of(alive_parities[1][1])
            next_dest2_parity = alive_parities[1][0]
        writers = 0
        responders = set()
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for d in contributors:
            seg = touched.get(d)
            drive = g.data_drive(ext.stripe, d)
            if rcw:
                subtype = Subtype.RW_WRITE if seg is not None else Subtype.RW_READ
                cmd_fwd_off, cmd_fwd_len = 0, chunk
            else:
                subtype = Subtype.RMW
                cmd_fwd_off, cmd_fwd_len = seg.chunk_offset, seg.length
            cmd = PartialWriteCmd(
                cid,
                subtype=subtype,
                drive_offset=seg.drive_offset if seg else 0,
                length=seg.length if seg else 0,
                chunk_offset=seg.chunk_offset if seg else 0,
                data_index=d,
                fwd_offset=cmd_fwd_off,
                fwd_length=cmd_fwd_len,
                next_dest=next_dest,
                next_dest2=next_dest2,
                next_dest_parity=next_dest_parity,
                next_dest2_parity=next_dest2_parity if next_dest2 is not None else 1,
                chunk_drive_offset=ext.stripe * chunk,
                parity_key=cid,
                data=self._seg_data(io_data, seg) if seg is not None else None,
                trace=ectx,
                deadline_ns=deadline_ns,
            )
            self.host_ends[drive].send(cmd)
            if seg is not None:
                writers += 1
                responders.add(drive)
        for idx, p in alive_parities:
            self.host_ends[p].send(
                ParityCmd(
                    cid,
                    subtype=subtype_parity,
                    parity_drive_offset=ext.parity_offset,
                    fwd_offset=fwd_off,
                    fwd_length=fwd_len,
                    wait_num=len(contributors),
                    parity_index=idx,
                    key=cid,
                    trace=ectx,
                    deadline_ns=deadline_ns,
                )
            )
            responders.add(p)
        waiter = self._register(
            cid, {"data": writers, "parity": len(alive_parities)},
            participants=responders,
        )
        expired = yield from self._await_op(cid, waiter, deadline_ns=deadline_ns)
        self._record_envelope(ectx, "draid.partial-write", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)

    def _plain_segment_writes(self, ext: StripeExtent, io_data, ctx=None,
                              deadline_ns=None):
        cid = next_cid()
        writes = 0
        writers = set()
        failed = self.failed_in_stripe(ext.stripe)
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for seg in ext.segments:
            if seg.drive in failed:
                continue
            cmd = NvmeOfCommand(cid, Opcode.WRITE, seg.drive_offset, seg.length,
                                data=self._seg_data(io_data, seg),
                                deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[seg.drive].send(cmd)
            writes += 1
            writers.add(seg.drive)
        waiter = self._register(cid, {"write": writes}, participants=writers)
        expired = yield from self._await_op(cid, waiter, deadline_ns=deadline_ns)
        self._record_envelope(ectx, "draid.write", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)

    # .. degraded write touching failed chunks (§3 host participation) .........

    def _write_degraded(self, ext: StripeExtent, io_data, failed_touched, ctx=None,
                        deadline_ns=None):
        """Write that touches a failed data chunk.

        Common case (the write covers *only* the failed chunk, one data
        failure): region-scoped distributed reconstruct-write.  Parity over
        the written region is the (weighted) sum of the other chunks' same
        region plus the new data, so every surviving data bdev forwards its
        region (RW_READ) and the host contributes the new data as one extra
        partial (wait-num + 1) — no old-parity read, no reconstruction of
        the failed chunk, cost proportional to the I/O size (Fig. 18/30's
        small degraded-write penalty).

        Mixed or multi-failure cases are rare (multi-chunk writes) and go
        through the §5.4 host-side full-stripe path.
        """
        g = self.geometry
        chunk = g.chunk_bytes
        failed = self.failed_in_stripe(ext.stripe)
        alive_parities = [
            (idx, p) for idx, p in enumerate(ext.parity_drives) if p not in failed
        ]
        if not alive_parities:
            return (yield from self._plain_segment_writes(
                ext, io_data, ctx, deadline_ns=deadline_ns
            ))
        only_failed_chunk = (
            len(failed_touched) == len(ext.segments) == 1
            and len(failed - set(ext.parity_drives)) == 1
        )
        if not only_failed_chunk:
            return (yield from self._write_host_fallback(
                ext, io_data, ctx=ctx, deadline_ns=deadline_ns
            ))
        seg = failed_touched[0]
        failed_index = g.data_index_of_drive(ext.stripe, seg.drive)
        region_offset, region_len = seg.chunk_offset, seg.length
        cid = next_cid()
        next_dest = self._server_of(alive_parities[0][1])
        next_dest_parity = alive_parities[0][0]
        next_dest2 = next_dest2_parity = None
        if len(alive_parities) > 1:
            next_dest2 = self._server_of(alive_parities[1][1])
            next_dest2_parity = alive_parities[1][0]
        contributors = 0
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for d in range(g.data_per_stripe):
            drive = g.data_drive(ext.stripe, d)
            if drive in failed:
                continue
            self.host_ends[drive].send(
                PartialWriteCmd(
                    cid,
                    subtype=Subtype.RW_READ,
                    drive_offset=0,
                    length=0,
                    chunk_offset=0,
                    data_index=d,
                    fwd_offset=region_offset,
                    fwd_length=region_len,
                    next_dest=next_dest,
                    next_dest2=next_dest2,
                    next_dest_parity=next_dest_parity,
                    next_dest2_parity=next_dest2_parity if next_dest2 is not None else 1,
                    chunk_drive_offset=ext.stripe * chunk,
                    parity_key=cid,
                    trace=ectx,
                    deadline_ns=deadline_ns,
                )
            )
            contributors += 1
        # the host's own partial: the failed chunk's new data for the region
        new_data = self._seg_data(io_data, seg)
        for idx, p in alive_parities:
            block = None
            if self.functional:
                block = (
                    new_data.copy()
                    if idx == 0
                    else GF.mul_bytes(GF.gen_pow(failed_index), new_data)
                )
            if idx == 1:
                yield from self._span_wait(
                    self._charge_gf(1, region_len), ctx, "gf"
                )
            self.host_ends[p].send(
                PeerMsg(cid, key=cid, fwd_offset=region_offset, fwd_length=region_len,
                        source=("data", failed_index), data=block, trace=ectx)
            )
            self.host_ends[p].send(
                ParityCmd(cid, subtype=Subtype.RW_READ,
                          parity_drive_offset=ext.parity_offset,
                          fwd_offset=region_offset, fwd_length=region_len,
                          wait_num=contributors + 1, parity_index=idx, key=cid,
                          trace=ectx, deadline_ns=deadline_ns)
            )
        waiter = self._register(
            cid, {"parity": len(alive_parities)},
            participants={p for _, p in alive_parities},
        )
        expired = yield from self._await_op(cid, waiter, deadline_ns=deadline_ns)
        self._record_envelope(ectx, "draid.degraded-write", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)

    # .. §5.4 full-stripe retry / host fallback ...............................

    def _write_host_fallback(self, ext: StripeExtent, io_data, attempt: int = 0,
                             ctx=None, deadline_ns=None):
        """Degraded-aware full-stripe write executed by the host.

        Reads every stripe region the write does not cover (through the
        normal degraded-aware read path), computes parity locally, and
        rewrites the whole stripe.  Used for §5.4 retries and for RAID-6
        double-data-failure writes.
        """
        g = self.geometry
        chunk = g.chunk_bytes
        gaps = self._stripe_gaps(ext)
        stripe_base = ext.stripe * g.stripe_data_bytes
        gap_buffers: List[Optional[np.ndarray]] = []
        for d, off, length in gaps:
            user_offset = stripe_base + d * chunk + off
            gap_ext, = g.map_extent(user_offset, length)
            buffer = np.zeros(length, dtype=np.uint8) if self.functional else None
            yield from self._read_extent(
                gap_ext, buffer, user_offset, ctx=ctx, deadline_ns=deadline_ns
            )
            gap_buffers.append(buffer)
        yield from self._span_wait(
            self._charge_xor(g.data_per_stripe, chunk), ctx, "xor"
        )
        p_block = q_block = None
        stripe_img = None
        if self.functional:
            stripe_img = self._assemble_stripe(ext, io_data, gaps, gap_buffers)
            p_block = xor_blocks(stripe_img)
            if g.level is RaidLevel.RAID6:
                q_block = np.zeros(chunk, dtype=np.uint8)
                for i, blk in enumerate(stripe_img):
                    GF.mul_bytes_inplace_xor(q_block, GF.gen_pow(i), blk)
        if g.level is RaidLevel.RAID6:
            yield from self._span_wait(
                self._charge_gf(g.data_per_stripe, chunk), ctx, "gf"
            )
        cid = next_cid()
        writes = 0
        writers = set()
        failed = self.failed_in_stripe(ext.stripe)
        ectx = self._derive(ctx)
        sent_ns = self.env.now
        for d in range(g.data_per_stripe):
            drive = g.data_drive(ext.stripe, d)
            if drive in failed:
                continue
            block = stripe_img[d] if stripe_img is not None else None
            cmd = NvmeOfCommand(cid, Opcode.WRITE, ext.stripe * chunk, chunk,
                                data=block, deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[drive].send(cmd)
            writes += 1
            writers.add(drive)
        for idx, p in enumerate(ext.parity_drives):
            if p in failed:
                continue
            block = p_block if idx == 0 else q_block
            cmd = NvmeOfCommand(cid, Opcode.WRITE, ext.parity_offset, chunk,
                                data=block, deadline_ns=deadline_ns)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[p].send(cmd)
            writes += 1
            writers.add(p)
        waiter = self._register(cid, {"write": writes}, participants=writers)
        expired = yield from self._await_op(
            cid, waiter, attempt=attempt, deadline_ns=deadline_ns
        )
        self._record_envelope(ectx, "draid.write-fallback", sent_ns)
        if waiter.errors:
            self._mark_prolonged_failures(waiter)
        return not (waiter.errors or expired)
