"""Offloading the host-side controller to a storage server (§7).

"By design, the host-side controller can also be offloaded to a storage
server.  On the one hand, a full offloading further reduces resource usage
on the host side...  On the other hand, it creates another single point of
failure and may slightly increase the latency with another NVMe-oF
abstraction layer and additional I/O overlay."

This module implements exactly that trade:

* :class:`OffloadedController` is a :class:`~repro.draid.host.DraidArray`
  that *runs on a storage server*: its command channels to the member
  bdevs are the server-to-server queue pairs, and every orchestration CPU
  cycle is charged to that server's single poll-mode core.
* :class:`OffloadedDraidArray` is the thin host-side proxy: reads and
  writes become single commands to the controller server, so the host
  spends almost nothing — at the price of one extra network hop for every
  byte (host -> controller -> bdevs), which the simulation charges
  faithfully.

The controller occupies one dedicated server; the array spans the
remaining ``n - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cluster.builder import Cluster
from repro.draid.host import DraidArray
from repro.nvmeof.messages import IoError, RESPONSE_BYTES, next_cid
from repro.raid.geometry import RaidGeometry
from repro.sim.core import Environment, Event


@dataclass
class ProxyCmd:
    """Host -> controller server: one virtual-device read or write."""

    cid: int
    op: str  #: 'read' | 'write'
    offset: int
    length: int
    data: Optional[Any] = None


@dataclass
class ProxyCompletion:
    cid: int
    ok: bool
    data: Optional[Any] = None
    error: Optional[str] = None


class OffloadedController(DraidArray):
    """The dRAID host-side controller, relocated onto a storage server."""

    _require_full_cluster = False

    def __init__(
        self,
        cluster: Cluster,
        geometry: RaidGeometry,
        controller_server: int,
        name: str = "draid-offloaded",
        **kwargs,
    ) -> None:
        if geometry.num_drives != cluster.num_servers - 1:
            raise ValueError(
                f"offloaded geometry spans {geometry.num_drives} members but the "
                f"cluster provides {cluster.num_servers - 1} (one server is the "
                f"controller)"
            )
        if not 0 <= controller_server < cluster.num_servers:
            raise ValueError(f"bad controller index {controller_server}")
        self.controller_server = controller_server
        super().__init__(cluster, geometry, name=name, **kwargs)

    # -- topology ---------------------------------------------------------

    def _server_of(self, drive: int) -> int:
        """Member drives skip the controller's own server slot."""
        return drive if drive < self.controller_server else drive + 1

    def _drive_of(self, server: int) -> int:
        if server == self.controller_server:
            raise ValueError("the controller server hosts no member drive")
        return server if server < self.controller_server else server - 1

    def _attach_transport(self) -> None:
        from repro.draid.bdev import DraidBdevServer

        c = self.controller_server
        self.bdev_servers = [
            DraidBdevServer(self.cluster, self._server_of(d), pipeline=self.pipeline,
                            blocking_reduce=self.blocking_reduce)
            for d in range(self.geometry.num_drives)
        ]
        # command channels: the controller's ends of its peer queue pairs
        self.host_ends = [
            self.cluster.peer_end(c, self._server_of(d))
            for d in range(self.geometry.num_drives)
        ]
        self._waiters: Dict[int, Any] = {}
        # NOTE: peer queue-pair traffic from bdevs back to the controller is
        # consumed here; bdev-to-bdev partials never touch these ends
        # because PeerMsg handling lives in the bdev servers' own loops.
        for member, end in enumerate(self.host_ends):
            self.env.process(
                self._receive_controller(end, member), name=f"{self.name}.cq"
            )

    def _receive_controller(self, end, member: int):
        from repro.draid.protocol import DraidCompletion

        while True:
            message = yield end.recv()
            if isinstance(message, DraidCompletion):
                waiter = self._waiters.get(message.cid)
                if waiter is not None:
                    waiter.responded.add(member)
                    waiter.on_completion(message)
            # any other message type on these ends belongs to the bdev
            # servers' loops; they hold the other end of each pair.

    # -- failure management in drive-index space --------------------------------

    def fail_drive(self, index: int) -> None:
        self.failed.add(index)
        # a re-failing member restarts any rebuild from scratch (see
        # HostCentricRaid.fail_drive)
        self.rebuild_watermark.pop(index, None)
        self.rebuilt_stripes.pop(index, None)
        self.cluster.servers[self._server_of(index)].drive.fail()
        if len(self.failed) > self.geometry.num_parity:
            from repro.baselines.base import ArrayFailureError

            raise ArrayFailureError(f"{self.name}: too many failures")

    def repair_drive(self, index: int) -> None:
        self.failed.discard(index)
        self.rebuild_watermark.pop(index, None)
        self.rebuilt_stripes.pop(index, None)
        self.cluster.servers[self._server_of(index)].drive.repair()

    def _mark_prolonged_failures(self, waiter) -> None:
        for drive in range(self.geometry.num_drives):
            if self.cluster.servers[self._server_of(drive)].drive.failed:
                self.failed.add(drive)

    # -- CPU accounting on the controller's core --------------------------------

    @property
    def _controller_cpu(self):
        return self.cluster.servers[self.controller_server].cpu

    def _charge_submit(self):
        return self._controller_cpu.execute(self.submit_ns)

    def _charge_xor(self, num_sources: int, nbytes: int):
        profile = self.cluster.servers[self.controller_server].cpu_profile
        work = profile.xor_ns(nbytes) * max(0, num_sources - 1)
        return self._controller_cpu.execute(work)

    def _charge_gf(self, num_sources: int, nbytes: int):
        profile = self.cluster.servers[self.controller_server].cpu_profile
        work = profile.gf_ns(nbytes) * num_sources
        return self._controller_cpu.execute(work)


class OffloadedDraidArray:
    """Host-side proxy to an offloaded controller (§7 full offloading).

    Exposes the usual ``read``/``write`` block interface; each call is one
    command to the controller server.  Write payloads hop host ->
    controller -> data bdevs (the "additional I/O overlay"); read payloads
    hop back bdevs -> controller -> host.
    """

    def __init__(
        self,
        cluster: Cluster,
        geometry: RaidGeometry,
        controller_server: int = 0,
        name: str = "draid-proxy",
        **controller_kwargs,
    ) -> None:
        self.env: Environment = cluster.env
        self.cluster = cluster
        self.geometry = geometry
        self.name = name
        self.controller = OffloadedController(
            cluster, geometry, controller_server, **controller_kwargs
        )
        self.functional = self.controller.functional
        self.stats = self.controller.stats
        self._host_end = cluster.host_end(controller_server)
        self._controller_end = cluster.server_end(controller_server)
        self._pending: Dict[int, Event] = {}
        self.env.process(self._serve_controller(), name=f"{name}.svc")
        self.env.process(self._receive_host(), name=f"{name}.cq")

    # -- controller-server service loop -------------------------------------

    def _serve_controller(self):
        while True:
            cmd = yield self._controller_end.recv()
            if isinstance(cmd, ProxyCmd):
                self.env.process(self._execute(cmd), name=f"{self.name}.op")

    def _execute(self, cmd: ProxyCmd):
        server = self.cluster.servers[self.controller.controller_server]
        yield server.cpu.execute(server.cpu_profile.cmd_handle_ns)
        try:
            if cmd.op == "write":
                # pull the payload from the host (extra overlay hop #1)
                yield self._controller_end.rdma_read(cmd.length)
                yield self.controller.write(cmd.offset, cmd.length, cmd.data)
                self._controller_end.send(
                    ProxyCompletion(cmd.cid, ok=True), header_bytes=RESPONSE_BYTES
                )
            else:
                data = yield self.controller.read(cmd.offset, cmd.length)
                # push the payload to the host (extra overlay hop #2)
                self._controller_end.send(
                    ProxyCompletion(cmd.cid, ok=True, data=data),
                    payload_bytes=cmd.length,
                    header_bytes=RESPONSE_BYTES,
                )
        except IoError as exc:
            self._controller_end.send(
                ProxyCompletion(cmd.cid, ok=False, error=str(exc)),
                header_bytes=RESPONSE_BYTES,
            )

    # -- host-side interface -----------------------------------------------------

    def _receive_host(self):
        while True:
            completion = yield self._host_end.recv()
            if not isinstance(completion, ProxyCompletion):
                continue
            event = self._pending.pop(completion.cid, None)
            if event is None or event.triggered:
                continue
            if completion.ok:
                event.succeed(completion.data)
            else:
                event.fail(IoError(completion.error))

    def _submit(self, op: str, offset: int, length: int, data=None) -> Event:
        cmd = ProxyCmd(next_cid(), op, offset, length, data=data)
        event = self.env.event()
        self._pending[cmd.cid] = event
        self._host_end.send(cmd)
        return event

    def read(self, offset: int, nbytes: int, ctx=None) -> Event:
        # ctx accepted for interface parity; spans are not propagated across
        # the proxy hop (the controller re-derives nothing host-side).
        return self._submit("read", offset, nbytes)

    def write(self, offset: int, nbytes: int, data=None, ctx=None) -> Event:
        if data is not None:
            import numpy as np

            data = (
                np.frombuffer(data, dtype=np.uint8)
                if isinstance(data, (bytes, bytearray))
                else np.asarray(data, dtype=np.uint8)
            )
        return self._submit("write", offset, nbytes, data=data)

    def fail_drive(self, index: int) -> None:
        self.controller.fail_drive(index)

    @property
    def degraded(self) -> bool:
        return self.controller.degraded
