"""The dRAID protocol: a compatible extension of NVMe-oF (§4).

Four opcodes are added to standard read/write:

* ``PartialWrite`` — host -> data bdev: write a segment and produce a
  partial parity.
* ``Parity`` — host -> parity bdev: expect ``wait_num`` partial parities,
  reduce them and persist the result.
* ``Reconstruction`` — host -> surviving bdev: contribute a region of your
  chunk to a designated reducer (optionally serving a normal read at the
  same time, subtype ``AlsoRead``).
* ``Peer`` — bdev -> bdev: partial result available for fetching.

Subtypes change behaviour per opcode (§5.1): ``RMW`` (read old data, XOR
delta), ``RW_WRITE`` (reconstruct-write for a chunk being written: read the
chunk complement, forward the full new chunk image), ``RW_READ``
(reconstruct-write for an untouched chunk: read and forward it),
``ALSO_READ`` / ``NO_READ`` for reconstruction participants.

The dataclasses below carry exactly the fields Figure 5 lists (offset,
length, fwd-offset, fwd-length, subtype, next-dest, wait-num, plus the
RAID-6 extras next-dest2 / data-idx); payload arrays are a functional-mode
convenience and are not charged to the network (payload bytes are moved by
explicit one-sided reads/writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional, Tuple


class DraidOp(Enum):
    PARTIAL_WRITE = "partial-write"
    PARITY = "parity"
    RECONSTRUCTION = "reconstruction"
    PEER = "peer"


class Subtype(Enum):
    RMW = "rmw"
    RW_WRITE = "rw-write"
    RW_READ = "rw-read"
    ALSO_READ = "also-read"
    NO_READ = "no-read"


@dataclass
class PartialWriteCmd:
    """Host -> data bdev: write ``length`` bytes and forward a partial parity."""

    cid: int
    subtype: Subtype
    #: location of the write on the member drive
    drive_offset: int
    length: int
    #: offset of the segment within its chunk
    chunk_offset: int
    #: logical data-chunk index (RAID-6 Q coefficient = g^data_index)
    data_index: int
    #: region of the chunk the forwarded partial covers
    fwd_offset: int
    fwd_length: int
    #: server index of the first parity reducer
    next_dest: int
    #: server index of the second parity reducer (RAID-6 only)
    next_dest2: Optional[int] = None
    #: parity role of next_dest (0 = P: raw delta; 1 = Q: g^i-weighted)
    next_dest_parity: int = 0
    #: parity role of next_dest2
    next_dest2_parity: int = 1
    #: stripe-relative drive offset of the chunk start
    chunk_drive_offset: int = 0
    #: reduction key echoed in Peer messages (= parity chunk drive offset;
    #: unique per in-flight write because stripes admit one write at a time)
    parity_key: int = 0
    #: generic erasure codes (§7): explicit (server, GF coefficient) pairs
    #: for every parity destination; overrides next_dest/next_dest2
    dests: Optional[Tuple[Tuple[int, int], ...]] = None
    #: new data (functional mode)
    data: Optional[Any] = None
    #: observability: trace context of the host request (None untraced)
    trace: Optional[Any] = None
    #: overload control: absolute sim-time deadline in ns — a bdev that
    #: dequeues the command after this instant fast-fails it (None = none)
    deadline_ns: Optional[int] = None


@dataclass
class ParityCmd:
    """Host -> parity bdev: collect partials, reduce, persist (§5.2)."""

    cid: int
    subtype: Subtype
    #: drive offset of the parity chunk
    parity_drive_offset: int
    #: region of the parity chunk being updated
    fwd_offset: int
    fwd_length: int
    #: how many partial parities to expect
    wait_num: int
    #: 0 = P, 1 = Q
    parity_index: int = 0
    #: reduction key matching PartialWriteCmd.parity_key / PeerMsg.key
    key: int = 0
    #: observability: trace context of the host request (None untraced)
    trace: Optional[Any] = None
    #: overload control: absolute sim-time deadline in ns (None = none)
    deadline_ns: Optional[int] = None


@dataclass
class PeerMsg:
    """bdev -> bdev signal: a partial result is ready to be fetched (§5.1).

    ``key`` groups partials of the same reduction; dRAID uses the parity
    chunk's drive offset because only one write runs per stripe at a time.
    """

    cid: int
    key: int
    fwd_offset: int
    fwd_length: int
    #: ('data', index) or ('parity', parity_index) — lets a reconstruction
    #: reducer run the correct decode; plain XOR reductions ignore it.
    source: Tuple[str, int]
    #: the partial result (functional mode)
    data: Optional[Any] = None
    #: observability: trace context of the host request (None untraced)
    trace: Optional[Any] = None


@dataclass
class ReconstructionCmd:
    """Host -> surviving bdev: participate in rebuilding a lost region (§6.1)."""

    cid: int
    subtype: Subtype  #: ALSO_READ or NO_READ
    #: drive offset of this bdev's chunk in the stripe
    chunk_drive_offset: int
    #: region of the chunk to contribute (same for every participant)
    region_offset: int
    region_length: int
    #: this bdev's role: ('data', index) or ('parity', parity_index)
    source: Tuple[str, int]
    #: server index of the reducer
    reducer: int
    #: reducer only: number of peer partials to expect
    wait_num: int = 0
    #: reducer only: identity of the lost chunk ('data', idx) / ('parity', i)
    lost: Optional[Tuple[str, int]] = None
    #: reducer only: how many data chunks the stripe has (for decode)
    num_data: int = 0
    #: ALSO_READ only: normal-read segment (chunk_offset, length, io_offset)
    read_segment: Optional[Tuple[int, int, int]] = None
    #: reducer only: where the rebuilt region lands in the user I/O buffer
    lost_io_offset: int = 0
    #: generic erasure codes (§7): (k, m) of the Reed-Solomon code the
    #: reducer must decode with (None = RAID-5/6 parity math)
    code_km: Optional[Tuple[int, int]] = None
    #: observability: trace context of the host request (None untraced)
    trace: Optional[Any] = None
    #: overload control: absolute sim-time deadline in ns (None = none)
    deadline_ns: Optional[int] = None


@dataclass
class DraidCompletion:
    """Server -> host completion/callback.

    ``kind`` distinguishes the multiple callbacks one dRAID operation can
    produce: per-data-bdev write callbacks (§5.3), the parity bdev's reduce
    completion, reconstruction results and plain read/write completions.
    """

    cid: int
    kind: str  #: 'read' | 'write' | 'data' | 'parity' | 'recon'
    ok: bool = True
    data: Optional[Any] = None
    #: destination offset within the user I/O buffer (read payloads)
    io_offset: int = 0
    error: Optional[str] = None
    #: observability: trace context of the host request (None untraced)
    trace: Optional[Any] = None
    #: overload control: typed failure class — "busy" (queue-full
    #: fast-reject) or "deadline" (command expired at the bdev); None for
    #: success and ordinary errors.
    status: Optional[str] = None
