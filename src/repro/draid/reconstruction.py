"""Reducer selection for disaggregated data reconstruction (§6).

With homogeneous networks a uniformly random reducer is optimal (Theorem 1:
for any reduction-tree topology with random node assignment, average
inbound and outbound traffic per bdev is fixed), so dRAID uses a single
randomly chosen reducer by default.

With heterogeneous networks (§6.2) dRAID instead solves

    maximize   min_i  R_i = B_i - P_i (n - 1) L
    subject to sum_i P_i = 1,   0 <= P_i <= 1

where ``B_i`` is bdev i's available bandwidth and ``L`` the reconstruction
load (EWMA-tracked when the array stays online during recovery).  The
optimum is a water-filling solution computed here in closed form.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.cluster.builder import Cluster


def solve_reducer_probabilities(
    bandwidths: Sequence[float], load: float, num_bdevs: Optional[int] = None
) -> List[float]:
    """Max-min-fair reducer probabilities (§6.2, equations 1-4).

    ``bandwidths`` are the available bandwidths ``B_i`` in bytes/s;
    ``load`` is the per-reconstruction traffic rate ``L`` in bytes/s;
    ``num_bdevs`` defaults to ``len(bandwidths)``.

    Water-filling: the optimum equalizes remaining bandwidth
    ``R_i = B_i - P_i D`` (with ``D = (n-1) L``) across every bdev that
    receives positive probability; bdevs whose ``B_i`` is below the water
    level get ``P_i = 0``.
    """
    n = len(bandwidths)
    if n == 0:
        raise ValueError("at least one bdev required")
    if any(b < 0 for b in bandwidths):
        raise ValueError("bandwidths must be non-negative")
    total_bdevs = num_bdevs if num_bdevs is not None else n
    demand = max(1.0, (total_bdevs - 1) * load)
    if load <= 0:
        # no measurable load: probability proportional to available bandwidth
        total = sum(bandwidths)
        if total <= 0:
            return [1.0 / n] * n
        return [b / total for b in bandwidths]
    # Water-filling over the active set: sort descending by B_i and find the
    # largest k such that the water level t_k leaves the k-th bdev active.
    order = sorted(range(n), key=lambda i: -bandwidths[i])
    prefix = 0.0
    probabilities = [0.0] * n
    chosen_level = None
    active = 0
    for k, idx in enumerate(order, start=1):
        prefix += bandwidths[idx]
        # level if exactly the top-k bdevs share the load
        level = (prefix - demand) / k
        next_b = bandwidths[order[k]] if k < n else float("-inf")
        if level >= next_b:
            chosen_level = level
            active = k
            break
    if chosen_level is None:  # pragma: no cover - loop always terminates at k=n
        chosen_level = (prefix - demand) / n
        active = n
    for idx in order[:active]:
        probabilities[idx] = (bandwidths[idx] - chosen_level) / demand
    # numerical cleanup: clamp and renormalize
    probabilities = [max(0.0, p) for p in probabilities]
    total = sum(probabilities)
    if total <= 0:
        return [1.0 / n] * n
    return [p / total for p in probabilities]


class RandomReducerSelector:
    """Uniformly random reducer choice (§6.1, optimal for homogeneous nets)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, candidates: Sequence[int], region_bytes: int) -> int:
        return self._rng.choice(list(candidates))


class BandwidthAwareSelector:
    """Bandwidth-aware reducer choice with EWMA load tracking (§6.2).

    ``B_i`` is sampled from each candidate server's NIC backlog (standing in
    for the telemetry a deployment would report); ``L`` is an exponentially
    weighted moving average of observed reconstruction traffic, updated on
    every selection so the probabilities react to load changes.
    """

    def __init__(
        self,
        cluster: Cluster,
        seed: int = 0,
        alpha: float = 0.2,
        window_ns: int = 1_000_000,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.cluster = cluster
        self.alpha = alpha
        self.window_ns = window_ns
        self._rng = random.Random(seed)
        self._load_ewma = 0.0  # bytes/s
        self._last_pick_ns: Optional[int] = None

    @property
    def load_estimate(self) -> float:
        return self._load_ewma

    def _update_load(self, region_bytes: int) -> None:
        now = self.cluster.env.now
        if self._last_pick_ns is None:
            self._last_pick_ns = now
            return
        elapsed = max(1, now - self._last_pick_ns)
        instant = region_bytes * 1e9 / elapsed
        self._load_ewma = self.alpha * instant + (1 - self.alpha) * self._load_ewma
        self._last_pick_ns = now

    def probabilities(self, candidates: Sequence[int]) -> List[float]:
        bandwidths = [
            self.cluster.servers[i].nic.available_bandwidth(self.window_ns)
            for i in candidates
        ]
        return solve_reducer_probabilities(
            bandwidths, self._load_ewma, num_bdevs=len(candidates)
        )

    def pick(self, candidates: Sequence[int], region_bytes: int) -> int:
        self._update_load(region_bytes)
        weights = self.probabilities(candidates)
        return self._rng.choices(list(candidates), weights=weights, k=1)[0]
