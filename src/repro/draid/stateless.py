"""Stateless-target dRAID: host-owned stripe state, data-plane bdevs.

A design-space controller variant: all stripe metadata and write-hole
state stays on the *host* and the storage servers degenerate to pure
data-plane NVMe-oF targets — they only ever see plain READ/WRITE
commands, never the PartialWrite/Parity/Reconstruction opcodes that
carry distributed reduce state.  Concretely:

* partial-stripe writes run the host-side full-stripe path (read the
  gaps, compute parity locally, rewrite the stripe) instead of the §5
  distributed partial-parity protocol;
* degraded reads pull the surviving chunks' regions to the host and
  decode there instead of the §6.1 peer-to-peer reconstruction;
* full-stripe writes are already host-computed plain writes and are
  inherited unchanged — on a healthy array a stateless-target
  controller is operation-for-operation identical to stock dRAID for
  full-stripe traffic (the cross-variant equivalence test pins this).

The trade is the paper's central one, run in reverse: no target ever
holds volatile parity state (a crashed server loses nothing but
in-flight plain I/O), but partial writes pay full-stripe read-modify
cost and degraded reads pull ``k`` regions through the host NIC.  The
``geometries`` figure prices that against stock dRAID.
"""

from __future__ import annotations

from repro.cluster.builder import Cluster
from repro.draid.ec_array import EcDraidArray, EcGeometry, LrcDraidArray
from repro.draid.host import DraidArray
from repro.ec import raid6_reconstruct, xor_blocks
from repro.nvmeof.messages import IoError, NvmeOfCommand, Opcode, next_cid
from repro.raid.geometry import RaidGeometry, StripeExtent


class StatelessTargetMixin:
    """Overrides routing every stateful protocol onto host-side paths.

    Mixed in *before* a dRAID controller class so its methods win the
    MRO; the underlying controller supplies transport, retry and parity
    math (``_write_host_fallback`` already computes parity with the
    array's own code, so the RAID-5/6, RS and LRC variants all reuse
    this one mixin).
    """

    # -- writes: everything partial or degraded becomes a host-side
    # full-stripe write (plain NVMe-oF WRITEs, no target reduce state) --

    def _write_distributed(self, ext: StripeExtent, io_data, rcw: bool, ctx=None,
                           deadline_ns=None):
        return (yield from self._write_host_fallback(
            ext, io_data, ctx=ctx, deadline_ns=deadline_ns
        ))

    def _write_degraded(self, ext: StripeExtent, io_data, failed_touched, ctx=None,
                        deadline_ns=None):
        return (yield from self._write_host_fallback(
            ext, io_data, ctx=ctx, deadline_ns=deadline_ns
        ))

    # -- degraded reads: host-side gather + decode ------------------------

    def _degraded_read(self, ext: StripeExtent, healthy, lost, buffer, ctx=None,
                       deadline_ns=None):
        if healthy:
            yield from self._plain_reads(
                ext, healthy, buffer, ctx, deadline_ns=deadline_ns
            )
        g = self.geometry
        for seg in lost:
            self.stats.degraded_reads += 1
            lost_index = g.data_index_of_drive(ext.stripe, seg.drive)
            region_offset, region_len = seg.chunk_offset, seg.length
            block = None
            for attempt in range(self.max_retries + 1):
                sources = self._recon_participants(ext, lost_index)
                blocks, errors = yield from self._gather_regions(
                    ext, sources, region_offset, region_len, attempt,
                    ctx, deadline_ns,
                )
                if not errors:
                    yield from self._span_wait(
                        self._charge_xor(max(1, len(blocks) - 1), region_len),
                        ctx, "xor",
                    )
                    if self.functional:
                        block = self._host_decode(lost_index, blocks, region_len)
                    break
                self._charge_retry("read", ext.stripe)
                if self.resilient:
                    self.fault_stats.retries += 1
            else:
                if self.resilient:
                    self.fault_stats.io_errors += 1
                raise IoError(
                    f"{self.name}: degraded read failed on stripe {ext.stripe}"
                )
            if buffer is not None and block is not None:
                buffer[seg.io_offset : seg.io_offset + region_len] = block

    def _gather_regions(self, ext: StripeExtent, sources, region_offset,
                        region_len, attempt, ctx, deadline_ns):
        """Concurrently read one chunk region per source member.

        Returns ``({(role, index): block}, had_errors)``; every command
        is a plain NVMe-oF READ — the whole point of this variant.
        """
        chunk = self.geometry.chunk_bytes
        base = ext.stripe * chunk + region_offset
        submitted = []
        for drive, source in sources:
            cid = next_cid()
            waiter = self._register(cid, {"read": 1}, participants={drive})
            cmd = NvmeOfCommand(cid, Opcode.READ, base, region_len,
                                deadline_ns=deadline_ns)
            ectx = self._derive(ctx)
            if ectx is not None:
                cmd.trace = ectx
            self.host_ends[drive].send(cmd)
            submitted.append((cid, source, waiter, ectx, self.env.now))
        blocks = {}
        errors = False
        for cid, source, waiter, ectx, sent_ns in submitted:
            expired = yield from self._await_op(
                cid, waiter, attempt=attempt, drain=False, deadline_ns=deadline_ns
            )
            self._record_envelope(ectx, "draid.read", sent_ns)
            if waiter.errors or expired:
                self._mark_prolonged_failures(waiter)
                errors = True
                continue
            comp = next(c for c in waiter.completions if c.kind == "read")
            blocks[source] = comp.data
        return blocks, errors

    def _host_decode(self, lost_index: int, blocks, region_len: int):
        """Decode one lost data region from labeled survivor regions."""
        data_blocks = {i: b for (k, i), b in blocks.items() if k == "data"}
        parity_blocks = {i: b for (k, i), b in blocks.items() if k == "parity"}
        code = getattr(self, "code", None)
        if code is not None:
            shards = dict(data_blocks)
            for j, b in parity_blocks.items():
                shards[code.k + j] = b
            if hasattr(code, "decode_one"):
                return code.decode_one(lost_index, shards, length=region_len)
            return code.decode(shards, length=region_len)[lost_index]
        if set(parity_blocks) == {0} and len(data_blocks) == self.geometry.data_per_stripe - 1:
            return xor_blocks(list(data_blocks.values()) + [parity_blocks[0]])
        recovered = raid6_reconstruct(
            dict(data_blocks),
            self.geometry.data_per_stripe,
            parity_blocks.get(0),
            parity_blocks.get(1),
        )
        return recovered[lost_index]


class StatelessTargetDraid(StatelessTargetMixin, DraidArray):
    """Stateless-target controller over the RAID-5/6 dRAID geometry."""

    def __init__(self, cluster: Cluster, geometry: RaidGeometry,
                 name: str = "draid-st", **kwargs) -> None:
        super().__init__(cluster, geometry, name=name, **kwargs)


class StatelessTargetEcDraid(StatelessTargetMixin, EcDraidArray):
    """Stateless-target controller over RS(k+m)."""

    def __init__(self, cluster: Cluster, geometry: EcGeometry,
                 name: str = "ec-draid-st", **kwargs) -> None:
        super().__init__(cluster, geometry, name=name, **kwargs)


class StatelessTargetLrcDraid(StatelessTargetMixin, LrcDraidArray):
    """Stateless-target controller over LRC(k, l, g)."""

    def __init__(self, cluster: Cluster, geometry: EcGeometry,
                 local_groups: int = 2, name: str = "lrc-draid-st",
                 **kwargs) -> None:
        super().__init__(cluster, geometry, local_groups=local_groups,
                         name=name, **kwargs)
