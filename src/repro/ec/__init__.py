"""Erasure coding: GF(2^8) arithmetic, RAID-5/6 parity and Reed-Solomon.

Unlike the performance-simulation layers of this repository, this package
performs *real* computation on real bytes.  It mirrors what ISA-L provides
to the paper's prototype: XOR parity for RAID-5, P+Q parity for RAID-6
(H. P. Anvin, "The mathematics of RAID-6") and a generic systematic
Reed-Solomon code used to demonstrate the paper's §7 claim that dRAID
generalizes to other erasure-coding schemes.
"""

from repro.ec.gf import GF256
from repro.ec.lrc import DecodePlan, DecodeStep, LocalReconstructionCode
from repro.ec.parity import (
    raid5_parity,
    raid5_reconstruct,
    raid6_pq,
    raid6_reconstruct,
    xor_blocks,
)
from repro.ec.rs import ReedSolomon, UnrecoverableErasureError

__all__ = [
    "GF256",
    "DecodePlan",
    "DecodeStep",
    "LocalReconstructionCode",
    "ReedSolomon",
    "UnrecoverableErasureError",
    "raid5_parity",
    "raid5_reconstruct",
    "raid6_pq",
    "raid6_reconstruct",
    "xor_blocks",
]
