"""GF(2^8) arithmetic with the RAID-6 polynomial.

The field is constructed over the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D) with generator ``g = 2`` — the same
field Linux software RAID and ISA-L use, so Q parities computed here match
those systems byte-for-byte.

Scalar operations use log/exp tables; bulk (block) operations use a
precomputed 256x256 multiplication table and numpy fancy indexing, which is
the closest a pure-Python stack gets to ISA-L's SIMD kernels.
"""

from __future__ import annotations

import numpy as np

#: The RAID-6 field polynomial (x^8 + x^4 + x^3 + x^2 + 1).
RAID6_POLY = 0x11D
FIELD_SIZE = 256


def _build_tables(poly: int):
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int16)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= poly
    # duplicate so exp[log_a + log_b] needs no modulo
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return exp, log


class GF256:
    """The Galois field GF(2^8).

    A module-level singleton (:data:`GF`) over the RAID-6 polynomial is what
    the rest of the repository uses; constructing other instances (e.g. for
    a different primitive polynomial) is supported for testing.
    """

    def __init__(self, poly: int = RAID6_POLY) -> None:
        if not (0x100 <= poly <= 0x1FF):
            raise ValueError(f"polynomial {poly:#x} is not degree 8")
        self.poly = poly
        self.exp, self.log = _build_tables(poly)
        if not self._generator_is_primitive():
            raise ValueError(f"polynomial {poly:#x} is not primitive for g=2")
        # mul_table[a, b] = a * b in the field; 64 KiB, built once.
        a = np.arange(256, dtype=np.int32)
        log_a = self.log[a][:, None]
        log_b = self.log[a][None, :]
        table = self.exp[(log_a + log_b) % 255].astype(np.uint8)
        table[0, :] = 0
        table[:, 0] = 0
        self.mul_table = table
        inv = np.zeros(256, dtype=np.uint8)
        inv[1:] = self.exp[(255 - self.log[np.arange(1, 256)]) % 255]
        self.inv_table = inv

    def _generator_is_primitive(self) -> bool:
        seen = set()
        x = 1
        for _ in range(255):
            if x in seen:
                return False
            seen.add(x)
            x <<= 1
            if x & 0x100:
                x ^= self.poly
        return len(seen) == 255

    # -- scalar ops ------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Addition (= subtraction) is XOR."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self.exp[int(self.log[a]) + int(self.log[b])])

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^8)")
        if a == 0:
            return 0
        return int(self.exp[(int(self.log[a]) - int(self.log[b])) % 255])

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^8)")
        return int(self.inv_table[a])

    def pow(self, base: int, exponent: int) -> int:
        """``base ** exponent`` (exponent may be any integer, incl. negative)."""
        if base == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 ** negative in GF(2^8)")
            return 0
        e = (int(self.log[base]) * exponent) % 255
        return int(self.exp[e])

    def gen_pow(self, exponent: int) -> int:
        """``g ** exponent`` for the field generator g = 2."""
        return int(self.exp[exponent % 255])

    # -- block (vectorized) ops -------------------------------------------

    def mul_bytes(self, coefficient: int, data: np.ndarray) -> np.ndarray:
        """Multiply every byte of ``data`` by ``coefficient``."""
        data = np.asarray(data, dtype=np.uint8)
        if coefficient == 0:
            return np.zeros_like(data)
        if coefficient == 1:
            return data.copy()
        return self.mul_table[coefficient][data]

    def mul_bytes_inplace_xor(
        self, accumulator: np.ndarray, coefficient: int, data: np.ndarray
    ) -> None:
        """``accumulator ^= coefficient * data`` without extra allocation."""
        if coefficient == 0:
            return
        if coefficient == 1:
            np.bitwise_xor(accumulator, data, out=accumulator)
        else:
            np.bitwise_xor(accumulator, self.mul_table[coefficient][data], out=accumulator)

    # -- matrices over the field -------------------------------------------

    def mat_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over GF(2^8) (shapes follow numpy conventions)."""
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
        out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
        for k in range(a.shape[1]):
            col = a[:, k]
            row = b[k, :]
            # outer product over the field, accumulated with XOR
            out ^= self.mul_table[np.ix_(col, row)]
        return out

    def mat_inv(self, matrix: np.ndarray) -> np.ndarray:
        """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination."""
        m = np.asarray(matrix, dtype=np.uint8).copy()
        n, cols = m.shape
        if n != cols:
            raise ValueError(f"matrix is not square: {m.shape}")
        aug = np.concatenate([m, np.eye(n, dtype=np.uint8)], axis=1)
        for col in range(n):
            pivot = None
            for row in range(col, n):
                if aug[row, col] != 0:
                    pivot = row
                    break
            if pivot is None:
                raise np.linalg.LinAlgError("matrix is singular over GF(2^8)")
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            inv_pivot = self.inv(int(aug[col, col]))
            aug[col] = self.mul_bytes(inv_pivot, aug[col])
            for row in range(n):
                if row != col and aug[row, col] != 0:
                    factor = int(aug[row, col])
                    aug[row] ^= self.mul_bytes(factor, aug[col])
        return aug[:, n:].copy()

    def vandermonde(self, rows: int, cols: int) -> np.ndarray:
        """Vandermonde matrix V[i, j] = (g^i)^j used to seed RS encoding."""
        out = np.zeros((rows, cols), dtype=np.uint8)
        for i in range(rows):
            for j in range(cols):
                out[i, j] = self.pow(self.gen_pow(i), j)
        return out


#: Module-level field instance over the RAID-6 polynomial.
GF = GF256()
