"""Local-reconstruction codes (LRC) over GF(2^8).

An Azure-style LRC splits the ``k`` data shards into ``l`` local groups,
each protected by one XOR *local parity*, and adds ``g`` Reed-Solomon
*global parities* over all ``k`` shards.  A single erasure inside a
group is repaired from the group's surviving members plus its local
parity — ``k/l`` reads instead of ``k`` — while any ``g`` arbitrary
erasures remain decodable from the global parities (surviving identity
rows plus rows of the MDS :class:`~repro.ec.rs.ReedSolomon` matrix are
always independent).  The decode planner makes the local-first choice
explicit so callers (and the property suite) can introspect it.

Like :mod:`repro.ec.rs`, the code is linear: every parity is a
coefficient-weighted sum of the data shards, so the dRAID partial-parity
reduce phase applies unchanged (out-of-group contributors simply carry
coefficient zero for a local parity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ec.gf import GF
from repro.ec.rs import ReedSolomon, UnrecoverableErasureError


@dataclass(frozen=True)
class DecodeStep:
    """One repair action of a decode plan.

    ``target`` is the global shard index being regenerated (data shards
    ``0..k-1``, local parities ``k..k+l-1``, global parities
    ``k+l..k+l+g-1``); ``method`` is ``"local"`` (XOR of the group's
    survivors) or ``"global"`` (full Gaussian decode); ``sources`` lists
    the global shard indices read to perform it.
    """

    target: int
    method: str
    sources: Tuple[int, ...]


@dataclass(frozen=True)
class DecodePlan:
    """Ordered repair actions chosen for one erasure pattern."""

    steps: Tuple[DecodeStep, ...]

    @property
    def local_only(self) -> bool:
        """True when every erased shard is repaired by local XOR."""
        return all(step.method == "local" for step in self.steps)

    @property
    def read_count(self) -> int:
        """Distinct surviving shards the plan touches."""
        return len({s for step in self.steps for s in step.sources})


class LocalReconstructionCode:
    """A systematic (k + l + g, k) local-reconstruction code.

    ``k`` data shards in ``l`` local groups (sizes differing by at most
    one), one XOR parity per group, plus ``g`` global Reed-Solomon
    parities.  Any ``g`` arbitrary erasures are guaranteed decodable;
    single in-group erasures repair locally from ``ceil(k/l)`` shards.
    The API mirrors :class:`~repro.ec.rs.ReedSolomon` (``encode`` /
    ``partial_parity`` / ``decode`` plus ``parity_matrix``) so the dRAID
    write paths work unchanged.
    """

    def __init__(self, k: int, l: int, g: int) -> None:
        if k < 2 or l < 1 or g < 1:
            raise ValueError(f"invalid LRC parameters k={k}, l={l}, g={g}")
        if l > k:
            raise ValueError(f"more local groups ({l}) than data shards ({k})")
        if k + l + g > 255:
            raise ValueError(f"k+l+g={k + l + g} exceeds GF(2^8) limit of 255 shards")
        self.k = k
        self.l = l
        self.g = g
        self.m = l + g  #: total parity shards, ReedSolomon-compatible
        #: guaranteed arbitrary-erasure tolerance (conservative: the
        #: global-parity reach; some wider in-group patterns also decode)
        self.fault_tolerance = g
        base = k // l
        extra = k % l
        sizes = [base + (1 if j < extra else 0) for j in range(l)]
        groups: List[Tuple[int, ...]] = []
        start = 0
        for size in sizes:
            groups.append(tuple(range(start, start + size)))
            start += size
        self.groups: Tuple[Tuple[int, ...], ...] = tuple(groups)
        self._rs = ReedSolomon(k, g)
        parity = np.zeros((self.m, k), dtype=np.uint8)
        for j, group in enumerate(self.groups):
            for i in group:
                parity[j, i] = 1
        parity[l:, :] = self._rs.parity_matrix
        #: (l + g) x k parity-generation coefficients: local rows first
        self.parity_matrix = parity
        self.encode_matrix = np.vstack([np.eye(k, dtype=np.uint8), parity])

    def __repr__(self) -> str:
        return f"<LRC k={self.k} l={self.l} g={self.g}>"

    def group_of(self, data_index: int) -> int:
        """Local-group number of data shard ``data_index``."""
        if not 0 <= data_index < self.k:
            raise ValueError(f"data index {data_index} out of range")
        for j, group in enumerate(self.groups):
            if data_index in group:
                return j
        raise AssertionError("unreachable")

    # -- encoding -----------------------------------------------------------

    def encode(self, data_shards: Sequence) -> List[np.ndarray]:
        """Compute the l local + g global parity shards, in that order."""
        shards = [
            np.asarray(
                np.frombuffer(s, dtype=np.uint8)
                if isinstance(s, (bytes, bytearray))
                else s,
                dtype=np.uint8,
            )
            for s in data_shards
        ]
        if len(shards) != self.k:
            raise ValueError(f"expected {self.k} data shards, got {len(shards)}")
        length = len(shards[0])
        for s in shards:
            if len(s) != length:
                raise ValueError("data shards must have equal length")
        parities = []
        for row in range(self.m):
            acc = np.zeros(length, dtype=np.uint8)
            for col in range(self.k):
                GF.mul_bytes_inplace_xor(
                    acc, int(self.parity_matrix[row, col]), shards[col]
                )
            parities.append(acc)
        return parities

    def partial_parity(self, shard_index: int, block) -> List[np.ndarray]:
        """Per-device partial contribution of one data shard to every parity.

        Out-of-group local parities receive an all-zero partial (their
        coefficient is zero), keeping the dRAID reduce phase
        order-independent and code-agnostic.
        """
        if not 0 <= shard_index < self.k:
            raise ValueError(f"shard index {shard_index} out of range")
        arr = np.asarray(
            np.frombuffer(block, dtype=np.uint8)
            if isinstance(block, (bytes, bytearray))
            else block,
            dtype=np.uint8,
        )
        return [
            GF.mul_bytes(int(self.parity_matrix[row, shard_index]), arr)
            for row in range(self.m)
        ]

    # -- decode planning ----------------------------------------------------

    def plan_decode(self, erased: Sequence[int]) -> DecodePlan:
        """Choose a repair strategy for the erased global shard indices.

        Every erased shard that is the *only* erasure within its local
        group (group members plus the group's local parity) gets a
        ``"local"`` XOR step; everything else falls back to one
        ``"global"`` Gaussian step over the surviving shards.  Raises
        :class:`~repro.ec.rs.UnrecoverableErasureError` when the
        surviving equations cannot determine the data (same typed error
        as Reed-Solomon's beyond-reach path).
        """
        erased_set = set(erased)
        for e in erased_set:
            if not 0 <= e < self.k + self.m:
                raise ValueError(f"shard index {e} out of range")
        available = [i for i in range(self.k + self.m) if i not in erased_set]
        steps: List[DecodeStep] = []
        globals_needed: List[int] = []
        for e in sorted(erased_set):
            scope = self._group_scope(e)
            if scope is not None and not (erased_set & scope - {e}):
                steps.append(
                    DecodeStep(
                        target=e, method="local", sources=tuple(sorted(scope - {e}))
                    )
                )
            else:
                globals_needed.append(e)
        if globals_needed:
            chosen = self._independent_rows(available)  # raises beyond reach
            steps.extend(
                DecodeStep(target=e, method="global", sources=tuple(chosen))
                for e in globals_needed
            )
        return DecodePlan(steps=tuple(sorted(steps, key=lambda s: s.target)))

    def _group_scope(self, shard: int) -> "set | None":
        """The local repair scope of ``shard``: its group's data shards
        plus the group's local parity (None for global parities)."""
        if shard < self.k:
            j = self.group_of(shard)
        elif shard < self.k + self.l:
            j = shard - self.k
        else:
            return None
        return set(self.groups[j]) | {self.k + j}

    def _independent_rows(self, available: Sequence[int]) -> List[int]:
        """Pick k available shard indices whose encode rows are linearly
        independent; raises :class:`UnrecoverableErasureError` when the
        available rows do not span the data space."""
        basis: List[Tuple[int, np.ndarray]] = []  # (pivot column, reduced row)
        chosen: List[int] = []
        for i in available:
            row = self.encode_matrix[i].copy()
            for pivot, brow in basis:
                coeff = int(row[pivot])
                if coeff:
                    row ^= GF.mul_bytes(coeff, brow)
            nonzero = np.nonzero(row)[0]
            if len(nonzero) == 0:
                continue
            pivot = int(nonzero[0])
            row = GF.mul_bytes(GF.inv(int(row[pivot])), row)
            basis.append((pivot, row))
            chosen.append(i)
            if len(chosen) == self.k:
                return chosen
        raise UnrecoverableErasureError(
            f"erasure pattern beyond reach: {len(available)} surviving shards "
            f"span rank {len(chosen)} < {self.k}"
        )

    # -- decoding -----------------------------------------------------------

    def decode(self, shards: Dict[int, np.ndarray], length: int) -> List[np.ndarray]:
        """Recover the k data shards from any decodable surviving subset.

        ``shards`` maps global shard index (local parities at ``k``,
        global parities at ``k+l``) to the surviving block.  Raises
        :class:`~repro.ec.rs.UnrecoverableErasureError` when the pattern
        is beyond reach.
        """
        if len(shards) < self.k:
            raise UnrecoverableErasureError(
                f"need at least {self.k} shards, got {len(shards)}"
            )
        chosen = self._independent_rows(sorted(shards))
        sub = self.encode_matrix[chosen, :]
        inv = GF.mat_inv(sub)
        stacked = np.stack([np.asarray(shards[i], dtype=np.uint8) for i in chosen])
        recovered = GF.mat_mul(inv, stacked)
        return [recovered[i, :length].copy() for i in range(self.k)]

    def decode_one(self, data_index: int, shards: Dict[int, np.ndarray], length: int) -> np.ndarray:
        """Recover a single lost data shard, preferring local XOR repair.

        When the shard's whole group scope survives in ``shards``, the
        repair is the XOR of ``len(group)`` blocks; otherwise a full
        :meth:`decode` runs and the shard is extracted.
        """
        scope = self._group_scope(data_index)
        sources = sorted(scope - {data_index})
        if all(s in shards for s in sources):
            acc = np.zeros(length, dtype=np.uint8)
            for s in sources:
                acc ^= np.asarray(shards[s], dtype=np.uint8)[:length]
            return acc
        return self.decode(shards, length)[data_index]
