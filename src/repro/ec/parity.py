"""RAID-5 and RAID-6 parity generation and erasure recovery.

All functions operate on equal-length byte blocks (numpy uint8 arrays or
``bytes``).  RAID-6 follows H. P. Anvin's construction:

    P = D_0 ^ D_1 ^ ... ^ D_{n-1}
    Q = g^0*D_0 ^ g^1*D_1 ^ ... ^ g^{n-1}*D_{n-1}

which is the scheme Linux MD and ISA-L implement, so recovered blocks match
those systems exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ec.gf import GF


def _as_block(data) -> np.ndarray:
    arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError(f"blocks must be one-dimensional, got shape {arr.shape}")
    return arr


def _check_blocks(blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
    if not blocks:
        raise ValueError("at least one block is required")
    arrs = [_as_block(b) for b in blocks]
    length = len(arrs[0])
    for i, arr in enumerate(arrs):
        if len(arr) != length:
            raise ValueError(f"block {i} has length {len(arr)}, expected {length}")
    return arrs


def xor_blocks(blocks: Sequence) -> np.ndarray:
    """XOR an arbitrary number of equal-length blocks together.

    This is the partial-parity primitive of dRAID: XOR is associative and
    commutative, so partial results may be combined in any order (§5).
    """
    arrs = _check_blocks(blocks)
    out = arrs[0].copy()
    for arr in arrs[1:]:
        np.bitwise_xor(out, arr, out=out)
    return out


def raid5_parity(data_blocks: Sequence) -> np.ndarray:
    """RAID-5 parity P of a full stripe."""
    return xor_blocks(data_blocks)


def raid5_reconstruct(surviving_blocks: Sequence) -> np.ndarray:
    """Recover any single lost RAID-5 block from all other blocks + parity.

    By symmetry of XOR, recovering a data block and recovering the parity
    block are the same computation.
    """
    return xor_blocks(surviving_blocks)


def raid6_pq(data_blocks: Sequence) -> Tuple[np.ndarray, np.ndarray]:
    """Compute the RAID-6 P and Q parities of a full stripe."""
    arrs = _check_blocks(data_blocks)
    p = arrs[0].copy()
    q = GF.mul_bytes(GF.gen_pow(0), arrs[0])
    for i, arr in enumerate(arrs[1:], start=1):
        np.bitwise_xor(p, arr, out=p)
        GF.mul_bytes_inplace_xor(q, GF.gen_pow(i), arr)
    return p, q


def raid6_q_delta(index: int, old_block, new_block) -> np.ndarray:
    """The Q-update contribution of one data block changing.

    ``Q_new = Q_old ^ g^index * (old ^ new)`` — this is the partial parity a
    dRAID data bdev forwards to bdev_Q during read-modify-write.
    """
    old = _as_block(old_block)
    new = _as_block(new_block)
    if len(old) != len(new):
        raise ValueError("old/new block length mismatch")
    return GF.mul_bytes(GF.gen_pow(index), old ^ new)


def raid6_reconstruct(
    present_data: Dict[int, np.ndarray],
    num_data: int,
    p: Optional[np.ndarray] = None,
    q: Optional[np.ndarray] = None,
) -> Dict[int, np.ndarray]:
    """Recover up to two missing RAID-6 blocks.

    ``present_data`` maps data index -> surviving block; indices absent from
    the map are the erased data blocks.  ``p``/``q`` are the surviving
    parities (None if erased).  Returns a map with the recovered data blocks
    (and recomputed parities when they were the erased ones are *not*
    included — callers recompute parities with :func:`raid6_pq` if needed).

    Handles every 0/1/2-erasure combination the RAID-6 code tolerates and
    raises ``ValueError`` beyond that.
    """
    missing = [i for i in range(num_data) if i not in present_data]
    erasures = len(missing) + (p is None) + (q is None)
    if erasures > 2:
        raise ValueError(f"RAID-6 tolerates 2 erasures, got {erasures}")
    for idx, block in present_data.items():
        if not 0 <= idx < num_data:
            raise ValueError(f"data index {idx} out of range 0..{num_data - 1}")
        present_data[idx] = _as_block(block)

    if not missing:
        return {}

    if len(missing) == 1:
        idx = missing[0]
        if p is not None:
            # ordinary RAID-5 style recovery through P
            blocks = list(present_data.values()) + [p]
            return {idx: xor_blocks(blocks)}
        if q is None:
            raise ValueError("cannot recover a data block with both parities lost")
        # recover through Q: D_idx = (Q ^ Q_partial) * g^-idx
        q = _as_block(q)
        q_partial = np.zeros_like(q)
        for i, block in present_data.items():
            GF.mul_bytes_inplace_xor(q_partial, GF.gen_pow(i), block)
        delta = q_partial ^ q
        coeff = GF.inv(GF.gen_pow(idx))
        return {idx: GF.mul_bytes(coeff, delta)}

    # two data blocks missing: need both parities
    if p is None or q is None:
        raise ValueError("recovering two data blocks requires both P and Q")
    i, j = sorted(missing)
    p = _as_block(p)
    q = _as_block(q)
    # P' = D_i ^ D_j ; Q' = g^i D_i ^ g^j D_j
    p_prime = p.copy()
    q_prime = q.copy()
    for k, block in present_data.items():
        np.bitwise_xor(p_prime, block, out=p_prime)
        GF.mul_bytes_inplace_xor(q_prime, GF.gen_pow(k), block)
    # D_i = (Q' ^ g^j P') / (g^i ^ g^j)
    gi, gj = GF.gen_pow(i), GF.gen_pow(j)
    denom = GF.inv(gi ^ gj)
    numer = q_prime ^ GF.mul_bytes(gj, p_prime)
    d_i = GF.mul_bytes(denom, numer)
    d_j = p_prime ^ d_i
    return {i: d_i, j: d_j}
