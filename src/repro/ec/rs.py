"""Systematic Reed-Solomon erasure codes over GF(2^8).

The paper (§7) argues that dRAID generalizes beyond RAID-5/6 to arbitrary
erasure codes because most codes are linear and thus their parities can be
generated as an order-independent sum of per-device partial results.  This
module provides that generalization: a systematic (k+m, k) Reed-Solomon
code built from a Vandermonde matrix reduced so the first k rows form the
identity.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ec.gf import GF


class UnrecoverableErasureError(ValueError):
    """Raised when an erasure pattern exceeds what the code can decode.

    A :class:`ValueError` subclass so pre-existing handlers of the
    historical ``need at least k shards`` error keep working; shared by
    :class:`ReedSolomon` and
    :class:`~repro.ec.lrc.LocalReconstructionCode` so callers can treat
    beyond-reach patterns uniformly across codes.
    """


class ReedSolomon:
    """A systematic (k+m, k) Reed-Solomon erasure code.

    ``k`` data shards, ``m`` parity shards; any ``k`` of the ``k+m`` shards
    reconstruct the original data.
    """

    def __init__(self, k: int, m: int) -> None:
        if k < 1 or m < 0:
            raise ValueError(f"invalid code parameters k={k}, m={m}")
        if k + m > 255:
            raise ValueError(f"k+m={k + m} exceeds GF(2^8) limit of 255 shards")
        self.k = k
        self.m = m
        self.encode_matrix = self._systematic_matrix(k, m)
        # rows k..k+m-1 are the parity-generation coefficients
        self.parity_matrix = self.encode_matrix[k:, :]

    @staticmethod
    def _systematic_matrix(k: int, m: int) -> np.ndarray:
        """Vandermonde matrix reduced so the top k x k block is identity.

        Row-reducing preserves the MDS property (every k x k submatrix
        stays invertible) while making the code systematic.
        """
        v = GF.vandermonde(k + m, k)
        top_inv = GF.mat_inv(v[:k, :])
        return GF.mat_mul(v, top_inv)

    # -- encoding -----------------------------------------------------------

    def encode(self, data_shards: Sequence) -> List[np.ndarray]:
        """Compute the m parity shards for k equal-length data shards."""
        shards = [np.asarray(np.frombuffer(s, dtype=np.uint8) if isinstance(s, (bytes, bytearray)) else s, dtype=np.uint8) for s in data_shards]
        if len(shards) != self.k:
            raise ValueError(f"expected {self.k} data shards, got {len(shards)}")
        length = len(shards[0])
        for s in shards:
            if len(s) != length:
                raise ValueError("data shards must have equal length")
        parities = []
        for row in range(self.m):
            acc = np.zeros(length, dtype=np.uint8)
            for col in range(self.k):
                GF.mul_bytes_inplace_xor(acc, int(self.parity_matrix[row, col]), shards[col])
            parities.append(acc)
        return parities

    def partial_parity(self, shard_index: int, block) -> List[np.ndarray]:
        """Per-device partial contribution of one data shard to every parity.

        XOR-ing the partial parities of all k data shards yields the full
        parity set — the dRAID reduce-phase generalized to m parities.
        """
        if not 0 <= shard_index < self.k:
            raise ValueError(f"shard index {shard_index} out of range")
        arr = np.asarray(np.frombuffer(block, dtype=np.uint8) if isinstance(block, (bytes, bytearray)) else block, dtype=np.uint8)
        return [
            GF.mul_bytes(int(self.parity_matrix[row, shard_index]), arr)
            for row in range(self.m)
        ]

    # -- decoding -----------------------------------------------------------

    def decode(self, shards: Dict[int, np.ndarray], length: int) -> List[np.ndarray]:
        """Recover the k data shards from any k surviving shards.

        ``shards`` maps global shard index (0..k+m-1; parities start at k)
        to the surviving block.  Returns the k data shards in order.
        """
        if len(shards) < self.k:
            raise UnrecoverableErasureError(
                f"need at least {self.k} shards, got {len(shards)}"
            )
        indices = sorted(shards)[: self.k]
        sub = self.encode_matrix[indices, :]
        inv = GF.mat_inv(sub)
        stacked = np.stack([np.asarray(shards[i], dtype=np.uint8) for i in indices])
        recovered = GF.mat_mul(inv, stacked)
        return [recovered[i, :length].copy() for i in range(self.k)]
