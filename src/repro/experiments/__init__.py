"""Experiment harnesses reproducing every table and figure of the paper.

Each experiment in :data:`repro.experiments.registry.EXPERIMENTS` maps a
paper table/figure id to a runner that executes the corresponding sweep on
the simulated testbed and returns rows shaped like the paper's plot axes.
The benchmark suite (``benchmarks/``) wraps these runners one-per-figure.
"""

from repro.experiments.common import (
    SYSTEMS,
    build_array,
    fio_point,
    nic_goodput_mb_s,
    traced_fio_point,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import (
    JOBS_ENV_VAR,
    SweepPoint,
    SweepSpec,
    resolve_jobs,
    run_points,
)

__all__ = [
    "EXPERIMENTS",
    "JOBS_ENV_VAR",
    "SYSTEMS",
    "SweepPoint",
    "SweepSpec",
    "build_array",
    "fio_point",
    "nic_goodput_mb_s",
    "resolve_jobs",
    "run_experiment",
    "run_points",
    "traced_fio_point",
]
