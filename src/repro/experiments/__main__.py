"""Command-line entry point: regenerate paper tables/figures.

Usage::

    python -m repro.experiments fig10            # one figure, fast windows
    python -m repro.experiments fig10 --full     # longer measurement windows
    python -m repro.experiments fig10 -j 8       # sweep points on 8 processes
    python -m repro.experiments --list           # what is available
    python -m repro.experiments --all            # everything (takes minutes)
    python -m repro.experiments --trace t.json   # export one traced I/O run

Sweep points fan out over worker processes (``-j``/``REPRO_JOBS``, default:
all cores); results are byte-identical to ``-j 1`` because every point owns
its own simulated testbed and seed.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import JOBS_ENV_VAR
from repro.metrics.report import rows_to_csv


def export_trace(path: str, system: str = "dRAID", io_size: int = 4096,
                 fast: bool = True) -> None:
    """Run one traced FIO point; print its breakdown and write the trace."""
    from repro.experiments.common import traced_fio_point
    from repro.obs import breakdown_table, chrome_trace_json, request_breakdowns

    result, obs = traced_fio_point(system, io_size=io_size, fast=fast)
    breakdowns = request_breakdowns(obs.tracer)
    print(f"{system} {io_size}B: {result.bandwidth_mb_s:.1f} MB/s, "
          f"{len(breakdowns)} traced requests")
    print(breakdown_table(breakdowns, limit=10))
    print(obs.sampler.report().render())
    pathlib.Path(path).write_text(chrome_trace_json(obs.tracer))
    print(f"trace -> {path} (load in Perfetto / chrome://tracing)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate dRAID paper tables and figures in simulation.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. fig10)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--full", action="store_true",
        help="longer measurement windows (more stable numbers, slower)",
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write each experiment's rows as <DIR>/<id>.csv",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep points (default: REPRO_JOBS or all "
             "cores; 1 = serial in-process)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="run one observability-armed dRAID 4 KiB write point, print its "
             "critical-path breakdown and write a Perfetto-loadable Chrome "
             "trace JSON to PATH",
    )
    parser.add_argument(
        "--trace-system", default="dRAID", metavar="SYS",
        help="system for --trace (Linux, SPDK or dRAID; default dRAID)",
    )
    parser.add_argument(
        "--trace-io-size", type=int, default=4096, metavar="BYTES",
        help="I/O size in bytes for --trace (default 4096)",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None:
        if args.jobs < 1:
            print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
            return 2
        # the figure runners read REPRO_JOBS at sweep time
        os.environ[JOBS_ENV_VAR] = str(args.jobs)

    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0
    if args.trace:
        export_trace(args.trace, system=args.trace_system,
                     io_size=args.trace_io_size, fast=not args.full)
    targets = list(EXPERIMENTS) if args.all else args.experiments
    if not targets:
        if args.trace:
            return 0
        parser.print_help()
        return 2
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in targets:
        start = time.time()
        if args.csv:
            title, rows = EXPERIMENTS[exp_id](not args.full)
            directory = pathlib.Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{exp_id}.csv").write_text(rows_to_csv(rows))
            print(f"{title} -> {directory / (exp_id + '.csv')}")
        else:
            print(run_experiment(exp_id, fast=not args.full))
        print(f"[{exp_id}: {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
