"""Application-level figure sweeps (§9.6: Figures 19, 20, 21).

Like the FIO sweeps, every (workload, system) cell is an independent
simulated testbed, declared as a :class:`SweepPoint` and executed through
:func:`repro.experiments.runner.run_points` so the cells can run on worker
processes without changing any result.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.apps import BlobFs, HashObjectStore, LsmConfig, LsmKvStore
from repro.experiments.common import build_array, measure_window_ns
from repro.experiments.runner import SweepPoint, run_points
from repro.metrics.report import Row
from repro.raid.geometry import RaidLevel
from repro.workloads import YCSB_WORKLOADS, YcsbWorkload

KB = 1024
PAPER_WORKLOADS = ("A", "B", "C", "D", "F")
APP_SYSTEMS = ("SPDK", "dRAID")


def _row(workload, system, result) -> Row:
    return Row(
        x=f"YCSB-{workload}",
        system=system,
        metrics={
            "kiops": result.kiops,
            "avg_latency_us": result.latency.mean_us,
            "p99_latency_us": result.latency.p99_us,
        },
    )


def objectstore_ycsb(
    degraded: bool = False,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    systems: Sequence[str] = APP_SYSTEMS,
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figures 20 / 21: the hash object store under YCSB.

    Matches the paper's setup: 200 K objects of 128 KiB, uniform request
    distribution ("we set the distribution to uniform so that the maximum
    throughput of the object store can be observed"), on normal or
    degraded RAID-5.
    """
    points = [
        SweepPoint(
            _objectstore_row,
            dict(workload=workload, system=system, degraded=degraded, fast=fast),
        )
        for workload in workloads
        for system in systems
    ]
    return run_points(points, jobs=jobs)


def _objectstore_row(workload: str, system: str, degraded: bool, fast: bool) -> Row:
    array = build_array(
        system,
        level=RaidLevel.RAID5,
        failed_drives=(0,) if degraded else (),
    )
    store = HashObjectStore(array, object_size=128 * KB, num_objects=200_000)
    ycsb = YcsbWorkload(
        store,
        YCSB_WORKLOADS[workload],
        num_keys=store.num_objects,
        clients=32,
        uniform=True,
    )
    result = ycsb.run(measure_ns=measure_window_ns(fast))
    return _row(workload, system, result)


def lsm_ycsb(
    degraded: bool = False,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    systems: Sequence[str] = APP_SYSTEMS,
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figure 19: the LSM KV store (RocksDB stand-in) on BlobFS under YCSB.

    A single store instance (BlobFS supports only one), zipfian request
    distribution as in standard YCSB; small values so most reads hit
    memory structures and the gains are capped by instance-internal
    serialization, as the paper observes.
    """
    points = [
        SweepPoint(
            _lsm_row,
            dict(workload=workload, system=system, degraded=degraded, fast=fast),
        )
        for workload in workloads
        for system in systems
    ]
    return run_points(points, jobs=jobs)


def _lsm_row(workload: str, system: str, degraded: bool, fast: bool) -> Row:
    array = build_array(
        system,
        level=RaidLevel.RAID5,
        failed_drives=(0,) if degraded else (),
    )
    fs = BlobFs(array, cluster_bytes=1024 * KB)
    # cache sized below the dataset so a realistic fraction of
    # lookups reaches the array (RocksDB uses <5% of array
    # bandwidth in the paper, but not zero); the keyspace spans
    # enough stripes that block reads do not artificially convoy
    # on a handful of stripe locks
    store = LsmKvStore(
        fs,
        LsmConfig(memtable_bytes=16 * 1024 * KB,
                  block_cache_bytes=48 * 1024 * KB),
    )
    preload = store.env.process(_preload(store, keys=150_000))
    store.env.run(until=preload)
    ycsb = YcsbWorkload(
        store,
        YCSB_WORKLOADS[workload],
        num_keys=150_000,
        clients=16,
    )
    result = ycsb.run(measure_ns=measure_window_ns(fast))
    return _row(workload, system, result)


def _preload(store: LsmKvStore, keys: int):
    for key in range(keys):
        yield store.put(key)
    # let background flush/compaction finish so the measurement window is
    # not polluted by preload-induced compaction I/O
    while (
        store._flush_lock
        or store._compaction_lock
        or store._immutable
        or len(store._levels[0]) >= store.config.level0_compaction_trigger
    ):
        yield store.env.timeout(5_000_000)
    yield store.env.timeout(20_000_000)
    # measurements are taken against a warm block cache (standard YCSB
    # practice; a cold cache would mostly measure warmup convoying)
    store.warm_cache()
