"""Availability figure: Monte Carlo durability under correlated faults.

Many-seed sweep estimating **data-loss-event rate** (the reciprocal of
MTTDL) and **rebuild-exposure time** for each system under two fault
processes with the *same* marginal failure count:

* ``independent`` — three drive failures at independent uniform times on
  independently chosen members (the classical MTTDL model's assumption);
* ``correlated`` — one :class:`~repro.faults.events.BatchFailureStorm`:
  three failures inside one shared-manufacturing-batch domain, spaced by
  a seeded Weibull hazard over a few milliseconds.

Every seed runs the identical fault timeline against Linux-MD, SPDK and
dRAID (RAID-6, 12 targets) with a foreground FIO workload and the
:class:`~repro.raid.recovery.RecoveryOrchestrator` handling detection,
hot-spare allocation and risk-ordered concurrent rebuild.  Data loss is a
stripe exceeding parity erasures before rebuild catches up, so the figure
is decided by rebuild speed under load: dRAID reconstructs peer-to-peer
and drains the exposure window fastest; the host-centric baselines funnel
every surviving chunk through one host.

Wall-clock: each point is an independent testbed, so the sweep
parallelizes across worker processes (`-j`), byte-identical to serial.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.experiments.runner import SweepPoint, run_points
from repro.metrics.availability import ExposureTracker, loss_rate_per_hour
from repro.metrics.report import Row

KB = 1024
MS = 1_000_000

AVAIL_SYSTEMS = ("Linux", "SPDK", "dRAID")
AVAIL_PROCESSES = ("independent", "correlated")
AVAIL_DRIVES = 12
AVAIL_STRIPES = 64
AVAIL_CHUNK = 64 * KB
AVAIL_FAILURES = 3
AVAIL_SPARES = 2
AVAIL_CONCURRENCY = 8
AVAIL_POLL_NS = 200_000


def _fault_plan(process: str, seed: int, horizon_ns: int):
    """The seeded fault timeline — identical for every system."""
    from repro.faults.events import BatchFailureStorm, DriveFail
    from repro.faults.plan import FaultPlan

    rng = random.Random(f"repro.experiments.availability:{process}:{seed}")
    if process == "correlated":
        events = [
            BatchFailureStorm(
                at_ns=3 * MS,
                batch_id=rng.randrange(2),
                count=AVAIL_FAILURES,
                spread_ns=rng.randint(2 * MS, 8 * MS),
                shape=1.0,
                seed=rng.randrange(1 << 30),
            )
        ]
    elif process == "independent":
        victims = rng.sample(range(AVAIL_DRIVES), AVAIL_FAILURES)
        window = max(MS, horizon_ns - 15 * MS)
        events = [
            DriveFail(3 * MS + rng.randint(0, window), server=victim)
            for victim in victims
        ]
    else:
        raise ValueError(f"unknown fault process {process!r}")
    return FaultPlan(sorted(events, key=lambda e: e.at_ns))


def availability_point(system: str, process: str, seed: int, fast: bool = True) -> Dict:
    """One seeded durability run; returns plain (picklable) metrics."""
    from repro.cluster import ClusterConfig, build_cluster
    from repro.experiments.common import SYSTEMS
    from repro.faults.domains import default_topology
    from repro.faults.injector import FaultInjector
    from repro.raid.geometry import RaidGeometry, RaidLevel
    from repro.raid.recovery import RecoveryOrchestrator, SparePool
    from repro.sim import Environment
    from repro.workloads import FioWorkload

    horizon_ns = 60 * MS if fast else 90 * MS
    env = Environment()
    config = ClusterConfig(
        num_servers=AVAIL_DRIVES,
        io_timeout_ns=2 * MS,
        domains=default_topology(AVAIL_DRIVES),
    )
    cluster = build_cluster(env, config)
    geometry = RaidGeometry(RaidLevel.RAID6, AVAIL_DRIVES, AVAIL_CHUNK)
    array = SYSTEMS[system](cluster, geometry)
    plan = _fault_plan(process, seed, horizon_ns)
    injector = FaultInjector(array, plan, num_stripes=AVAIL_STRIPES)
    tracker = ExposureTracker()
    orchestrator = RecoveryOrchestrator(
        array,
        num_stripes=AVAIL_STRIPES,
        spares=SparePool(env, AVAIL_SPARES),
        concurrency=AVAIL_CONCURRENCY,
        poll_ns=AVAIL_POLL_NS,
        exposure=tracker,
    )
    orchestrator.start_watch(auto_rebuild=True)
    fio = FioWorkload(
        array, 128 * KB, read_fraction=0.7, queue_depth=16, seed=11
    )
    stop = env.event()
    for _ in range(fio.queue_depth):
        env.process(fio._worker(stop), name="fio")
    env.run(until=horizon_ns)
    orchestrator.stop_watch()
    stop.succeed()
    stats = orchestrator.stats
    completed = stats.rebuilds_completed
    return {
        "system": system,
        "process": process,
        "seed": seed,
        "loss_events": tracker.loss_events,
        "degraded_ms": tracker.degraded_ms(),
        "double_degraded_ms": tracker.double_degraded_ns / 1e6,
        "zero_redundancy_ms": tracker.zero_redundancy_ms(),
        "worst_erasures": tracker.worst_erasures,
        "rebuilds_completed": completed,
        "rebuild_ms": (stats.rebuild_ns_total / completed / 1e6) if completed else 0.0,
        "chunks_unrecoverable": stats.chunks_unrecoverable,
        "spare_waits": orchestrator.spares.waits,
        "io_errors": fio.io_errors,
        "horizon_ns": horizon_ns,
    }


def aggregate_rows(results: List[Dict]) -> List[Row]:
    """Mean per (process, system) across seeds -> one figure row each."""
    groups: Dict[tuple, List[Dict]] = {}
    for result in results:
        groups.setdefault((result["process"], result["system"]), []).append(result)
    rows = []
    for process in AVAIL_PROCESSES:
        for system in AVAIL_SYSTEMS:
            runs = groups.get((process, system))
            if not runs:
                continue
            count = len(runs)
            total_loss = sum(r["loss_events"] for r in runs)
            total_ns = sum(r["horizon_ns"] for r in runs)
            rebuilt = [r for r in runs if r["rebuilds_completed"]]
            rows.append(
                Row(
                    x=process,
                    system=system,
                    metrics={
                        "data_loss_per_hour": loss_rate_per_hour(total_loss, total_ns),
                        "loss_run_fraction": sum(
                            1 for r in runs if r["loss_events"]
                        ) / count,
                        "degraded_ms": sum(r["degraded_ms"] for r in runs) / count,
                        "zero_redundancy_ms": sum(
                            r["zero_redundancy_ms"] for r in runs
                        ) / count,
                        "rebuild_ms": (
                            sum(r["rebuild_ms"] for r in rebuilt) / len(rebuilt)
                            if rebuilt
                            else 0.0
                        ),
                    },
                )
            )
    return rows


def availability_rows(
    fast: bool = True, jobs: Optional[int] = None, seeds: Optional[range] = None
) -> List[Row]:
    if seeds is None:
        seeds = range(1, 7) if fast else range(1, 17)
    points = [
        SweepPoint(
            availability_point,
            dict(system=system, process=process, seed=seed, fast=fast),
        )
        for process in AVAIL_PROCESSES
        for system in AVAIL_SYSTEMS
        for seed in seeds
    ]
    return aggregate_rows(run_points(points, jobs=jobs))
