"""Shared experiment plumbing: system registry, cluster/array builders and
single-point FIO runs (§9.1 methodology).

Defaults mirror the paper: 128 KiB I/O, 512 KiB chunk, 8 remote targets,
RAID-5, 100 Gbps NICs.  ``fast=True`` shortens measurement windows so the
full benchmark suite completes in minutes; set ``REPRO_FULL=1`` for longer
windows.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.baselines import MdRaid, SpdkRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.obs import ObservabilityConfig
from repro.net.nic import GOODPUT_100G
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import FioWorkload
from repro.workloads.fio import FioResult

KB = 1024
MB = 1_000_000

#: Comparison systems, named as in the paper's figures.
SYSTEMS: Dict[str, type] = {
    "Linux": MdRaid,
    "SPDK": SpdkRaid,
    "dRAID": DraidArray,
}

DEFAULT_SERVERS = 8
DEFAULT_CHUNK = 512 * KB
DEFAULT_IO = 128 * KB
DEFAULT_QD = 64


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def measure_window_ns(fast: bool = True) -> int:
    return 60_000_000 if (full_mode() or not fast) else 15_000_000


def nic_goodput_mb_s() -> float:
    """The paper's reference line: ~92 Gbps NIC goodput in MB/s."""
    return GOODPUT_100G / MB


def build_array(
    system: str,
    servers: int = DEFAULT_SERVERS,
    level: RaidLevel = RaidLevel.RAID5,
    chunk: int = DEFAULT_CHUNK,
    server_nic_rates: Optional[Sequence[float]] = None,
    failed_drives: Sequence[int] = (),
    observability: Optional[ObservabilityConfig] = None,
    **array_kwargs,
):
    """Fresh environment + cluster + controller for one experiment point.

    Pass ``observability=ObservabilityConfig()`` to arm per-I/O tracing and
    the utilization sampler on the new cluster (``array.cluster.obs``).
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; pick from {sorted(SYSTEMS)}")
    env = Environment()
    cluster = build_cluster(
        env,
        ClusterConfig(
            num_servers=servers,
            server_nic_rates=server_nic_rates,
            observability=observability,
        ),
    )
    geometry = RaidGeometry(level, servers, chunk)
    array = SYSTEMS[system](cluster, geometry, **array_kwargs)
    for drive in failed_drives:
        array.fail_drive(drive)
    return array


def fio_point(
    system: str,
    io_size: int = DEFAULT_IO,
    read_fraction: float = 0.0,
    servers: int = DEFAULT_SERVERS,
    level: RaidLevel = RaidLevel.RAID5,
    chunk: int = DEFAULT_CHUNK,
    queue_depth: int = DEFAULT_QD,
    failed_drives: Sequence[int] = (),
    server_nic_rates: Optional[Sequence[float]] = None,
    fast: bool = True,
    seed: int = 1234,
    **array_kwargs,
) -> FioResult:
    """Run one FIO measurement point on a fresh simulated testbed."""
    array = build_array(
        system,
        servers=servers,
        level=level,
        chunk=chunk,
        server_nic_rates=server_nic_rates,
        failed_drives=failed_drives,
        **array_kwargs,
    )
    fio = FioWorkload(
        array,
        io_size,
        read_fraction=read_fraction,
        queue_depth=queue_depth,
        seed=seed,
    )
    return fio.run(measure_ns=measure_window_ns(fast))


def traced_fio_point(
    system: str,
    io_size: int = DEFAULT_IO,
    read_fraction: float = 0.0,
    servers: int = DEFAULT_SERVERS,
    level: RaidLevel = RaidLevel.RAID5,
    chunk: int = DEFAULT_CHUNK,
    queue_depth: int = DEFAULT_QD,
    failed_drives: Sequence[int] = (),
    server_nic_rates: Optional[Sequence[float]] = None,
    fast: bool = True,
    seed: int = 1234,
    observability: Optional[ObservabilityConfig] = None,
    **array_kwargs,
):
    """Run one observability-armed FIO point; returns ``(FioResult, Observability)``.

    Identical methodology to :func:`fio_point` but the cluster is built with
    tracing armed: every measured I/O records a root span plus its
    host/NIC/fabric/target/drive child spans, and the utilization sampler
    covers exactly the measurement window.  Inspect ``obs.tracer`` with
    :func:`repro.obs.request_breakdowns` / :func:`repro.obs.chrome_trace_json`
    and ``obs.sampler.report()`` for the bottleneck attribution.
    """
    array = build_array(
        system,
        servers=servers,
        level=level,
        chunk=chunk,
        server_nic_rates=server_nic_rates,
        failed_drives=failed_drives,
        observability=observability or ObservabilityConfig(),
        **array_kwargs,
    )
    fio = FioWorkload(
        array,
        io_size,
        read_fraction=read_fraction,
        queue_depth=queue_depth,
        seed=seed,
    )
    result = fio.run(measure_ns=measure_window_ns(fast))
    return result, array.cluster.obs
