"""FIO-based figure sweeps (§9.2-§9.5 and Appendix A).

Every function returns a list of :class:`repro.metrics.report.Row` whose
x-axis and metrics match the corresponding paper figure: bandwidth in MB/s
and average latency in microseconds.

Each sweep is declared as a list of :class:`SweepPoint` and executed by
:func:`repro.experiments.runner.run_points`, which fans independent points
out over worker processes (``REPRO_JOBS`` / ``-j``) with results identical
to the serial order.  Point functions must stay module-level so they pickle
across the process boundary.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.metrics.report import Row
from repro.experiments.common import (
    DEFAULT_IO,
    DEFAULT_QD,
    KB,
    SYSTEMS,
    fio_point,
)
from repro.experiments.runner import SweepPoint, run_points
from repro.net.nic import GOODPUT_100G, GOODPUT_25G
from repro.raid.geometry import RaidLevel

ALL_SYSTEMS = tuple(SYSTEMS)


def _row(x, system, result) -> Row:
    return Row(
        x=x,
        system=system,
        metrics={
            "bandwidth_mb_s": result.bandwidth_mb_s,
            "avg_latency_us": result.latency.mean_us,
            "p99_latency_us": result.latency.p99_us,
            "iops": result.iops,
        },
    )


def _fio_row(x, system, **kwargs) -> Row:
    """One sweep point: a fresh testbed, one FIO run, one result row."""
    return _row(x, system, fio_point(system, **kwargs))


def sweep_io_size(
    level: RaidLevel,
    read_fraction: float,
    sizes_kb: Sequence[int],
    servers: int = 8,
    failed_drives: Sequence[int] = (),
    systems: Sequence[str] = ALL_SYSTEMS,
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figures 9/10/15/18 (RAID-5) and 22/23/28/30 (RAID-6)."""
    points = [
        SweepPoint(
            _fio_row,
            dict(
                x=f"{size_kb}KB",
                system=system,
                io_size=size_kb * KB,
                read_fraction=read_fraction,
                servers=servers,
                level=level,
                failed_drives=tuple(failed_drives),
                fast=fast,
            ),
        )
        for size_kb in sizes_kb
        for system in systems
    ]
    return run_points(points, jobs=jobs)


def sweep_chunk_size(
    level: RaidLevel,
    chunks_kb: Sequence[int],
    systems: Sequence[str] = ALL_SYSTEMS,
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figures 11 / 24: 128 KiB writes across chunk sizes."""
    points = [
        SweepPoint(
            _fio_row,
            dict(
                x=f"{chunk_kb}KB",
                system=system,
                io_size=DEFAULT_IO,
                read_fraction=0.0,
                chunk=chunk_kb * KB,
                level=level,
                fast=fast,
            ),
        )
        for chunk_kb in chunks_kb
        for system in systems
    ]
    return run_points(points, jobs=jobs)


def sweep_stripe_width(
    level: RaidLevel,
    widths: Sequence[int],
    read_fraction: float = 0.0,
    failed: bool = False,
    systems: Sequence[str] = ALL_SYSTEMS,
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figures 12/16 (RAID-5) and 25/29 (RAID-6)."""
    points = [
        SweepPoint(
            _fio_row,
            dict(
                x=width,
                system=system,
                read_fraction=read_fraction,
                servers=width,
                level=level,
                failed_drives=(0,) if failed else (),
                fast=fast,
            ),
        )
        for width in widths
        for system in systems
    ]
    return run_points(points, jobs=jobs)


def sweep_read_ratio(
    level: RaidLevel,
    ratios: Sequence[float],
    systems: Sequence[str] = ALL_SYSTEMS,
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figures 13 / 26: mixed read/write ratios."""
    points = [
        SweepPoint(
            _fio_row,
            dict(
                x=f"{int(ratio * 100)}%",
                system=system,
                read_fraction=ratio,
                level=level,
                fast=fast,
            ),
        )
        for ratio in ratios
        for system in systems
    ]
    return run_points(points, jobs=jobs)


def latency_curve(
    level: RaidLevel,
    read_fraction: float,
    queue_depths: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    servers: int = 18,
    systems: Sequence[str] = ("SPDK", "dRAID", "Linux"),
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figures 14 / 27: latency vs bandwidth under increasing load."""
    points = [
        SweepPoint(
            _fio_row,
            dict(
                x=qd,
                system=system,
                read_fraction=read_fraction,
                servers=servers,
                level=level,
                queue_depth=qd,
                fast=fast,
            ),
        )
        for qd in queue_depths
        for system in systems
    ]
    return run_points(points, jobs=jobs)


def reconstruction_scalability(
    level: RaidLevel,
    widths: Sequence[int],
    systems: Sequence[str] = ("SPDK", "dRAID"),
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figure 17a: every read hits the failed drive (rebuild read stream).

    The workload is a rebuild job's read stream: chunk-sized reads that all
    target the failed drive's chunks (remapped via RebuildView below), so
    every I/O pays the reconstruction path.
    """
    points = [
        SweepPoint(
            _rebuild_row,
            dict(x=width, system=system, width=width, level=level, fast=fast),
        )
        for width in widths
        for system in systems
    ]
    return run_points(points, jobs=jobs)


def _rebuild_row(x, system, width, level, fast) -> Row:
    return _row(x, system, _rebuild_point(system, width, level, fast))


def _rebuild_point(system: str, width: int, level: RaidLevel, fast: bool):
    """All-degraded read stream: every I/O reconstructs a lost chunk."""
    from repro.experiments.common import build_array, measure_window_ns
    from repro.workloads import FioWorkload

    array = build_array(system, servers=width, level=level, failed_drives=(0,))
    geometry = array.geometry
    view = _FailedChunkView(array)
    fio = FioWorkload(
        view,
        io_size=geometry.chunk_bytes,
        read_fraction=1.0,
        queue_depth=DEFAULT_QD,
        capacity=geometry.chunk_bytes * 4096,
    )
    return fio.run(measure_ns=measure_window_ns(fast))


def bandwidth_aware_comparison(
    load_points: Sequence[int] = (4, 8, 16, 32, 64),
    width: int = 8,
    fast: bool = True,
    jobs: Optional[int] = None,
) -> List[Row]:
    """Figure 17b: random vs bandwidth-aware reducer on heterogeneous NICs.

    Half the storage servers get 25 Gbps NICs (enough to saturate one SSD's
    read stream), half 100 Gbps, as in the paper's setup.  The workload is
    the reconstruction-heavy rebuild read stream of Figure 17a: every read
    funnels ``width - 2`` partials through the chosen reducer's NIC, so
    picking a 25 Gbps reducer bottlenecks the whole reduction — which is
    exactly the load the §6.2 algorithm avoids.  The x axis ramps load via
    queue depth (the paper plots latency vs bandwidth).
    """
    points = [
        SweepPoint(
            _bw_aware_row,
            dict(x=qd, name=name, qd=qd, width=width, fast=fast),
        )
        for qd in load_points
        for name in ("Random", "BW-Aware")
    ]
    return run_points(points, jobs=jobs)


def _bw_aware_row(x, name, qd, width, fast) -> Row:
    from repro.draid.reconstruction import BandwidthAwareSelector, RandomReducerSelector
    from repro.experiments.common import build_array, measure_window_ns
    from repro.workloads import FioWorkload

    rates = [GOODPUT_25G if i % 2 else GOODPUT_100G for i in range(width)]
    array = build_array(
        "dRAID",
        servers=width,
        server_nic_rates=rates,
        failed_drives=(0,),
    )
    if name == "BW-Aware":
        array.selector = BandwidthAwareSelector(array.cluster, seed=3)
    else:
        array.selector = RandomReducerSelector(seed=3)
    view = _FailedChunkView(array)
    fio = FioWorkload(
        view,
        io_size=DEFAULT_IO,
        read_fraction=1.0,
        queue_depth=qd,
        capacity=array.geometry.chunk_bytes * 2048,
    )
    result = fio.run(measure_ns=measure_window_ns(fast))
    return _row(x, name, result)


class _FailedChunkView:
    """Remaps a linear offset space onto the failed drive's chunks (drive 0)."""

    def __init__(self, inner):
        self.inner = inner
        self.env = inner.env
        self.geometry = inner.geometry

    def read(self, offset, nbytes):
        geometry = self.geometry
        stripe = offset // geometry.chunk_bytes
        within = offset % geometry.chunk_bytes
        parity = geometry.parity_drives(stripe)
        if 0 in parity:
            data_index = 0
        else:
            data_index = geometry.data_index_of_drive(stripe, 0)
        user = (
            stripe * geometry.stripe_data_bytes
            + data_index * geometry.chunk_bytes
            + within
        )
        return self.inner.read(user, nbytes)

    def write(self, offset, nbytes, data=None):
        raise NotImplementedError("rebuild stream is read-only")
