"""Geometries figure: the design-space grid of layout x code x controller.

One property-tested harness, three orthogonal axes:

* **layout** — how stripes map onto drives: the stock ``rotating``
  parity rotation (full width, dedicated replacement on rebuild) vs the
  seeded ``declustered`` organization (stripe width ``n-1``, one
  distributed spare slot per stripe);
* **code** — the parity math at equal storage overhead
  (:data:`GEOM_PARITY` parity chunks either way): ``rs`` tolerates any
  :data:`GEOM_PARITY` erasures, ``lrc`` trades global tolerance for
  cheap local repair (fewer survivors touched per reconstruction);
* **controller** — stock dRAID (``draid``, distributed partial-parity
  and peer-to-peer reconstruction) vs the stateless-target variant
  (``draid-st``, all stripe state host-side, targets are pure
  data-plane).

Every grid cell is one independent testbed: prefill the working set,
fail a drive, measure **degraded throughput and p99** under a closed-loop
read-only FIO run (every read risks the reconstruction path, the
degraded cost under test), then (foreground stopped) measure **rebuild
completion time** — :class:`~repro.raid.rebuild.SpareRebuildJob` onto the
distributed spares for the declustered layout, the stock
:class:`~repro.raid.rebuild.RebuildJob` replacement sweep for rotation.
Each cell is additionally driven through the chaos harness
(:func:`~repro.faults.chaos.run_chaos_schedule` with the same axes) and
reports whether the seeded fault storm verified byte-exact
(``chaos_ok``).  The headline result: declustered rebuild only touches
the ``width/n`` fraction of stripes holding the dead member and its
writes fan out across every stripe's own spare, so it completes
measurably faster than the rotating layout's funnel into one
replacement drive — the smoke golden asserts it.

Points are fully independent, so the sweep parallelizes across worker
processes (``-j``), byte-identical to serial.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster import ClusterConfig, build_cluster
from repro.experiments.runner import SweepPoint, run_points
from repro.metrics.report import Row
from repro.sim import Environment

KB = 1024
MS = 1_000_000

#: the grid (>= 2 values per axis; every combination runs)
GEOM_LAYOUTS = ("rotating", "declustered")
GEOM_CODES = ("rs", "lrc")
GEOM_CONTROLLERS = ("draid", "draid-st")

GEOM_SERVERS = 8
GEOM_CHUNK = 32 * KB
#: equal storage overhead for both codes: RS(k, 3) vs LRC(k, l=2, g=1)
GEOM_PARITY = 3
GEOM_LOCAL_GROUPS = 2
GEOM_LAYOUT_SEED = 7
#: the failed member every cell rebuilds
GEOM_VICTIM = 0
GEOM_IO = 16 * KB
GEOM_QD = 16
GEOM_FIO_SEED = 42
#: seed of the chaos-harness verification storm run per cell
GEOM_CHAOS_SEED = 11

CONTROLLER_LABELS = {"draid": "dRAID", "draid-st": "dRAID-ST"}


def geom_stripes(fast: bool = True) -> int:
    return 24 if fast else 64


def _build_variant(layout: str, code: str, controller: str, stripes: int):
    """Fresh env + functional cluster + geometry + controller for one cell."""
    from repro.draid.ec_array import EcGeometry
    from repro.faults.chaos import _make_controller
    from repro.raid.layout import make_layout

    env = Environment()
    cluster = build_cluster(
        env,
        ClusterConfig(
            num_servers=GEOM_SERVERS, functional_capacity=stripes * GEOM_CHUNK
        ),
    )
    layout_obj = None
    if layout != "rotating":
        layout_obj = make_layout(
            layout, GEOM_SERVERS, GEOM_PARITY, seed=GEOM_LAYOUT_SEED
        )
    geometry = EcGeometry(GEOM_SERVERS, GEOM_CHUNK, GEOM_PARITY, layout=layout_obj)
    local_groups = GEOM_LOCAL_GROUPS if code == "lrc" else 1
    array = _make_controller(
        controller, cluster, geometry, code=code, local_groups=local_groups
    )
    return array


def _prefill(array, stripes: int) -> None:
    """Deterministically fill every stripe (full-stripe writes)."""
    g = array.geometry
    rng = np.random.default_rng(GEOM_LAYOUT_SEED)
    payload = rng.integers(
        0, 256, size=stripes * g.stripe_data_bytes, dtype=np.uint8
    )

    def writer():
        for stripe in range(stripes):
            offset = stripe * g.stripe_data_bytes
            yield array.write(
                offset, g.stripe_data_bytes, payload[offset : offset + g.stripe_data_bytes]
            )

    array.env.process(writer(), name="prefill")
    array.env.run()


def geometry_point(
    layout: str, code: str, controller: str, fast: bool = True
) -> Row:
    """One grid cell: degraded FIO window, then a foreground-free rebuild."""
    from repro.faults.chaos import run_chaos_schedule
    from repro.raid.rebuild import RebuildJob, SpareRebuildJob
    from repro.workloads import FioWorkload

    stripes = geom_stripes(fast)
    array = _build_variant(layout, code, controller, stripes)
    env = array.env
    g = array.geometry
    _prefill(array, stripes)

    array.fail_drive(GEOM_VICTIM)
    fio = FioWorkload(
        array,
        GEOM_IO,
        read_fraction=1.0,
        queue_depth=GEOM_QD,
        capacity=stripes * g.stripe_data_bytes,
        seed=GEOM_FIO_SEED,
    )
    degraded = fio.run(warmup_ns=1 * MS, measure_ns=10 * MS if fast else 30 * MS)

    # rebuild with foreground stopped: completion time is the layout's own
    if layout == "declustered":
        job = SpareRebuildJob(array, GEOM_VICTIM, stripes)
    else:
        job = RebuildJob(array, GEOM_VICTIM, stripes)
    job.start()
    env.run()
    assert not array.failed, f"{array.name}: rebuild left {array.failed} failed"

    outcome = run_chaos_schedule(
        controller,
        seed=GEOM_CHAOS_SEED,
        drives=GEOM_SERVERS,
        stripes=12,
        ops=14,
        layout=None if layout == "rotating" else layout,
        layout_seed=GEOM_LAYOUT_SEED,
        code=code,
        ec_parity=GEOM_PARITY,
        local_groups=GEOM_LOCAL_GROUPS if code == "lrc" else 1,
    )

    return Row(
        x=f"{layout}/{code}",
        system=CONTROLLER_LABELS[controller],
        metrics={
            "rebuild_ms": job.stats.elapsed_ns / 1e6,
            "degraded_mb_s": degraded.bandwidth_mb_s,
            "degraded_p99_ms": degraded.latency.p99_ns / 1e6,
            "chaos_ok": 1.0 if outcome.ok else 0.0,
        },
    )


def geometries_rows(fast: bool = True, jobs: Optional[int] = None) -> List[Row]:
    """The full grid, ranked by rebuild completion time within each x."""
    points = [
        SweepPoint(
            geometry_point,
            dict(layout=layout, code=code, controller=controller, fast=fast),
        )
        for layout in GEOM_LAYOUTS
        for code in GEOM_CODES
        for controller in GEOM_CONTROLLERS
    ]
    return run_points(points, jobs=jobs)
