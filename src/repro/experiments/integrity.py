"""Integrity figure: silent-corruption detection vs scrub pace.

Every system (Linux-MD model, SPDK model, dRAID) runs the same seeded
bit-rot schedule against a checksum-armed array while a closed-loop FIO
workload measures foreground bandwidth and tail latency.  The sweep
varies the online scrubber's pace — ``off`` plus three rates — to show
the tradeoff the integrity design exists to navigate:

* a *faster* scrub bounds detection latency (corruption is found and
  repaired within one pass) but taxes foreground bandwidth, since every
  scrubbed stripe reads all members through the same drives and locks;
* a *slower* (or absent) scrub is free, but corruption lingers until a
  foreground read or pre-write verification happens to trip over it —
  detection latency grows and residual corruption can outlive the run.

Arrays run in timing mode: detection keys off the drives' poisoned
extents, so the experiment measures the *mechanism's* latency and
bandwidth cost without hauling real bytes around.  Each point builds a
fresh testbed and parallelizes over worker processes like every other
figure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.runner import SweepPoint, run_points
from repro.metrics.report import Row
from repro.raid.geometry import RaidLevel

KB = 1024
US = 1_000
MS = 1_000_000

INTEGRITY_SYSTEMS = ("Linux", "SPDK", "dRAID")

#: pace label -> ns of idle time per scrubbed stripe (None = scrubber off).
#: Labels are ordered from no scrub to continuous scrub for the table.
SCRUB_PACES = {
    "off": None,
    "slow": 1 * MS,
    "medium": 250 * US,
    "fast": 0,
}

NUM_SERVERS = 8
CHUNK = 64 * KB
NUM_STRIPES = 128
NUM_FAULTS = 10
ROT_LENGTH = 4 * KB


def _corruption_plan(system: str, warmup_ns: int, measure_ns: int):
    """The seeded bit-rot schedule — identical across scrub paces, so the
    pace is the only variable between points of one system."""
    import random

    from repro.faults.events import BitRot
    from repro.faults.plan import FaultPlan

    rng = random.Random(f"repro.integrity:{system}")
    events = []
    for i in range(NUM_FAULTS):
        # spread injections over the first half of the measurement window
        at_ns = warmup_ns + (i * measure_ns) // (2 * NUM_FAULTS)
        server = rng.randrange(NUM_SERVERS)
        stripe = rng.randrange(NUM_STRIPES)
        offset = stripe * CHUNK + rng.randrange(CHUNK - ROT_LENGTH)
        events.append(
            BitRot(
                at_ns,
                server=server,
                offset=offset,
                length=ROT_LENGTH,
                seed=rng.randrange(1 << 30),
            )
        )
    return FaultPlan(events)


def integrity_point(system: str, pace_label: str, fast: bool) -> Row:
    """One (system, scrub pace) cell of the integrity figure."""
    from repro.cluster import ClusterConfig, build_cluster
    from repro.experiments.common import SYSTEMS
    from repro.faults.injector import FaultInjector
    from repro.raid.geometry import RaidGeometry
    from repro.raid.scrubber import ScrubDaemon
    from repro.sim import Environment
    from repro.storage.integrity import IntegrityStore
    from repro.workloads import FioWorkload

    warmup_ns = 2 * MS
    measure_ns = 24 * MS if fast else 48 * MS
    #: post-measurement grace period: the workload stops but the scrubber
    #: keeps walking, so late injections get their pace-bound shot at
    #: detection before the residual count is taken
    drain_ns = 20 * MS

    env = Environment()
    cluster = build_cluster(
        env, ClusterConfig(num_servers=NUM_SERVERS, io_timeout_ns=2 * MS)
    )
    IntegrityStore(CHUNK).attach(cluster)
    geometry = RaidGeometry(RaidLevel.RAID5, NUM_SERVERS, CHUNK)
    array = SYSTEMS[system](cluster, geometry)
    FaultInjector(array, _corruption_plan(system, warmup_ns, measure_ns))
    pace_ns = SCRUB_PACES[pace_label]
    daemon = (
        ScrubDaemon(array, NUM_STRIPES, pace_ns=pace_ns, repeat=True)
        if pace_ns is not None
        else None
    )
    # Read-only foreground: reads verify only the chunks they touch (and
    # never parity), so the scrubber is the primary detector and its pace
    # governs detection latency.  A write-heavy mix would hide the effect:
    # pre-write verification scans whole stripes and finds rot first.
    fio = FioWorkload(
        array,
        CHUNK,
        read_fraction=1.0,
        queue_depth=8,
        capacity=NUM_STRIPES * geometry.stripe_data_bytes,
        seed=4321,
    )
    result = fio.run(warmup_ns=warmup_ns, measure_ns=measure_ns)
    env.run(until=env.now + drain_ns)

    stats = array.integrity_stats
    store = array.integrity
    residual = sum(
        1
        for drive in cluster.drives()
        for c in range(NUM_STRIPES)
        if not store.chunk_ok(drive, c)
    )
    mean_ns = stats.mean_detection_latency_ns()
    return Row(
        x=f"scrub-{pace_label}",
        system=system,
        metrics={
            "bandwidth_mb_s": result.bandwidth_mb_s,
            "avg_latency_us": result.latency.mean_us,
            "p99_latency_us": result.latency.p99_us,
            "scrub_passes": (
                daemon.stripes_scanned_total / NUM_STRIPES if daemon else 0.0
            ),
            "detected": float(stats.total_detected),
            "repaired": float(stats.total_repaired),
            "detect_mean_ms": 0.0 if mean_ns is None else mean_ns / MS,
            "residual_bad_chunks": float(residual),
        },
    )


def integrity_rows(fast: bool = True, jobs: Optional[int] = None) -> List[Row]:
    points = [
        SweepPoint(integrity_point, dict(system=system, pace_label=label, fast=fast))
        for label in SCRUB_PACES
        for system in INTEGRITY_SYSTEMS
    ]
    return run_points(points, jobs=jobs)
