"""The ``obs`` figure: where does each request's time go, and what saturates?

Not a figure from the paper — an observability cross-check of its §9
attribution claims.  Each point runs one observability-armed FIO
measurement (see :func:`repro.experiments.common.traced_fio_point`),
folds the per-request traces into a mean critical-path breakdown, and
asks the utilization sampler which resource class saturated:

* Linux MD at 128 KiB reads is **host-NIC-bound** — one host NIC carries
  the full read stream (§2.3, Figure 9).
* dRAID at 4 KiB writes is **drive-bound** — offload removes the network
  and CPU bottlenecks, leaving raw drive IOPS (§9.2, Figure 10).

Rows carry bandwidth, the mean per-request breakdown in microseconds
(parts sum to the mean latency by construction) and the mean utilization
of the key resource classes; the sampler's verdict is folded into the
x label, e.g. ``rd128K[host-nic]``.

Point functions stay module-level so they pickle across the
``REPRO_JOBS`` process boundary.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import KB, traced_fio_point
from repro.experiments.runner import SweepPoint, run_points
from repro.metrics.report import Row
from repro.obs import request_breakdowns

#: (x label, system, io_size, read_fraction) — the attribution points.
OBS_POINTS = (
    ("rd128K", "Linux", 128 * KB, 1.0),
    ("rd128K", "SPDK", 128 * KB, 1.0),
    ("rd128K", "dRAID", 128 * KB, 1.0),
    ("wr4K", "Linux", 4 * KB, 0.0),
    ("wr4K", "SPDK", 4 * KB, 0.0),
    ("wr4K", "dRAID", 4 * KB, 0.0),
)

#: Breakdown categories reported as table columns (microseconds each).
BREAKDOWN_COLUMNS = ("disk", "transfer", "compute", "queue-wait", "lock-wait")


def obs_point(x, system: str, io_size: int, read_fraction: float,
              fast: bool = True, seed: int = 1234) -> Row:
    """One armed FIO run -> a row of breakdown + utilization metrics."""
    result, obs = traced_fio_point(
        system, io_size=io_size, read_fraction=read_fraction, fast=fast, seed=seed
    )
    breakdowns = request_breakdowns(obs.tracer)
    n = max(1, len(breakdowns))
    mean_parts = {}
    for b in breakdowns:
        for cat, ns in b["parts"].items():
            mean_parts[cat] = mean_parts.get(cat, 0) + ns
    report = obs.sampler.report()
    metrics = {
        "bandwidth_mb_s": result.bandwidth_mb_s,
        "avg_latency_us": result.latency.mean_us,
    }
    for cat in BREAKDOWN_COLUMNS:
        metrics[f"{cat}_us"] = mean_parts.get(cat, 0) / n / 1000
    other = sum(mean_parts.values()) - sum(
        mean_parts.get(c, 0) for c in BREAKDOWN_COLUMNS
    )
    metrics["other_us"] = other / n / 1000
    for cls in ("host-nic", "drive", "server-cpu", "raid-thread"):
        metrics[f"{cls}-util"] = report.utilization.get(cls, 0.0)
    return Row(x=f"{x}[{report.bottleneck}]", system=system, metrics=metrics)


def obs_rows(fast: bool = True, jobs: Optional[int] = None) -> List[Row]:
    """All attribution points, fanned out like every other figure sweep."""
    points = [
        SweepPoint(obs_point, dict(x=x, system=system, io_size=io,
                                   read_fraction=rf, fast=fast))
        for x, system, io, rf in OBS_POINTS
    ]
    return run_points(points, jobs=jobs)
