"""Overload figure: goodput collapse without admission control.

Open-loop offered-load sweep over every controller, protected vs raw:

* ``raw`` — the historic datapath: no admission bound, no deadlines, no
  retry budget.  Past saturation the arrival backlog grows without bound,
  every I/O completes later than its latency budget, and *goodput* (bytes
  delivered within budget) collapses toward zero even though throughput
  stays near capacity — the classic open-loop overload cliff.
* ``protected`` — the same testbed with :class:`repro.qos.OverloadConfig`
  armed: a bounded admission queue fast-rejects excess arrivals with a
  typed ``Busy``, deadlines propagate to the targets so stale work is shed
  instead of served, and admitted I/Os complete within budget.  Goodput
  flattens at capacity instead of collapsing.

The second scenario is a **metastable failure**: near-saturation load plus
a transient fail-slow member.  Timeout-driven retries amplify offered load
past capacity and keep the raw system collapsed even after the slow window
clears; the protected system's retry budget and deadline caps bound the
amplification and goodput recovers.

Wall-clock: each point is an independent testbed, so the sweep
parallelizes across worker processes (``-j``), byte-identical to serial.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.runner import SweepPoint, run_points
from repro.metrics.report import Row

KB = 1024
MS = 1_000_000

OVERLOAD_SYSTEMS = ("Linux", "SPDK", "dRAID")
#: offered load as multiples of the measured closed-loop saturation rate
OVERLOAD_MULTIPLIERS = (0.5, 1.0, 1.5, 2.0)
#: closed-loop saturation IOPS (64 KiB, 90% reads, qd 64, 8 targets) — the
#: sweep's 1.0x anchor; remeasure with workloads.FioWorkload when the
#: drive/NIC profiles change
SATURATION_IOPS = {"Linux": 160_000.0, "SPDK": 160_000.0, "dRAID": 195_000.0}

OVERLOAD_SERVERS = 8
OVERLOAD_CHUNK = 64 * KB
OVERLOAD_IO = 64 * KB
OVERLOAD_READ_FRACTION = 0.9
#: per-I/O latency budget: ~2x the p99 at closed-loop saturation
OVERLOAD_DEADLINE_NS = 5 * MS
OVERLOAD_ADMISSION_DEPTH = 64
OVERLOAD_TARGET_DEPTH = 96


def _overload_config():
    from repro.qos import OverloadConfig

    return OverloadConfig(
        admission_depth=OVERLOAD_ADMISSION_DEPTH,
        target_queue_depth=OVERLOAD_TARGET_DEPTH,
        default_deadline_ns=OVERLOAD_DEADLINE_NS,
        retry_deposit_ratio=0.1,
    )


def _build(system: str, protected: bool, io_timeout_ns: Optional[int] = None):
    from repro.cluster import ClusterConfig, build_cluster
    from repro.experiments.common import SYSTEMS
    from repro.raid.geometry import RaidGeometry, RaidLevel
    from repro.sim import Environment

    env = Environment()
    kwargs = {}
    if io_timeout_ns is not None:
        kwargs["io_timeout_ns"] = io_timeout_ns
    config = ClusterConfig(
        num_servers=OVERLOAD_SERVERS,
        overload=_overload_config() if protected else None,
        **kwargs,
    )
    cluster = build_cluster(env, config)
    geometry = RaidGeometry(RaidLevel.RAID5, OVERLOAD_SERVERS, OVERLOAD_CHUNK)
    return SYSTEMS[system](cluster, geometry)


def overload_point(
    system: str, protected: bool, multiplier: float, fast: bool = True
) -> Dict:
    """One offered-load point; returns plain (picklable) metrics."""
    from repro.workloads import OpenLoopWorkload

    array = _build(system, protected)
    measure_ns = 10 * MS if fast else 30 * MS
    workload = OpenLoopWorkload(
        array,
        OVERLOAD_IO,
        rate_iops=multiplier * SATURATION_IOPS[system],
        read_fraction=OVERLOAD_READ_FRACTION,
        seed=971,
        deadline_ns=OVERLOAD_DEADLINE_NS,
    )
    result = workload.run(warmup_ns=2 * MS, measure_ns=measure_ns)
    return _metrics(system, protected, f"{multiplier:g}x", result)


def metastable_point(system: str, protected: bool, fast: bool = True) -> Dict:
    """Metastable failure: a transient load spike ignites a retry storm.

    The array runs at 0.9x saturation with an aggressive 1 ms per-attempt
    timeout (resilient datapath armed).  A 5 ms spike of 2x extra traffic
    builds a backlog; once queueing delay exceeds the attempt timeout,
    every I/O times out and is re-sent, so the *effective* load stays far
    past capacity after the spike ends — the raw datapath never recovers
    (the defining signature of a metastable failure).  The protected arm
    bounds the feedback loop: admission caps the backlog so queueing delay
    stays below the timeout, deadlines cap each request's total attempt
    time, and the retry budget caps the storm's amplification factor.
    """
    from repro.faults.plan import FaultPlan
    from repro.faults.injector import FaultInjector
    from repro.workloads import OpenLoopWorkload

    array = _build(system, protected, io_timeout_ns=1 * MS)
    env = array.env
    # empty plan: arms the resilient (timeout/retry) datapath, injects nothing
    FaultInjector(array, FaultPlan([]), num_stripes=256)
    measure_ns = 20 * MS if fast else 60 * MS
    workload = OpenLoopWorkload(
        array,
        OVERLOAD_IO,
        rate_iops=0.9 * SATURATION_IOPS[system],
        read_fraction=OVERLOAD_READ_FRACTION,
        seed=971,
        deadline_ns=OVERLOAD_DEADLINE_NS,
    )
    spike = OpenLoopWorkload(
        array,
        OVERLOAD_IO,
        rate_iops=2.0 * SATURATION_IOPS[system],
        read_fraction=OVERLOAD_READ_FRACTION,
        seed=1337,
        deadline_ns=OVERLOAD_DEADLINE_NS,
    )

    def spike_window():
        yield env.timeout(4 * MS)
        stop = env.event()
        env.process(spike._arrivals(stop), name="spike")
        yield env.timeout(5 * MS)
        stop.succeed()

    env.process(spike_window(), name="spike.window")
    result = workload.run(warmup_ns=2 * MS, measure_ns=measure_ns)
    return _metrics(system, protected, "meta", result)


def _metrics(system: str, protected: bool, x: str, result) -> Dict:
    return {
        "system": system,
        "protected": protected,
        "x": x,
        "offered_mb_s": result.offered_mb_s,
        "throughput_mb_s": result.throughput_mb_s,
        "goodput_mb_s": result.goodput_mb_s,
        "goodput_fraction": result.goodput_fraction,
        "ops_offered": result.ops_offered,
        "ops_good": result.ops_good,
        "busy_rejections": result.busy_rejections,
        "deadline_failures": result.deadline_failures,
        "io_errors": result.io_errors,
        "late_completions": result.late_completions,
        "p99_us": result.latency.p99_ns / 1e3,
    }


def overload_rows(fast: bool = True, jobs: Optional[int] = None) -> List[Row]:
    """The full figure: load sweep plus the metastable scenario."""
    points = [
        SweepPoint(
            overload_point,
            dict(system=system, protected=protected, multiplier=m, fast=fast),
        )
        for system in OVERLOAD_SYSTEMS
        for protected in (False, True)
        for m in OVERLOAD_MULTIPLIERS
    ]
    points += [
        SweepPoint(metastable_point, dict(system=system, protected=protected, fast=fast))
        for system in OVERLOAD_SYSTEMS
        for protected in (False, True)
    ]
    rows = []
    for result in run_points(points, jobs=jobs):
        arm = "protected" if result["protected"] else "raw"
        rows.append(
            Row(
                x=result["x"],
                system=f"{result['system']}-{arm}",
                metrics={
                    "offered_mb_s": result["offered_mb_s"],
                    "throughput_mb_s": result["throughput_mb_s"],
                    "goodput_mb_s": result["goodput_mb_s"],
                    "goodput_fraction": result["goodput_fraction"],
                    "busy_rejections": float(result["busy_rejections"]),
                    "deadline_failures": float(result["deadline_failures"]),
                    "p99_us": result["p99_us"],
                },
            )
        )
    return rows
