"""Registry: paper table/figure id -> experiment runner.

Each runner takes ``fast`` (short measurement windows, slightly sparser
sweeps) and returns ``(title, rows)``.  ``run_experiment`` executes one and
renders its table.  Benchmarks in ``benchmarks/`` wrap these one-to-one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.table1 import architecture_table
from repro.experiments import app_figures, fio_figures
from repro.metrics.report import Row, format_table
from repro.raid.geometry import RaidLevel

R5, R6 = RaidLevel.RAID5, RaidLevel.RAID6

#: Sweep points (full mode mirrors the paper's x axes; fast mode thins them).
IO_SIZES_READ = [4, 8, 16, 32, 64, 128]
IO_SIZES_WRITE_R5 = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3584]
IO_SIZES_WRITE_R6 = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3072]
CHUNK_SIZES = [32, 64, 128, 256, 512, 1024]
WIDTHS = [4, 6, 8, 10, 12, 14, 16, 18]
RATIOS = [0.0, 0.25, 0.5, 0.75, 1.0]
QUEUE_DEPTHS = [1, 2, 4, 8, 16, 32, 64, 128]


def _thin(points: Sequence, fast: bool, keep_every: int = 2) -> List:
    """Drop every other interior point in fast mode (keep both endpoints)."""
    if not fast or len(points) <= 4:
        return list(points)
    kept = [p for i, p in enumerate(points) if i % keep_every == 0]
    if kept[-1] != points[-1]:
        kept.append(points[-1])
    return kept


def run_table1(fast: bool = True) -> Tuple[str, List[Row]]:
    table = architecture_table()
    # Rendered analytically; rows carry the numeric overhead columns.
    rows = [
        Row("Single-Machine", "analytical", {"write_overhead_x": 1.0, "dread_overhead_x": 1.0}),
        Row("Distributed", "analytical", {"write_overhead_x": 4.0, "dread_overhead_x": 7.0}),
        Row("dRAID", "analytical", {"write_overhead_x": 1.0, "dread_overhead_x": 1.0}),
    ]
    return "Table 1: remote RAID architectures\n" + table, rows


def run_fig09(fast: bool = True):
    rows = fio_figures.sweep_io_size(R5, 1.0, _thin(IO_SIZES_READ, fast), servers=6, fast=fast)
    return "Figure 9: RAID-5 normal-state read vs I/O size (6 targets)", rows


def run_fig10(fast: bool = True):
    rows = fio_figures.sweep_io_size(R5, 0.0, _thin(IO_SIZES_WRITE_R5, fast), fast=fast)
    return "Figure 10: RAID-5 write vs I/O size", rows


def run_fig11(fast: bool = True):
    rows = fio_figures.sweep_chunk_size(R5, _thin(CHUNK_SIZES, fast), fast=fast)
    return "Figure 11: RAID-5 write vs chunk size", rows


def run_fig12(fast: bool = True):
    rows = fio_figures.sweep_stripe_width(R5, _thin(WIDTHS, fast), fast=fast)
    return "Figure 12: RAID-5 write vs stripe width", rows


def run_fig13(fast: bool = True):
    rows = fio_figures.sweep_read_ratio(R5, RATIOS, fast=fast)
    return "Figure 13: RAID-5 write vs read/write ratio", rows


def run_fig14(fast: bool = True):
    qds = _thin(QUEUE_DEPTHS, fast)
    rows = fio_figures.latency_curve(R5, 0.0, qds, fast=fast)
    for row in rows:
        row.x = f"wo-qd{row.x}"
    mixed = fio_figures.latency_curve(R5, 0.5, qds, fast=fast)
    for row in mixed:
        row.x = f"rw-qd{row.x}"
    return "Figure 14: RAID-5 latency vs bandwidth (write-only and 50/50)", rows + mixed


def run_fig15(fast: bool = True):
    rows = fio_figures.sweep_io_size(
        R5, 1.0, _thin(IO_SIZES_READ, fast), failed_drives=(0,), fast=fast
    )
    return "Figure 15: RAID-5 degraded read vs I/O size", rows


def run_fig16(fast: bool = True):
    rows = fio_figures.sweep_stripe_width(
        R5, _thin(WIDTHS, fast), read_fraction=1.0, failed=True, fast=fast
    )
    return "Figure 16: RAID-5 degraded read vs stripe width", rows


def run_fig17(fast: bool = True):
    rows = fio_figures.reconstruction_scalability(R5, _thin(WIDTHS, fast), fast=fast)
    for row in rows:
        row.x = f"width-{row.x}"
    aware = fio_figures.bandwidth_aware_comparison(
        load_points=_thin([4, 8, 16, 32, 64], fast), fast=fast
    )
    for row in aware:
        row.x = f"qd-{row.x}"
    return "Figure 17: reconstruction scalability and BW-aware reducer", rows + aware


def run_fig18(fast: bool = True):
    rows = fio_figures.sweep_io_size(
        R5, 0.0, _thin(IO_SIZES_READ, fast), failed_drives=(0,), fast=fast
    )
    return "Figure 18: RAID-5 degraded write vs I/O size", rows


def run_fig19(fast: bool = True):
    rows = app_figures.lsm_ycsb(degraded=False, fast=fast)
    for row in rows:
        row.x = f"{row.x}-normal"
    degraded = app_figures.lsm_ycsb(degraded=True, fast=fast)
    for row in degraded:
        row.x = f"{row.x}-degraded"
    return "Figure 19: LSM KV store (RocksDB stand-in) YCSB throughput", rows + degraded


def run_fig20(fast: bool = True):
    rows = app_figures.objectstore_ycsb(degraded=False, fast=fast)
    return "Figure 20: object store on normal-state RAID-5", rows


def run_fig21(fast: bool = True):
    rows = app_figures.objectstore_ycsb(degraded=True, fast=fast)
    return "Figure 21: object store on degraded-state RAID-5", rows


# -- Appendix A: RAID-6 -------------------------------------------------------


def run_fig22(fast: bool = True):
    rows = fio_figures.sweep_io_size(R6, 1.0, _thin(IO_SIZES_READ, fast), servers=6, fast=fast)
    return "Figure 22: RAID-6 normal-state read vs I/O size", rows


def run_fig23(fast: bool = True):
    rows = fio_figures.sweep_io_size(R6, 0.0, _thin(IO_SIZES_WRITE_R6, fast), fast=fast)
    return "Figure 23: RAID-6 write vs I/O size", rows


def run_fig24(fast: bool = True):
    rows = fio_figures.sweep_chunk_size(R6, _thin(CHUNK_SIZES, fast), fast=fast)
    return "Figure 24: RAID-6 write vs chunk size", rows


def run_fig25(fast: bool = True):
    rows = fio_figures.sweep_stripe_width(R6, _thin(WIDTHS, fast), fast=fast)
    return "Figure 25: RAID-6 write vs stripe width", rows


def run_fig26(fast: bool = True):
    rows = fio_figures.sweep_read_ratio(R6, RATIOS, fast=fast)
    return "Figure 26: RAID-6 write vs read/write ratio", rows


def run_fig27(fast: bool = True):
    qds = _thin(QUEUE_DEPTHS, fast)
    rows = fio_figures.latency_curve(R6, 0.0, qds, fast=fast)
    for row in rows:
        row.x = f"wo-qd{row.x}"
    mixed = fio_figures.latency_curve(R6, 0.5, qds, fast=fast)
    for row in mixed:
        row.x = f"rw-qd{row.x}"
    return "Figure 27: RAID-6 latency vs bandwidth", rows + mixed


def run_fig28(fast: bool = True):
    rows = fio_figures.sweep_io_size(
        R6, 1.0, _thin(IO_SIZES_READ, fast), failed_drives=(0,), fast=fast
    )
    return "Figure 28: RAID-6 degraded read vs I/O size", rows


def run_fig29(fast: bool = True):
    rows = fio_figures.sweep_stripe_width(
        R6, _thin(WIDTHS, fast), read_fraction=1.0, failed=True, fast=fast
    )
    return "Figure 29: RAID-6 degraded read vs stripe width", rows


def run_fig30(fast: bool = True):
    rows = fio_figures.sweep_io_size(
        R6, 0.0, _thin(IO_SIZES_READ, fast), failed_drives=(0,), fast=fast
    )
    return "Figure 30: RAID-6 degraded write vs I/O size", rows


def run_reliability(fast: bool = True):
    from repro.experiments.reliability import reliability_rows

    rows = reliability_rows(fast=fast)
    return (
        "Reliability: fault-storm phases and fail-slow detection (§5.4)",
        rows,
    )


def run_integrity(fast: bool = True):
    from repro.experiments.integrity import integrity_rows

    rows = integrity_rows(fast=fast)
    return (
        "Integrity: silent-corruption detection latency and foreground "
        "bandwidth vs scrub pace",
        rows,
    )


def run_availability(fast: bool = True):
    from repro.experiments.availability import availability_rows

    rows = availability_rows(fast=fast)
    return (
        "Availability: Monte Carlo data-loss rate and rebuild exposure, "
        "independent vs correlated (batch-storm) fault processes",
        rows,
    )


def run_overload(fast: bool = True):
    from repro.experiments.overload import overload_rows

    rows = overload_rows(fast=fast)
    return (
        "Overload: open-loop goodput collapse vs offered load, raw datapath "
        "vs admission control + deadlines + retry budget",
        rows,
    )


def run_tenancy(fast: bool = True):
    from repro.experiments.tenancy import tenancy_rows

    rows = tenancy_rows(fast=fast)
    return (
        "Tenancy: noisy-neighbor isolation (rack QoS off vs on) and "
        "hot-spot recovery by live volume migration",
        rows,
    )


def run_geometries(fast: bool = True):
    from repro.experiments.geometries import geometries_rows

    rows = geometries_rows(fast=fast)
    return (
        "Geometries: design-space grid of stripe layout x erasure code x "
        "controller — rebuild time, degraded throughput/p99, chaos verify",
        rows,
    )


def run_obs(fast: bool = True):
    from repro.experiments.obs_figures import obs_rows

    rows = obs_rows(fast=fast)
    return (
        "Observability: per-request critical path and bottleneck attribution "
        "(x label carries the sampler's verdict)",
        rows,
    )


EXPERIMENTS: Dict[str, Callable[[bool], Tuple[str, List[Row]]]] = {
    "table1": run_table1,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig19": run_fig19,
    "fig20": run_fig20,
    "fig21": run_fig21,
    "fig22": run_fig22,
    "fig23": run_fig23,
    "fig24": run_fig24,
    "fig25": run_fig25,
    "fig26": run_fig26,
    "fig27": run_fig27,
    "fig28": run_fig28,
    "fig29": run_fig29,
    "fig30": run_fig30,
    "availability": run_availability,
    "reliability": run_reliability,
    "integrity": run_integrity,
    "obs": run_obs,
    "overload": run_overload,
    "tenancy": run_tenancy,
    "geometries": run_geometries,
}


def run_experiment(exp_id: str, fast: bool = True) -> str:
    """Run one experiment and return its rendered table."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    title, rows = EXPERIMENTS[exp_id](fast)
    if not rows:
        return title
    x_label = "x"
    metric_order = ["bandwidth_mb_s", "avg_latency_us"] if "bandwidth_mb_s" in rows[0].metrics else []
    return format_table(title, rows, x_label=x_label, metric_order=metric_order)
