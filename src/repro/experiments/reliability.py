"""Reliability figure (§5.4): the datapath through a fault storm.

Two sweeps, both driven by :mod:`repro.faults`:

* **Fault storm**: every system runs the same scripted plan — a member
  dies at 10 ms and is healed (replacement + online rebuild) at 40 ms —
  and a closed-loop FIO workload measures one window per phase:
  ``healthy`` (before the fault), ``degraded`` (after fencing),
  ``rebuild`` (during reconstruction) and ``healed`` (after the rebuild
  completes).  The figure shows how throughput dips and recovers.

* **Fail-slow**: a dRAID member turns 10x slower (a fail-slow fault,
  not a fail-stop).  Without detection the array's read tail latency is
  held hostage by the slow member; with the EWMA detector the member is
  ejected into the degraded set and p99 recovers to within 2x healthy.

Each point builds a fresh simulated testbed, so the sweep parallelizes
over worker processes like every other figure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.metrics.report import Row
from repro.experiments.runner import SweepPoint, run_points
from repro.raid.geometry import RaidLevel

KB = 1024
MS = 1_000_000

STORM_SYSTEMS = ("Linux", "SPDK", "dRAID")
STORM_VICTIM = 1
STORM_FAIL_AT = 10 * MS
STORM_HEAL_AT = 40 * MS
STORM_REBUILD_STRIPES = 128
#: phase -> (measurement window start, window length), sim ns
STORM_PHASES = {
    "healthy": (2 * MS, 6 * MS),
    "degraded": (14 * MS, 12 * MS),
    "rebuild": (41 * MS, 8 * MS),
    "healed": (60 * MS, 12 * MS),
}

FAILSLOW_MODES = ("baseline", "failslow", "detected")
FAILSLOW_VICTIM = 2
FAILSLOW_FACTOR = 10.0


def _armed_array(system: str, timeout_ns: int = 2 * MS, **array_kwargs):
    """A perf-mode testbed with the §5.4 resilient datapath armed."""
    from repro.cluster import ClusterConfig, build_cluster
    from repro.experiments.common import SYSTEMS
    from repro.raid.geometry import RaidGeometry
    from repro.sim import Environment

    env = Environment()
    cluster = build_cluster(
        env, ClusterConfig(num_servers=8, io_timeout_ns=timeout_ns)
    )
    geometry = RaidGeometry(RaidLevel.RAID5, 8, 64 * KB)
    return SYSTEMS[system](cluster, geometry, **array_kwargs)


def storm_point(system: str, phase: str) -> Row:
    """One phase window of the scripted crash -> rebuild -> heal storm."""
    from repro.faults.events import DriveFail, DriveHeal
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.workloads import FioWorkload

    array = _armed_array(system)
    plan = FaultPlan(
        [
            DriveFail(STORM_FAIL_AT, server=STORM_VICTIM),
            DriveHeal(STORM_HEAL_AT, server=STORM_VICTIM),
        ]
    )
    injector = FaultInjector(array, plan, num_stripes=STORM_REBUILD_STRIPES)
    start_ns, window_ns = STORM_PHASES[phase]
    fio = FioWorkload(
        array, 64 * KB, read_fraction=0.5, queue_depth=16, seed=4321
    )
    result = fio.run(warmup_ns=start_ns, measure_ns=window_ns)
    return Row(
        x=f"storm-{phase}",
        system=system,
        metrics={
            "bandwidth_mb_s": result.bandwidth_mb_s,
            "avg_latency_us": result.latency.mean_us,
            "p99_latency_us": result.latency.p99_us,
            "io_errors": float(fio.io_errors),
            "retries": float(array.fault_stats.retries),
            "degraded_transitions": float(array.fault_stats.degraded_transitions),
        },
    )


def failslow_point(mode: str) -> Row:
    """dRAID read tail latency with a 10x fail-slow member (§5.4)."""
    from repro.faults.detect import FailSlowDetector
    from repro.faults.events import DriveFailSlow
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.workloads import FioWorkload

    kwargs = {}
    if mode == "detected":
        kwargs["failslow_detector"] = FailSlowDetector()
    array = _armed_array("dRAID", **kwargs)
    events = []
    if mode != "baseline":
        events.append(
            DriveFailSlow(
                0, server=FAILSLOW_VICTIM, multiplier=FAILSLOW_FACTOR, duration_ns=0
            )
        )
    FaultInjector(array, FaultPlan(events))
    fio = FioWorkload(array, 64 * KB, read_fraction=1.0, queue_depth=16, seed=97)
    # a long warmup gives the EWMA detector its observation window
    result = fio.run(warmup_ns=10 * MS, measure_ns=15 * MS)
    return Row(
        x=f"failslow-{mode}",
        system="dRAID",
        metrics={
            "bandwidth_mb_s": result.bandwidth_mb_s,
            "avg_latency_us": result.latency.mean_us,
            "p99_latency_us": result.latency.p99_us,
            "fail_slow_ejections": float(array.fault_stats.fail_slow_ejections),
        },
    )


def reliability_rows(fast: bool = True, jobs: Optional[int] = None) -> List[Row]:
    points = [
        SweepPoint(storm_point, dict(system=system, phase=phase))
        for phase in STORM_PHASES
        for system in STORM_SYSTEMS
    ]
    points += [SweepPoint(failslow_point, dict(mode=mode)) for mode in FAILSLOW_MODES]
    return run_points(points, jobs=jobs)
