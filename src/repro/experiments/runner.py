"""Declarative sweep execution with optional process parallelism.

Every figure in the paper is a sweep of fully independent measurement
points: each point builds its own :class:`~repro.sim.Environment`, seeds its
own RNGs and never shares state with its neighbours.  That isolation makes
process-level parallelism *exact*: fanning the points out over a
``ProcessPoolExecutor`` and reassembling the rows in submission order yields
byte-identical results to running them serially.

Usage::

    points = [SweepPoint(fn, dict(x=..., system=..., ...)) for ...]
    rows = run_points(points)            # REPRO_JOBS workers (default: cores)
    rows = run_points(points, jobs=1)    # force the in-process serial path

``fn`` must be a module-level callable returning a picklable result (a
:class:`~repro.metrics.report.Row` for figure sweeps) so it can cross the
process boundary under both the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Environment variable selecting the worker count (0/unset -> cpu count).
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class SweepPoint:
    """One independent experiment point: ``fn(**kwargs)``."""

    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(**self.kwargs)


@dataclass(frozen=True)
class SweepSpec:
    """A named, declarative collection of sweep points."""

    name: str
    points: Tuple[SweepPoint, ...]

    def run(self, jobs: Optional[int] = None) -> List[Any]:
        return run_points(self.points, jobs=jobs)


def resolve_jobs(jobs: Optional[int] = None, num_points: Optional[int] = None) -> int:
    """Worker count: explicit ``jobs`` > ``REPRO_JOBS`` env > cpu count."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(f"{JOBS_ENV_VAR}={raw!r} is not an integer") from None
        if not jobs:  # unset, empty or explicit 0: use every core
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if num_points is not None:
        jobs = min(jobs, max(1, num_points))
    return jobs


def _execute(point: SweepPoint) -> Any:
    return point.execute()


def run_points(points: Sequence[SweepPoint], jobs: Optional[int] = None) -> List[Any]:
    """Execute every point and return their results in submission order.

    ``jobs == 1`` (or a single point) runs in-process with no executor, so
    debuggers, profilers and coverage tools see straight-line code.  With
    more workers the points are distributed over a ``ProcessPoolExecutor``;
    ``Executor.map`` preserves input order, and per-point isolation makes
    the assembled result list byte-identical to the serial path.
    """
    points = list(points)
    jobs = resolve_jobs(jobs, len(points))
    if jobs <= 1 or len(points) <= 1:
        return [point.execute() for point in points]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_execute, points, chunksize=1))
