"""Declarative sweep execution with optional process parallelism.

Every figure in the paper is a sweep of fully independent measurement
points: each point builds its own :class:`~repro.sim.Environment`, seeds its
own RNGs and never shares state with its neighbours.  That isolation makes
process-level parallelism *exact*: fanning the points out over a process
pool and reassembling the rows in submission order yields byte-identical
results to running them serially.

The pool is *warm and persistent*: the first parallel ``run_points`` call
creates it (workers pre-import the experiment stack in their initializer)
and later sweeps in the same driver run reuse it, so short sweep points no
longer pay process spawn + interpreter warm-up per sweep — the overhead
that made small ``-j`` runs slower than serial.  ``shutdown_pool()`` tears
it down (registered via ``atexit``); asking for a different worker count
recreates it at the new size.

Usage::

    points = [SweepPoint(fn, dict(x=..., system=..., ...)) for ...]
    rows = run_points(points)            # REPRO_JOBS workers (default: cores)
    rows = run_points(points, jobs=1)    # force the in-process serial path

``fn`` must be a module-level callable returning a picklable result (a
:class:`~repro.metrics.report.Row` for figure sweeps) so it can cross the
process boundary under both the ``fork`` and ``spawn`` start methods.  A
point crossing the boundary is just ``(fn reference, small kwargs dict)`` —
configs are built inside the worker, not shipped.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Environment variable selecting the worker count (0/unset -> cpu count).
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class SweepPoint:
    """One independent experiment point: ``fn(**kwargs)``."""

    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(**self.kwargs)


@dataclass(frozen=True)
class SweepSpec:
    """A named, declarative collection of sweep points."""

    name: str
    points: Tuple[SweepPoint, ...]

    def run(self, jobs: Optional[int] = None) -> List[Any]:
        return run_points(self.points, jobs=jobs)


def resolve_jobs(jobs: Optional[int] = None, num_points: Optional[int] = None) -> int:
    """Worker count: explicit ``jobs`` > ``REPRO_JOBS`` env > cpu count."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(f"{JOBS_ENV_VAR}={raw!r} is not an integer") from None
        if not jobs:  # unset, empty or explicit 0: use every core
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if num_points is not None:
        jobs = min(jobs, max(1, num_points))
    return jobs


def _execute(point: SweepPoint) -> Any:
    return point.execute()


def _warm_worker() -> None:
    """Worker initializer: pre-import the heavy experiment stack once per
    worker process so the first sweep point does not pay for it."""
    import repro.experiments.common  # noqa: F401
    import repro.metrics.report  # noqa: F401
    import repro.workloads.fio  # noqa: F401


#: The persistent pool and the worker count it was built with.
_pool: Optional[ProcessPoolExecutor] = None
_pool_jobs: int = 0


def warm_pool(jobs: Optional[int] = None) -> ProcessPoolExecutor:
    """Return the persistent worker pool, creating (or resizing) it.

    Workers are started once and reused by every subsequent parallel
    ``run_points`` call, so a driver running many sweeps pays process
    start-up and module-import cost a single time.  Requesting a different
    ``jobs`` count tears the old pool down and builds a new one.
    """
    global _pool, _pool_jobs
    jobs = resolve_jobs(jobs)
    if _pool is not None and _pool_jobs != jobs:
        shutdown_pool()
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=jobs, initializer=_warm_worker)
        _pool_jobs = jobs
    return _pool


def shutdown_pool() -> None:
    """Tear down the persistent pool (no-op when none exists)."""
    global _pool, _pool_jobs
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_jobs = 0


atexit.register(shutdown_pool)


def run_points(points: Sequence[SweepPoint], jobs: Optional[int] = None) -> List[Any]:
    """Execute every point and return their results in submission order.

    ``jobs == 1`` (or a single point) runs in-process with no executor, so
    debuggers, profilers and coverage tools see straight-line code.  With
    more workers the points are distributed over the warm persistent pool;
    ``Executor.map`` preserves input order, and per-point isolation makes
    the assembled result list byte-identical to the serial path.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(points) <= 1:
        return [point.execute() for point in points]
    pool = warm_pool(jobs)
    try:
        return list(pool.map(_execute, points, chunksize=1))
    except BrokenProcessPool:
        # A crashed worker poisons the whole pool: drop it so the next
        # call starts fresh instead of failing forever.
        shutdown_pool()
        raise
