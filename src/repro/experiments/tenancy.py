"""Tenancy figure: noisy-neighbor isolation and hot-spot migration.

Two rack-scale scenarios, each run for every controller:

* **noisy neighbor** — a well-behaved *victim* (0.35x saturation, Poisson)
  shares one array with a bursty aggressor offering 1.6x saturation.  With
  rack QoS off the victim's goodput collapses and its p99 blows through
  the latency budget even though its own load never changed; with QoS on
  (fair-share weight 4 vs 1 plus a token-bucket cap on the aggressor) the
  victim retains its full solo goodput while the aggressor bounces off its
  own queue limit.  Each point also measures the victim *solo* on an
  otherwise idle rack — the denominator of the retention metric.
* **hot spot** — two hot tenants saturate array ``a0`` while ``a1`` idles
  at 20% load.  The *static* arm leaves placement alone; the *migrate*
  arm arms the :class:`~repro.rack.HotSpotBalancer`, which detects the
  backlogged front door and live-migrates the hottest volume to ``a1``
  during phase 1.  Phase 2 then shows the recovery: both hot tenants'
  goodput rises and the ``Busy`` fast-rejects drain away, while the
  static arm's phase 2 repeats phase 1.

Every point is an independent testbed, so the sweep parallelizes across
worker processes (``-j``), byte-identical to serial.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.overload import SATURATION_IOPS
from repro.experiments.runner import SweepPoint, run_points
from repro.metrics.report import Row
from repro.metrics.tenancy import fairness_index, goodput_retention

KB = 1024
MB = 1_000_000
MS = 1_000_000

TENANCY_SYSTEMS = ("Linux", "SPDK", "dRAID")
TENANCY_SERVERS = 8
TENANCY_IO = 64 * KB
#: 64 KiB chunks, matching the saturation-anchor methodology of the
#: overload figure.  Small chunks matter doubly here: tenant volumes are
#: thin slices of the array's address space, and a large chunk would fold
#: a whole volume onto one or two stripes — serializing every I/O of a
#: tenant behind the stripe lock on controllers that lock reads (SPDK).
TENANCY_CHUNK = 64 * KB
#: 90% reads, as in the overload figure the saturation anchors come from
TENANCY_READ_FRACTION = 0.9
#: per-I/O latency budget, as in the overload figure (~2x saturation p99)
TENANCY_DEADLINE_NS = 5 * MS

#: noisy-neighbor scenario: victim and aggressor load as saturation multiples
VICTIM_MULTIPLIER = 0.35
NOISY_MULTIPLIER = 1.6
#: the QoS-on arm's knobs: victim outweighs the aggressor at the fair
#: queue, and the aggressor's token bucket caps its byte rate outright
VICTIM_WEIGHT = 4.0
NOISY_RATE_CAP_MB_S = 2000.0

#: hot-spot scenario: two tenants of this multiplier each saturate a0
HOT_MULTIPLIER = 0.8
STEADY_MULTIPLIER = 0.2
#: small volumes so the live migration completes within phase 1
HOT_VOLUME_BYTES = 4 << 20
BALANCER_INTERVAL_NS = 1 * MS
BALANCER_HIGH_BACKLOG = 24
BALANCER_LOW_BACKLOG = 8
BALANCER_EXTENT_BYTES = 512 * KB


def _qos_config():
    from repro.rack import RackQosConfig

    return RackQosConfig()


def _build_rack(system: str, num_arrays: int, qos: bool):
    from repro.rack import ArraySpec, RackConfig, build_rack

    arrays = [
        ArraySpec(
            system=system,
            servers=TENANCY_SERVERS,
            chunk_bytes=TENANCY_CHUNK,
            name=f"a{i}",
        )
        for i in range(num_arrays)
    ]
    config = RackConfig(arrays=arrays, qos=_qos_config() if qos else None)
    return build_rack(None, config)


def _victim_spec(system: str, qos: bool):
    from repro.workloads import TenantSpec

    return TenantSpec(
        "victim",
        TENANCY_IO,
        VICTIM_MULTIPLIER * SATURATION_IOPS[system],
        volume_bytes=64 << 20,
        read_fraction=TENANCY_READ_FRACTION,
        deadline_ns=TENANCY_DEADLINE_NS,
        weight=VICTIM_WEIGHT if qos else 1.0,
        pin="a0",
    )


def noisy_point(system: str, qos: bool, fast: bool = True) -> Dict:
    """One noisy-neighbor point; returns plain (picklable) metrics.

    Runs the victim solo first (same seeds, same windows, idle rack) to
    anchor the retention metric, then shares the array with the aggressor.
    """
    from repro.workloads import MultiTenantWorkload, TenantSpec

    measure_ns = 10 * MS if fast else 20 * MS

    solo_rack = _build_rack(system, num_arrays=1, qos=qos)
    solo = MultiTenantWorkload(solo_rack, [_victim_spec(system, qos)]).run(
        warmup_ns=2 * MS, measure_ns=measure_ns
    )["victim"]

    rack = _build_rack(system, num_arrays=1, qos=qos)
    shared = MultiTenantWorkload(
        rack,
        [
            _victim_spec(system, qos),
            TenantSpec(
                "noisy",
                TENANCY_IO,
                NOISY_MULTIPLIER * SATURATION_IOPS[system],
                volume_bytes=64 << 20,
                read_fraction=TENANCY_READ_FRACTION,
                deadline_ns=TENANCY_DEADLINE_NS,
                arrival="bursty",
                weight=1.0,
                rate_limit_mb_s=NOISY_RATE_CAP_MB_S if qos else None,
                pin="a0",
            ),
        ],
    ).run(warmup_ns=2 * MS, measure_ns=measure_ns)
    victim, noisy = shared["victim"], shared["noisy"]
    return {
        "system": system,
        "qos": qos,
        "victim_solo_mb_s": solo.goodput_mb_s,
        "victim_goodput_mb_s": victim.goodput_mb_s,
        "victim_retention": goodput_retention(victim.goodput_mb_s, solo.goodput_mb_s),
        "victim_p99_us": victim.latency.p99_ns / 1e3,
        "noisy_goodput_mb_s": noisy.goodput_mb_s,
        "noisy_busy": noisy.busy_rejections,
        "fairness": fairness_index(
            [victim.goodput_mb_s, noisy.goodput_mb_s],
            [VICTIM_WEIGHT, 1.0] if qos else (),
        ),
    }


def hotspot_point(system: str, migrate: bool, fast: bool = True) -> Dict:
    """One hot-spot point; returns plain (picklable) per-phase metrics.

    Both arms run with rack QoS armed (the balancer's pressure signal is
    the fair queue's backlog); only the ``migrate`` arm starts the
    balancer.  Phase 1 is the saturated steady state, phase 2 the world
    after the balancer had its chance to act.
    """
    from repro.rack import HotSpotBalancer
    from repro.workloads import MultiTenantWorkload, TenantSpec

    phase_ns = 10 * MS if fast else 15 * MS
    rack = _build_rack(system, num_arrays=2, qos=True)
    tenants = [
        TenantSpec(
            f"hot{i}",
            TENANCY_IO,
            HOT_MULTIPLIER * SATURATION_IOPS[system],
            volume_bytes=HOT_VOLUME_BYTES,
            read_fraction=TENANCY_READ_FRACTION,
            deadline_ns=TENANCY_DEADLINE_NS,
            pin="a0",
        )
        for i in range(2)
    ] + [
        TenantSpec(
            "steady",
            TENANCY_IO,
            STEADY_MULTIPLIER * SATURATION_IOPS[system],
            volume_bytes=HOT_VOLUME_BYTES,
            read_fraction=TENANCY_READ_FRACTION,
            deadline_ns=TENANCY_DEADLINE_NS,
            pin="a1",
        )
    ]
    workload = MultiTenantWorkload(rack, tenants)
    if migrate:
        HotSpotBalancer(
            rack,
            interval_ns=BALANCER_INTERVAL_NS,
            high_backlog=BALANCER_HIGH_BACKLOG,
            low_backlog=BALANCER_LOW_BACKLOG,
            max_migrations=1,
            extent_bytes=BALANCER_EXTENT_BYTES,
        )
    phases = workload.run_phases(
        [phase_ns, phase_ns], warmup_ns=2 * MS, settle_ns=5 * MS
    )
    result = {"system": system, "migrate": migrate,
              "migrations": len(rack.volumes.migrations)}
    for i in range(2):
        hot = [phases["hot0"][i], phases["hot1"][i]]
        result[f"p{i + 1}_hot_goodput_mb_s"] = sum(r.goodput_mb_s for r in hot)
        result[f"p{i + 1}_hot_p99_us"] = max(r.latency.p99_ns for r in hot) / 1e3
        result[f"p{i + 1}_hot_busy"] = sum(r.busy_rejections for r in hot)
        result[f"p{i + 1}_steady_goodput_mb_s"] = phases["steady"][i].goodput_mb_s
    return result


def tenancy_rows(fast: bool = True, jobs: Optional[int] = None) -> List[Row]:
    """The full figure: isolation points then migration-recovery points."""
    points = [
        SweepPoint(noisy_point, dict(system=system, qos=qos, fast=fast))
        for system in TENANCY_SYSTEMS
        for qos in (False, True)
    ]
    points += [
        SweepPoint(hotspot_point, dict(system=system, migrate=migrate, fast=fast))
        for system in TENANCY_SYSTEMS
        for migrate in (False, True)
    ]
    rows: List[Row] = []
    for result in run_points(points, jobs=jobs):
        if "qos" in result:
            arm = "qos-on" if result["qos"] else "qos-off"
            rows.append(
                Row(
                    x="noisy-neighbor",
                    system=f"{result['system']}-{arm}",
                    metrics={
                        "victim_goodput_mb_s": result["victim_goodput_mb_s"],
                        "victim_retention": result["victim_retention"],
                        "victim_p99_us": result["victim_p99_us"],
                        "noisy_goodput_mb_s": result["noisy_goodput_mb_s"],
                        "noisy_busy": float(result["noisy_busy"]),
                        "fairness": result["fairness"],
                    },
                )
            )
        else:
            arm = "migrate" if result["migrate"] else "static"
            for phase in (1, 2):
                rows.append(
                    Row(
                        x=f"hotspot-p{phase}",
                        system=f"{result['system']}-{arm}",
                        metrics={
                            "hot_goodput_mb_s": result[f"p{phase}_hot_goodput_mb_s"],
                            "hot_p99_us": result[f"p{phase}_hot_p99_us"],
                            "hot_busy": float(result[f"p{phase}_hot_busy"]),
                            "steady_goodput_mb_s": result[
                                f"p{phase}_steady_goodput_mb_s"
                            ],
                            "migrations": float(result["migrations"]),
                        },
                    )
                )
    return rows
