"""Unified deterministic fault injection (§5.4 robustness subsystem).

Compose a :class:`FaultPlan` from typed events (or let :func:`chaos_plan`
roll one from a seed), hand it to a :class:`FaultInjector`, and run the
simulation: drives die, slow down and spew transient errors, NICs flap,
RDMA connections stall, storage servers crash losing in-flight parity
state — all on the sim clock, bit-identically replayable.

The chaos harness lives in :mod:`repro.faults.chaos` (imported lazily to
keep this package free of controller dependencies).
"""

from repro.faults.backoff import BackoffPolicy
from repro.faults.detect import FailSlowDetector
from repro.faults.domains import (
    DOMAIN_KINDS,
    DomainTopology,
    FailureDomain,
    default_topology,
)
from repro.faults.events import (
    BatchFailureStorm,
    BitRot,
    DomainOutage,
    DriveErrorBurst,
    DriveFail,
    DriveFailSlow,
    DriveHeal,
    FaultEvent,
    GrayDriveStutter,
    GrayNicFlap,
    LinkStall,
    LostWrite,
    MisdirectedWrite,
    NetJitter,
    NicDegrade,
    ServerCrash,
    TornWrite,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, chaos_plan

__all__ = [
    "BackoffPolicy",
    "BatchFailureStorm",
    "BitRot",
    "DOMAIN_KINDS",
    "DomainOutage",
    "DomainTopology",
    "DriveErrorBurst",
    "DriveFail",
    "DriveFailSlow",
    "DriveHeal",
    "FailSlowDetector",
    "FailureDomain",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GrayDriveStutter",
    "GrayNicFlap",
    "LinkStall",
    "LostWrite",
    "MisdirectedWrite",
    "NetJitter",
    "NicDegrade",
    "ServerCrash",
    "TornWrite",
    "chaos_plan",
    "default_topology",
]
