"""Unified deterministic fault injection (§5.4 robustness subsystem).

Compose a :class:`FaultPlan` from typed events (or let :func:`chaos_plan`
roll one from a seed), hand it to a :class:`FaultInjector`, and run the
simulation: drives die, slow down and spew transient errors, NICs flap,
RDMA connections stall, storage servers crash losing in-flight parity
state — all on the sim clock, bit-identically replayable.

The chaos harness lives in :mod:`repro.faults.chaos` (imported lazily to
keep this package free of controller dependencies).
"""

from repro.faults.backoff import BackoffPolicy
from repro.faults.detect import FailSlowDetector
from repro.faults.events import (
    BitRot,
    DriveErrorBurst,
    DriveFail,
    DriveFailSlow,
    DriveHeal,
    FaultEvent,
    LinkStall,
    LostWrite,
    MisdirectedWrite,
    NetJitter,
    NicDegrade,
    ServerCrash,
    TornWrite,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, chaos_plan

__all__ = [
    "BackoffPolicy",
    "BitRot",
    "DriveErrorBurst",
    "DriveFail",
    "DriveFailSlow",
    "DriveHeal",
    "FailSlowDetector",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkStall",
    "LostWrite",
    "MisdirectedWrite",
    "NetJitter",
    "NicDegrade",
    "ServerCrash",
    "TornWrite",
    "chaos_plan",
]
