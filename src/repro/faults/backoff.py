"""Adaptive timeout / retry backoff policy (§5.4 hardening).

Timeouts escalate exponentially per attempt so a retry is given more slack
than the attempt it replaces; retry delays use exponential backoff with
deterministic, seeded jitter (full-jitter style, but driven by a
``random.Random`` stream owned by the array so replays are bit-identical).
"""

from __future__ import annotations

import random
from typing import Optional


class BackoffPolicy:
    """Per-array retry/backoff policy.

    ``timeout_for(attempt)`` — timeout for attempt N (0-based); doubles
    each attempt starting from the array's base timeout.  When the request
    carries a deadline, pass its *remaining* budget as ``remaining_ns``:
    the attempt timeout is clamped to it, so cumulative attempt timeouts
    are charged against the request deadline instead of every retry
    getting a fresh full timeout.

    ``backoff_ns(attempt, rng)`` — sleep before launching attempt N >= 1:
    ``base * 2**(attempt-1)`` plus up to 50% seeded jitter.
    """

    def __init__(
        self,
        base_timeout_ns: int,
        base_backoff_ns: int = 2_000_000,
        multiplier: float = 2.0,
        max_timeout_ns: int = 1_000_000_000,
    ) -> None:
        if base_timeout_ns <= 0:
            raise ValueError(f"base timeout must be positive, got {base_timeout_ns}")
        self.base_timeout_ns = int(base_timeout_ns)
        self.base_backoff_ns = int(base_backoff_ns)
        self.multiplier = float(multiplier)
        self.max_timeout_ns = int(max_timeout_ns)

    def timeout_for(
        self,
        attempt: int,
        base_ns: Optional[int] = None,
        remaining_ns: Optional[int] = None,
    ) -> int:
        base = self.base_timeout_ns if base_ns is None else base_ns
        timeout = base * self.multiplier ** attempt
        timeout = int(min(timeout, self.max_timeout_ns))
        if remaining_ns is not None:
            timeout = min(timeout, max(0, remaining_ns))
        return timeout

    def backoff_ns(self, attempt: int, rng: random.Random) -> int:
        if attempt <= 0:
            return 0
        base = self.base_backoff_ns * self.multiplier ** (attempt - 1)
        jitter = rng.random() * 0.5 * base
        return int(base + jitter)
