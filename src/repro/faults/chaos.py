"""Chaos schedules: seeded fault storms with model-checked verification.

:func:`run_chaos_schedule` builds a small functional-mode array, arms a
:class:`~repro.faults.injector.FaultInjector` with a :func:`chaos_plan`,
drives a seeded workload *through* the fault storm, then runs the
recovery playbook a production operator would (heal, rebuild, resync)
and verifies the end state:

* every byte the workload successfully wrote reads back exactly;
* stripes torn by terminal ``IoError`` (the §5.4 write hole) are
  resynchronized and their bytes adopted — self-consistent, not lost;
* a full parity scrub comes back clean.

Everything — fault times, workload offsets, retry backoff — keys off the
seed and the sim clock, so the same ``(system, seed)`` replays
bit-identically whether schedules run serially or in parallel worker
processes.  The CI golden file and the determinism-guard test rely on
exactly that.

The module lives under ``src`` (not ``tests``) so the experiments
runner and the CI smoke script can import it; it is deliberately *not*
re-exported from :mod:`repro.faults` to keep controller imports lazy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, chaos_plan

KB = 1024
MS = 1_000_000

#: Chaos runs want fast failure detection; production default is 50 ms.
CHAOS_TIMEOUT_NS = 2 * MS


def _make_controller(system: str, cluster, geometry, code: Optional[str] = None,
                     local_groups: int = 1):
    """Lazy controller factory (keeps repro.faults free of heavy imports).

    ``code`` selects the erasure-code axis: ``None`` is the historic
    RAID-5/6 path, ``"rs"``/``"lrc"`` run the §7 generalized arrays over
    an :class:`~repro.draid.ec_array.EcGeometry` (dRAID controllers
    only).  ``system`` additionally accepts ``"draid-st"``, the
    stateless-target controller variant.
    """
    if code is not None:
        if code == "rs":
            if system == "draid":
                from repro.draid.ec_array import EcDraidArray

                return EcDraidArray(cluster, geometry)
            if system == "draid-st":
                from repro.draid.stateless import StatelessTargetEcDraid

                return StatelessTargetEcDraid(cluster, geometry)
        elif code == "lrc":
            if system == "draid":
                from repro.draid.ec_array import LrcDraidArray

                return LrcDraidArray(cluster, geometry, local_groups=local_groups)
            if system == "draid-st":
                from repro.draid.stateless import StatelessTargetLrcDraid

                return StatelessTargetLrcDraid(
                    cluster, geometry, local_groups=local_groups
                )
        raise ValueError(f"code {code!r} does not run on system {system!r}")
    if system == "md":
        from repro.baselines.mdraid import MdRaid

        return MdRaid(cluster, geometry)
    if system == "spdk":
        from repro.baselines.spdkraid import SpdkRaid

        return SpdkRaid(cluster, geometry)
    if system == "draid":
        from repro.draid.host import DraidArray

        return DraidArray(cluster, geometry)
    if system == "draid-st":
        from repro.draid.stateless import StatelessTargetDraid

        return StatelessTargetDraid(cluster, geometry)
    raise ValueError(f"unknown chaos system {system!r}")


CHAOS_SYSTEMS = ("md", "spdk", "draid")


@dataclass(frozen=True)
class ChaosOutcome:
    """Picklable result of one chaos schedule (one parallel-sweep row)."""

    system: str
    seed: int
    plan_events: int
    applied: int
    ops: int
    op_errors: int  #: workload ops that ended in terminal IoError
    torn_stripes: int  #: stripes repaired by the recovery resync
    rebuilds: int  #: rebuild jobs run (injector heals + recovery)
    verified: bool  #: every non-torn byte matched the shadow model
    scrub_clean: bool  #: post-recovery parity scrub found nothing
    data_sha256: str  #: digest of the final virtual-device image
    fault_summary: str  #: ``FaultStats.summary()`` of the array
    # silent-corruption accounting (defaults keep pre-integrity pickles
    # and call sites working; all zero when the schedule had no corruption)
    corruption_events: int = 0  #: corruption events in the plan
    detected: int = 0  #: corruption-detection episodes (checksum mismatches)
    repaired: int = 0  #: chunks repaired from parity across all episodes
    #: chunks *still* failing checksum verification after the full
    #: recovery playbook — genuine silent data loss (must be 0).  Transient
    #: beyond-parity read errors during the storm are episode telemetry in
    #: ``integrity_summary``, not data loss: the member heals and the
    #: scrub-repair passes cure the chunk.
    unrecoverable: int = 0
    integrity_summary: str = ""  #: ``IntegrityStats.summary()`` of the array

    @property
    def ok(self) -> bool:
        return self.verified and self.scrub_clean and self.unrecoverable == 0

    def row(self) -> str:
        """One deterministic log/golden line."""
        return (
            f"{self.system:>5s} seed={self.seed:<4d} events={self.applied} "
            f"ops={self.ops} errors={self.op_errors} torn={self.torn_stripes} "
            f"rebuilds={self.rebuilds} scrub={'clean' if self.scrub_clean else 'DIRTY'} "
            f"verified={'yes' if self.verified else 'NO'} "
            f"sha={self.data_sha256[:12]}"
        )

    def integrity_row(self) -> str:
        """One deterministic corruption-accounting line (integrity golden)."""
        return (
            f"{self.system:>5s} seed={self.seed:<4d} corrupt={self.corruption_events} "
            f"detected={self.detected} repaired={self.repaired} "
            f"unrecoverable={self.unrecoverable} "
            f"scrub={'clean' if self.scrub_clean else 'DIRTY'} "
            f"verified={'yes' if self.verified else 'NO'} "
            f"sha={self.data_sha256[:12]}"
        )


def run_chaos_schedule(
    system: str,
    seed: int,
    drives: int = 5,
    stripes: int = 12,
    chunk: int = 16 * KB,
    ops: int = 18,
    horizon_ns: int = 60 * MS,
    timeout_ns: int = CHAOS_TIMEOUT_NS,
    plan: Optional[FaultPlan] = None,
    corruption_events: int = 0,
    scrub_pace_ns: Optional[int] = None,
    integrity_eager: bool = False,
    raid6: bool = False,
    correlated_events: int = 0,
    gray_events: int = 0,
    layout: Optional[str] = None,
    layout_seed: int = 0,
    code: Optional[str] = None,
    ec_parity: int = 2,
    local_groups: int = 1,
) -> ChaosOutcome:
    """Run one seeded fault storm against ``system`` and verify recovery.

    ``corruption_events > 0`` adds silent-corruption events (bit rot,
    lost / torn / misdirected writes) to the generated plan and arms the
    cluster's :class:`~repro.storage.integrity.IntegrityStore`, so every
    read verifies checksums and repairs from parity.  ``scrub_pace_ns``
    additionally runs an online :class:`~repro.raid.scrubber.ScrubDaemon`
    *during* the storm at that pace.  The recovery playbook then gains
    scrub-repair passes so the schedule must end with zero unrecoverable
    chunks, a clean parity scrub and byte-exact shadow-model data.

    ``correlated_events > 0`` adds domain-shaped hard faults (enclosure
    outages, shared-batch failure storms) budgeted against the array's
    parity, and ``gray_events > 0`` adds sub-ejection-threshold NIC flaps
    and drive stutters; both attach the default
    :class:`~repro.faults.domains.DomainTopology` to the cluster config so
    the injector resolves domains exactly as the plan budgeted them.
    ``raid6=True`` runs the schedule on a RAID-6 geometry (required for
    multi-member correlated storms — RAID-5 has no budget for them).

    The design-space axes: ``layout`` picks a registered stripe layout
    (``None``/``"rotating"`` is the stock rotation, ``"declustered"``
    the seeded distributed-spare organization keyed by ``layout_seed``),
    ``code`` swaps the RAID-5/6 parity math for a generalized erasure
    code (``"rs"``/``"lrc"`` with ``ec_parity`` parities, LRC splitting
    them into ``local_groups`` local + rest global), and ``system``
    additionally accepts ``"draid-st"``, the stateless-target controller.
    The fault budget follows the *code's* tolerance (``g`` for LRC, not
    the parity count).  All defaults keep existing ``(system, seed)``
    outcomes byte-identical.
    """
    import random

    from repro.cluster import ClusterConfig, build_cluster
    from repro.faults.events import BitRot, LostWrite, MisdirectedWrite, TornWrite
    from repro.nvmeof.messages import IoError
    from repro.raid.geometry import RaidGeometry, RaidLevel
    from repro.raid.rebuild import RebuildJob
    from repro.raid.resync import resync_stripes
    from repro.raid.scrub import scrub_array
    from repro.raid.scrubber import ScrubDaemon
    from repro.sim import Environment
    from repro.storage.integrity import ChecksumError, IntegrityStore

    env = Environment()
    config = ClusterConfig(
        num_servers=drives,
        functional_capacity=stripes * chunk,
        io_timeout_ns=timeout_ns,
    )
    if correlated_events or gray_events:
        from repro.faults.domains import default_topology

        config.domains = default_topology(drives)
    cluster = build_cluster(env, config)
    level = RaidLevel.RAID6 if raid6 else RaidLevel.RAID5
    if code is not None and raid6:
        raise ValueError("raid6 and an explicit erasure code are exclusive")
    parity_count = ec_parity if code is not None else level.num_parity
    layout_obj = None
    if layout is not None and layout != "rotating":
        from repro.raid.layout import make_layout

        layout_obj = make_layout(layout, drives, parity_count, seed=layout_seed)
    if code is not None:
        from repro.draid.ec_array import EcGeometry

        geometry = EcGeometry(drives, chunk, parity_count, layout=layout_obj)
    else:
        geometry = RaidGeometry(level, drives, chunk, layout=layout_obj)
    # the hard-fault budget follows the code's tolerance, not parity count
    tolerance = (
        parity_count - local_groups if code == "lrc" else geometry.num_parity
    )
    if plan is None:
        plan = chaos_plan(
            seed,
            horizon_ns,
            drives,
            tolerance,
            corruption_events=corruption_events,
            chunk_bytes=chunk,
            num_stripes=stripes,
            correlated_events=correlated_events,
            gray_events=gray_events,
            topology=config.domains,
        )
    n_corrupt = sum(
        1
        for e in plan
        if isinstance(e, (BitRot, LostWrite, MisdirectedWrite, TornWrite))
    )
    if n_corrupt or scrub_pace_ns is not None:
        IntegrityStore(chunk, eager=integrity_eager).attach(cluster)
    array = _make_controller(
        system, cluster, geometry, code=code, local_groups=local_groups
    )
    injector = FaultInjector(array, plan, num_stripes=stripes)
    daemon = (
        ScrubDaemon(array, stripes, pace_ns=scrub_pace_ns, repeat=True)
        if scrub_pace_ns is not None
        else None
    )

    def scrub_repair_pass() -> None:
        """One paced-at-zero offline-style pass through the online scrubber."""
        env.run(until=ScrubDaemon(array, stripes, pace_ns=0).process)

    capacity = stripes * geometry.stripe_data_bytes
    model = np.zeros(capacity, dtype=np.uint8)
    rng = random.Random(f"repro.chaos:{system}:{seed}")
    stripe_bytes = geometry.stripe_data_bytes

    torn: Set[int] = set()
    #: members in discovery order — recovery rebuilds the earliest failures
    #: (most stale) and, past redundancy, heals the latest in place
    fail_order: List[int] = []
    op_errors = 0

    def note_failures() -> None:
        for member in sorted(array.failed):
            if member not in fail_order:
                fail_order.append(member)

    def stripes_of(offset: int, nbytes: int) -> Set[int]:
        return set(range(offset // stripe_bytes, (offset + nbytes - 1) // stripe_bytes + 1))

    # -- the storm: a paced, model-checked workload under injection --------
    for _ in range(ops):
        gap = rng.randint(horizon_ns // (2 * ops), (3 * horizon_ns) // (2 * ops))
        env.run(until=env.now + gap)
        size = rng.randint(1, 3 * stripe_bytes)
        offset = rng.randrange(0, capacity - size)
        is_read = rng.random() < 0.35
        try:
            if is_read:
                data = env.run(until=array.read(offset, size))
                if not stripes_of(offset, size) & torn:
                    assert np.array_equal(
                        data, model[offset : offset + size]
                    ), f"{system} seed {seed}: read mismatch at {offset}+{size}"
            else:
                payload = np.frombuffer(
                    rng.randbytes(size), dtype=np.uint8
                ).copy()
                env.run(until=array.write(offset, size, payload))
                model[offset : offset + size] = payload
        except (IoError, ChecksumError):
            op_errors += 1
            if not is_read:
                # terminal write failure: the touched stripes may hold a
                # torn mix of old and new data (§5.4 write hole)
                torn |= stripes_of(offset, size)
        note_failures()

    # -- recovery playbook -------------------------------------------------
    # 1. let the plan and its helpers (heals, restores) run out ...
    env.run(until=injector.drain())
    # ... and outlast every self-clearing window (fail-slow, bursts, NIC)
    env.run(until=max(env.now, plan.horizon_ns) + 60 * MS)
    note_failures()
    if daemon is not None:
        daemon.stop()

    # 2. replace failed members.  Past redundancy nothing is reconstructable,
    #    so the *latest* casualties (stale only on torn stripes, which are
    #    adopted anyway) rejoin in place; the rest get a real rebuild.
    #    With integrity armed, *every* casualty rejoins in place: a degraded
    #    rebuild read of a stripe that also carries a corrupt chunk is two
    #    erasures — the classic unrecoverable-during-rebuild loss — so the
    #    playbook restores full redundancy first and lets the resync +
    #    scrub-repair passes below re-verify everything.
    still_failed = [m for m in fail_order if m in array.failed]
    while still_failed and (
        array.integrity is not None or len(still_failed) > tolerance
    ):
        member = still_failed.pop()
        cluster.servers[member].drive.heal()
        array.repair_drive(member)
        torn |= set(range(stripes))  # conservative: trust nothing unverified
    rebuilds = injector.rebuilds
    for member in still_failed:
        job = RebuildJob(array, member, stripes)
        env.run(until=job.start())
        rebuilds += 1

    # 2.5 with integrity armed: a scrub-repair pass cures surviving
    #     corruption (notably on parity chunks, which foreground reads
    #     never verify) before the resync below re-reads those stripes
    if array.integrity is not None:
        scrub_repair_pass()

    # 3. resync torn stripes: full-stripe rewrite regenerates parity
    for stripe in sorted(torn):
        try:
            env.run(until=resync_stripes(array, [stripe]))
        except ChecksumError:
            # corruption beyond parity on a torn stripe: nothing is
            # reconstructable (the scrub pass above already recorded the
            # unrecoverable episode), so — as with stale rejoins in step
            # 2 — the surviving bytes become the stripe's truth.  Read
            # them unarmed and regenerate parity with a full-stripe
            # rewrite; the drives still record the write, so the store
            # re-trusts the adopted content and clears its poison.
            offset = stripe * stripe_bytes
            saved, cluster.integrity = cluster.integrity, None
            try:
                data = env.run(until=array.read(offset, stripe_bytes))
                env.run(until=array.write(offset, stripe_bytes, data))
            finally:
                cluster.integrity = saved

    # 4. adopt the (self-consistent) surviving bytes of torn stripes
    for stripe in sorted(torn):
        offset = stripe * stripe_bytes
        data = env.run(until=array.read(offset, stripe_bytes))
        model[offset : offset + stripe_bytes] = data

    # 4.5 a final scrub-repair pass: recovery writes may themselves have
    #     tripped still-armed corruption events
    if array.integrity is not None:
        scrub_repair_pass()

    # -- verification ------------------------------------------------------
    try:
        final = env.run(until=array.read(0, capacity))
        verified = bool(np.array_equal(final, model))
    except ChecksumError:
        # corruption beyond repair: grab the raw (corrupt) image unarmed
        # so the digest still reflects the end state
        saved, cluster.integrity = cluster.integrity, None
        final = env.run(until=array.read(0, capacity))
        cluster.integrity = saved
        verified = False
    report = scrub_array(
        cluster.drives(), geometry, stripes, code=getattr(array, "code", None)
    )
    istats = array.integrity_stats
    store = array.integrity
    residual_bad = (
        sum(
            1
            for drv in cluster.drives()
            for c in range(stripes)
            if not store.chunk_ok(drv, c)
        )
        if store is not None
        else 0
    )
    return ChaosOutcome(
        system=system,
        seed=seed,
        plan_events=len(plan),
        applied=injector.applied,
        ops=ops,
        op_errors=op_errors,
        torn_stripes=len(torn),
        rebuilds=rebuilds,
        verified=verified,
        scrub_clean=report.clean,
        data_sha256=hashlib.sha256(np.ascontiguousarray(final).tobytes()).hexdigest(),
        fault_summary=array.fault_stats.summary(),
        corruption_events=n_corrupt,
        detected=istats.total_detected,
        repaired=istats.total_repaired,
        unrecoverable=residual_bad,
        integrity_summary=istats.summary() if store is not None else "",
    )
