"""EWMA-based fail-slow detection (§5.4 proactive degraded transitions).

A fail-slow drive does not error — it answers, slowly, and drags every
stripe operation it participates in down to its speed.  The detector keeps
an exponentially-weighted moving average of per-member completion latency
sampled at the host; a member whose EWMA exceeds ``ratio`` × the median of
its peers (and an absolute floor) is *ejected*: transitioned to degraded
mode so reads reconstruct around it instead of waiting on it.

Opt-in (``DraidArray(..., failslow_detector=...)``): detection changes
the datapath, so arrays built for the paper's healthy-path figures never
construct one.
"""

from __future__ import annotations

from typing import Dict, Optional


class FailSlowDetector:
    """Per-array EWMA latency comparator."""

    def __init__(
        self,
        alpha: float = 0.2,
        ratio: float = 3.0,
        floor_ns: int = 1_000_000,
        min_samples: int = 8,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if ratio <= 1.0:
            raise ValueError(f"ratio must exceed 1, got {ratio}")
        self.alpha = alpha
        self.ratio = ratio
        self.floor_ns = int(floor_ns)
        self.min_samples = int(min_samples)
        self.ewma_ns: Dict[int, float] = {}
        self.samples: Dict[int, int] = {}

    def observe(self, member: int, latency_ns: int) -> None:
        """Fold one completion latency into ``member``'s EWMA."""
        previous = self.ewma_ns.get(member)
        if previous is None:
            self.ewma_ns[member] = float(latency_ns)
        else:
            self.ewma_ns[member] = (
                self.alpha * latency_ns + (1.0 - self.alpha) * previous
            )
        self.samples[member] = self.samples.get(member, 0) + 1

    def suspect(self, member: int, exclude=()) -> bool:
        """Whether ``member`` is fail-slow relative to its peers."""
        if self.samples.get(member, 0) < self.min_samples:
            return False
        own = self.ewma_ns[member]
        if own < self.floor_ns:
            return False
        peers = sorted(
            value
            for index, value in self.ewma_ns.items()
            if index != member and index not in exclude
        )
        if len(peers) < 2:
            return False
        median = peers[len(peers) // 2]
        return own > self.ratio * max(median, 1.0)

    def forget(self, member: int) -> None:
        """Drop ``member``'s history (after heal/rebuild)."""
        self.ewma_ns.pop(member, None)
        self.samples.pop(member, None)

    def ewma_us(self, member: int) -> Optional[float]:
        value = self.ewma_ns.get(member)
        return None if value is None else value / 1_000.0
