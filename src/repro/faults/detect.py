"""EWMA-based fail-slow detection (§5.4 proactive degraded transitions).

A fail-slow drive does not error — it answers, slowly, and drags every
stripe operation it participates in down to its speed.  The detector keeps
an exponentially-weighted moving average of per-member completion latency
sampled at the host; a member whose EWMA exceeds ``ratio`` × the median of
its peers (and an absolute floor) is *ejected*: transitioned to degraded
mode so reads reconstruct around it instead of waiting on it.

Ejection and re-admission are separated by a **hysteresis band**: a member
is ejected when its EWMA crosses ``ratio`` × median but only re-admitted
once it has stayed below the lower ``exit_ratio`` × median bound *and* a
``cooldown_ns`` dwell has elapsed since the ejection (and, symmetrically,
a freshly re-admitted member cannot be re-ejected until the same dwell has
passed).  Without the band, a gray drive oscillating around the threshold
flaps in and out of rotation, paying the degraded-transition cost on every
swing; with it, each episode costs at most one eject/re-admit cycle.

Opt-in (``DraidArray(..., failslow_detector=...)``): detection changes
the datapath, so arrays built for the paper's healthy-path figures never
construct one.
"""

from __future__ import annotations

from typing import Dict, Optional


class FailSlowDetector:
    """Per-array EWMA latency comparator with eject/re-admit hysteresis."""

    def __init__(
        self,
        alpha: float = 0.2,
        ratio: float = 3.0,
        floor_ns: int = 1_000_000,
        min_samples: int = 8,
        exit_ratio: float = 1.5,
        cooldown_ns: int = 10_000_000,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if ratio <= 1.0:
            raise ValueError(f"ratio must exceed 1, got {ratio}")
        if not 1.0 <= exit_ratio <= ratio:
            raise ValueError(
                f"exit_ratio must sit inside [1, ratio={ratio}], got {exit_ratio}"
            )
        if cooldown_ns < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown_ns}")
        self.alpha = alpha
        self.ratio = ratio
        self.floor_ns = int(floor_ns)
        self.min_samples = int(min_samples)
        self.exit_ratio = exit_ratio
        self.cooldown_ns = int(cooldown_ns)
        self.ewma_ns: Dict[int, float] = {}
        self.samples: Dict[int, int] = {}
        #: member -> sim time of its last ejection (dwell gate for re-admit)
        self.ejected_at: Dict[int, int] = {}
        #: member -> sim time of its last re-admission (dwell gate for re-eject)
        self.readmitted_at: Dict[int, int] = {}
        #: member -> cumulative ejection episodes (flapping telemetry)
        self.ejections: Dict[int, int] = {}

    def observe(self, member: int, latency_ns: int) -> None:
        """Fold one completion latency into ``member``'s EWMA."""
        previous = self.ewma_ns.get(member)
        if previous is None:
            self.ewma_ns[member] = float(latency_ns)
        else:
            self.ewma_ns[member] = (
                self.alpha * latency_ns + (1.0 - self.alpha) * previous
            )
        self.samples[member] = self.samples.get(member, 0) + 1

    def suspect(self, member: int, exclude=(), now_ns: Optional[int] = None) -> bool:
        """Whether ``member`` is fail-slow relative to its peers.

        When the caller supplies ``now_ns``, a member re-admitted less
        than ``cooldown_ns`` ago is never suspected — the upper half of
        the hysteresis band.  (Callers that never re-admit see the exact
        pre-hysteresis behavior.)
        """
        if now_ns is not None:
            readmitted = self.readmitted_at.get(member)
            if readmitted is not None and now_ns - readmitted < self.cooldown_ns:
                return False
        if self.samples.get(member, 0) < self.min_samples:
            return False
        own = self.ewma_ns[member]
        if own < self.floor_ns:
            return False
        peers = sorted(
            value
            for index, value in self.ewma_ns.items()
            if index != member and index not in exclude
        )
        if len(peers) < 2:
            return False
        median = peers[len(peers) // 2]
        return own > self.ratio * max(median, 1.0)

    def recovered(self, member: int, now_ns: int, exclude=()) -> bool:
        """Whether an ejected ``member`` may re-enter rotation.

        The lower half of the hysteresis band: requires the ejection
        dwell (``cooldown_ns``) to have elapsed, ``min_samples`` fresh
        (post-ejection) probe observations, and an EWMA at or below
        ``exit_ratio`` × the peer median — strictly tighter than the
        ``ratio`` × median ejection bound, so a member oscillating
        between the two stays out instead of flapping.
        """
        ejected = self.ejected_at.get(member)
        if ejected is not None and now_ns - ejected < self.cooldown_ns:
            return False
        if self.samples.get(member, 0) < self.min_samples:
            return False
        own = self.ewma_ns[member]
        if own < self.floor_ns:
            return True
        peers = sorted(
            value
            for index, value in self.ewma_ns.items()
            if index != member and index not in exclude
        )
        if len(peers) < 2:
            return False
        median = peers[len(peers) // 2]
        return own <= self.exit_ratio * max(median, 1.0)

    def note_eject(self, member: int, now_ns: int) -> None:
        """Record an ejection: starts the re-admit dwell, bumps the
        flapping counter and drops the member's (pre-ejection) history so
        re-admission requires fresh probe samples."""
        self.ejected_at[member] = now_ns
        self.ejections[member] = self.ejections.get(member, 0) + 1
        self.ewma_ns.pop(member, None)
        self.samples.pop(member, None)

    def note_readmit(self, member: int, now_ns: int) -> None:
        """Record a re-admission: starts the re-eject dwell."""
        self.readmitted_at[member] = now_ns
        self.ejected_at.pop(member, None)

    def flap_count(self, member: int) -> int:
        """How many ejection episodes ``member`` has been through."""
        return self.ejections.get(member, 0)

    def forget(self, member: int) -> None:
        """Drop ``member``'s latency history (after heal/rebuild).

        Eject/re-admit dwell bookkeeping survives: a member that was just
        ejected does not dodge its cooldown by being rebuilt.
        """
        self.ewma_ns.pop(member, None)
        self.samples.pop(member, None)

    def ewma_us(self, member: int) -> Optional[float]:
        value = self.ewma_ns.get(member)
        return None if value is None else value / 1_000.0
