"""Failure-domain topology: faults with a *shape* (correlated failures).

Real datacenter arrays rarely die to independent drive faults: members
share enclosures, servers share racks, racks share power feeds, and
drives from one manufacturing batch share latent defects.  A
:class:`DomainTopology` maps each array member onto those nested blast
radii so that correlated fault events (:class:`~repro.faults.events.DomainOutage`,
:class:`~repro.faults.events.BatchFailureStorm`) and the domain-aware
:func:`~repro.faults.plan.chaos_plan` budget can reason about *sets* of
members failing together instead of one drive at a time.

The topology is pure bookkeeping: attaching one to a
:class:`~repro.cluster.ClusterConfig` changes nothing about the
simulated datapath until a fault event actually references a domain, so
configs without correlated events stay byte-identical to the committed
goldens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: The nesting order of blast radii, smallest to largest.  ``batch`` is
#: orthogonal (a manufacturing cohort, not a physical enclosure) but is
#: treated as one more way a set of drives can fail together.
DOMAIN_KINDS: Tuple[str, ...] = ("enclosure", "rack", "power", "batch")


@dataclass(frozen=True)
class FailureDomain:
    """One named blast radius: ``kind`` (see :data:`DOMAIN_KINDS`),
    ``domain_id`` within that kind, and the member servers it contains."""

    kind: str
    domain_id: int
    members: Tuple[int, ...]

    def __str__(self) -> str:  # deterministic, golden-friendly
        return f"{self.kind}{self.domain_id}[{','.join(map(str, self.members))}]"


class DomainTopology:
    """Maps every member server onto its enclosure / rack / power / batch.

    Construction is deterministic: members are assigned to domains by
    integer division (enclosures are consecutive member runs, racks are
    consecutive enclosure runs, ...) and batches by a seeded shuffle, so
    the same parameters always produce the same topology — the property
    the chaos goldens and the availability Monte Carlo rely on.
    """

    def __init__(
        self,
        num_servers: int,
        servers_per_enclosure: int = 2,
        enclosures_per_rack: int = 2,
        racks_per_power: int = 2,
        batches: int = 2,
        batch_seed: int = 0,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"need at least one server, got {num_servers}")
        if min(servers_per_enclosure, enclosures_per_rack, racks_per_power) < 1:
            raise ValueError("domain sizes must be >= 1")
        if batches < 1:
            raise ValueError(f"need at least one batch, got {batches}")
        self.num_servers = num_servers
        self.servers_per_enclosure = servers_per_enclosure
        self.enclosures_per_rack = enclosures_per_rack
        self.racks_per_power = racks_per_power
        self._of: Dict[str, List[int]] = {}
        enclosure = [s // servers_per_enclosure for s in range(num_servers)]
        rack = [e // enclosures_per_rack for e in enclosure]
        power = [r // racks_per_power for r in rack]
        # batch membership is a seeded round-robin over a shuffled order:
        # drives from one batch end up scattered across enclosures, the
        # way a real delivery pallet does
        import random

        order = list(range(num_servers))
        random.Random(f"repro.faults.domains:batch:{batch_seed}").shuffle(order)
        batch = [0] * num_servers
        for position, server in enumerate(order):
            batch[server] = position % batches
        self._of = {
            "enclosure": enclosure,
            "rack": rack,
            "power": power,
            "batch": batch,
        }

    # -- queries -----------------------------------------------------------

    def domain_of(self, kind: str, server: int) -> int:
        """The ``kind`` domain id that ``server`` belongs to."""
        return self._assignments(kind)[server]

    def members(self, kind: str, domain_id: int) -> Tuple[int, ...]:
        """All member servers inside one domain, ascending."""
        assignments = self._assignments(kind)
        return tuple(s for s, d in enumerate(assignments) if d == domain_id)

    def domains(self, kind: str) -> Tuple[int, ...]:
        """All domain ids of ``kind`` that have at least one member."""
        return tuple(sorted(set(self._assignments(kind))))

    def all_domains(self) -> List[FailureDomain]:
        """Every non-empty domain of every kind (deterministic order)."""
        return [
            FailureDomain(kind, domain_id, self.members(kind, domain_id))
            for kind in DOMAIN_KINDS
            for domain_id in self.domains(kind)
        ]

    def describe(self) -> str:
        """Deterministic multi-line rendering (for logs and tests)."""
        return "\n".join(str(d) for d in self.all_domains())

    def _assignments(self, kind: str) -> List[int]:
        try:
            return self._of[kind]
        except KeyError:
            raise ValueError(
                f"unknown domain kind {kind!r}; known: {DOMAIN_KINDS}"
            ) from None


def batch_storm_victims(topology: DomainTopology, event) -> List[Tuple[int, int]]:
    """The ``(victim, fail_at_ns)`` timeline of one
    :class:`~repro.faults.events.BatchFailureStorm`.

    Shared by the injector (to apply the storm) and the chaos-plan
    generator (to budget it and schedule heals), so both always agree on
    who dies when.  Deterministic in ``event.seed``.
    """
    import random

    rng = random.Random(f"repro.faults.batch:{event.seed}")
    members = list(topology.members("batch", event.batch_id))
    count = min(event.count, len(members))
    victims = sorted(rng.sample(members, count))
    # one hazard draw per victim; sorted so the storm unfolds in order
    delays = sorted(
        int(event.spread_ns * rng.weibullvariate(1.0, max(event.shape, 1e-9)))
        for _ in range(count)
    )
    return [(victim, event.at_ns + delay) for victim, delay in zip(victims, delays)]


def default_topology(num_servers: int, batch_seed: int = 0) -> DomainTopology:
    """The default blast-radius shape for an ``num_servers``-member array:
    2 drives per enclosure, 2 enclosures per rack, 2 racks per power feed,
    2 manufacturing batches."""
    return DomainTopology(num_servers, batch_seed=batch_seed)
