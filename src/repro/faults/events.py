"""Typed fault events (the vocabulary of a :class:`~repro.faults.FaultPlan`).

Every event is a frozen dataclass with an absolute injection time
``at_ns`` on the simulation clock.  Determinism contract: an event's
effect depends only on sim time and the event's own fields — never on
wall-clock time or global RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something happens at sim time ``at_ns``."""

    at_ns: int

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class DriveFail(FaultEvent):
    """Hard-fail member ``server`` (binary death, §5.4 prolonged failure)."""

    server: int


@dataclass(frozen=True)
class DriveHeal(FaultEvent):
    """Heal/replace member ``server``.

    If the array still considers the member failed, the injector runs an
    online rebuild (:mod:`repro.raid.rebuild`) so the replacement is
    reconstructed; otherwise the physical drive is simply healed.
    """

    server: int


@dataclass(frozen=True)
class DriveErrorBurst(FaultEvent):
    """Transient media errors on ``server`` for ``duration_ns``."""

    server: int
    duration_ns: int


@dataclass(frozen=True)
class DriveFailSlow(FaultEvent):
    """Fail-slow: multiply ``server``'s latency by ``multiplier``.

    ``duration_ns = 0`` means until healed/cleared.
    """

    server: int
    multiplier: float
    duration_ns: int = 0


@dataclass(frozen=True)
class NicDegrade(FaultEvent):
    """Degrade ``server``'s primary NIC to ``factor`` × its base rate for
    ``duration_ns`` (a flap is a short, deep degradation)."""

    server: int
    factor: float
    duration_ns: int


@dataclass(frozen=True)
class LinkStall(FaultEvent):
    """Stall the host <-> ``server`` RDMA connection for ``duration_ns``
    (retransmit storm / PFC pause: completions freeze, nothing is lost)."""

    server: int
    duration_ns: int


@dataclass(frozen=True)
class NetJitter(FaultEvent):
    """Add seeded random per-transfer jitter of up to ``jitter_ns`` to the
    whole fabric for ``duration_ns``."""

    duration_ns: int
    jitter_ns: int
    seed: int = 0


@dataclass(frozen=True)
class ServerCrash(FaultEvent):
    """Crash storage server ``server`` for ``down_ns``.

    Queued commands and in-flight partial-parity / reconstruction reduce
    state are lost (§5.4); the server restarts cleanly afterwards.
    """

    server: int
    down_ns: int


@dataclass(frozen=True)
class DomainOutage(FaultEvent):
    """Take a whole failure domain down at once (shared enclosure, rack or
    power feed): every member server of ``(kind, domain_id)`` in the
    cluster's :class:`~repro.faults.domains.DomainTopology` crashes for
    ``down_ns``, losing queued commands and in-flight parity state exactly
    like per-server :class:`ServerCrash` events."""

    kind_name: str  #: domain kind ("enclosure", "rack", "power", "batch")
    domain_id: int
    down_ns: int


@dataclass(frozen=True)
class BatchFailureStorm(FaultEvent):
    """Correlated drive deaths from one manufacturing batch.

    ``count`` members of batch ``batch_id`` hard-fail at staggered times
    drawn from a seeded Weibull-style hazard curve starting at ``at_ns``
    (shared latent defect: once the first drive of a cohort dies, its
    siblings follow quickly).  ``spread_ns`` scales the stagger;
    ``shape`` < 1 front-loads the hazard (infant mortality), > 1 delays
    it (wear-out).  Victims and offsets depend only on ``seed``.
    """

    batch_id: int
    count: int
    spread_ns: int
    shape: float = 1.0
    seed: int = 0


@dataclass(frozen=True)
class GrayNicFlap(FaultEvent):
    """Gray network failure: ``server``'s NICs repeatedly dip to
    ``factor`` × their base rate for ``up_ns`` out of every ``period_ns``,
    ``flaps`` times.  Each dip is short and shallow enough not to trip
    fencing, but the accumulated tail-latency damage is real — the
    canonical sub-ejection-threshold failure mode."""

    server: int
    factor: float
    period_ns: int
    up_ns: int
    flaps: int


@dataclass(frozen=True)
class GrayDriveStutter(FaultEvent):
    """Gray drive failure: ``server``'s drive stutters — latency multiplied
    by ``multiplier`` for ``up_ns`` out of every ``period_ns``, ``repeats``
    times.  Between stutters the drive looks healthy, so a naive EWMA
    detector oscillates around its threshold instead of cleanly ejecting
    (the flapping regime the detector's hysteresis band exists for)."""

    server: int
    multiplier: float
    period_ns: int
    up_ns: int
    repeats: int


@dataclass(frozen=True)
class BitRot(FaultEvent):
    """Silently flip bytes of ``server``'s drive at ``[offset, offset+length)``
    with a seeded nonzero XOR mask (media decay — the drive keeps answering
    with the rotten bytes, no error is raised)."""

    server: int
    offset: int
    length: int
    seed: int = 0


@dataclass(frozen=True)
class LostWrite(FaultEvent):
    """The next write to ``server``'s drive is acknowledged but never
    reaches media (dropped in the drive's write cache)."""

    server: int


@dataclass(frozen=True)
class TornWrite(FaultEvent):
    """The next write to ``server``'s drive lands only its first half
    (power-cut mid-program)."""

    server: int


@dataclass(frozen=True)
class MisdirectedWrite(FaultEvent):
    """The next write to ``server``'s drive lands ``shift_bytes`` away from
    its target — the target stays stale *and* an innocent extent is
    clobbered (firmware LBA-mapping bug)."""

    server: int
    shift_bytes: int
