"""The fault injector: executes a :class:`FaultPlan` against one array.

The injector is a simulation process.  Creating one *arms* the cluster
(``cluster.fault_injection``), which switches the RAID controllers onto
their resilient timeout/retry datapaths; arrays built without an injector
keep the exact event sequence of the healthy paths, so all committed
figures are unchanged.

Every fault keys off sim time and the plan's own seeds — never wall
clock — so identical plans replay bit-identically, serial or parallel.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.faults.events import (
    BatchFailureStorm,
    BitRot,
    DomainOutage,
    DriveErrorBurst,
    DriveFail,
    DriveFailSlow,
    DriveHeal,
    FaultEvent,
    GrayDriveStutter,
    GrayNicFlap,
    LinkStall,
    LostWrite,
    MisdirectedWrite,
    NetJitter,
    NicDegrade,
    ServerCrash,
    TornWrite,
)
from repro.faults.domains import DomainTopology, default_topology
from repro.faults.plan import FaultPlan
from repro.nvmeof.messages import IoError
from repro.raid.rebuild import RebuildJob
from repro.sim.core import Environment, Event


class FaultInjector:
    """Applies ``plan`` to ``array`` on the simulation clock."""

    def __init__(
        self,
        array,
        plan: FaultPlan,
        num_stripes: Optional[int] = None,
        arm: bool = True,
    ) -> None:
        self.array = array
        self.plan = plan
        self.env: Environment = array.env
        self.cluster = array.cluster
        self._num_stripes = num_stripes
        self.applied = 0
        self.rebuilds = 0
        self.rebuild_failures = 0
        self._helpers: List[Event] = []
        self._nic_degrades = {i: 0 for i in range(self.cluster.num_servers)}
        self._default_topology = None
        if arm:
            self.cluster.fault_injection = self
        self.process = self.env.process(self._run(), name=f"{array.name}.faults")

    # -- lifecycle ---------------------------------------------------------

    def _run(self):
        for event in self.plan:
            delay = event.at_ns - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(event)

    def drain(self) -> Event:
        """Event firing once every plan event and helper has finished
        (rebuilds kicked off by heals, NIC restores, jitter windows)."""
        return self.env.process(self._drain(), name=f"{self.array.name}.faults-drain")

    def _drain(self):
        yield self.process
        for helper in list(self._helpers):
            yield helper

    def _spawn(self, generator, name: str) -> None:
        self._helpers.append(self.env.process(generator, name=name))

    # -- event application -------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        array = self.array
        if isinstance(event, DriveFail):
            self._fail_member(event.server)
        elif isinstance(event, DriveHeal):
            self._spawn(self._heal(event.server), f"{array.name}.heal{event.server}")
        elif isinstance(event, DriveErrorBurst):
            self._drive(event.server).inject_error_burst(event.duration_ns)
        elif isinstance(event, DriveFailSlow):
            self._drive(event.server).set_fail_slow(
                event.multiplier, event.duration_ns or None
            )
        elif isinstance(event, NicDegrade):
            server = self.cluster.servers[event.server]
            for nic in server.nics:
                nic.degrade(event.factor)
            self._nic_degrades[event.server] += 1
            self._spawn(
                self._nic_restore(event.server, event.duration_ns),
                f"{array.name}.nic-restore{event.server}",
            )
        elif isinstance(event, LinkStall):
            self.cluster.host_connection(event.server).stall(event.duration_ns)
        elif isinstance(event, NetJitter):
            rng = random.Random(event.seed)
            fn = lambda: rng.randint(0, event.jitter_ns)  # noqa: E731
            self.cluster.fabric.jitter_ns_fn = fn
            self._spawn(
                self._jitter_clear(fn, event.duration_ns), f"{array.name}.jitter-clear"
            )
        elif isinstance(event, ServerCrash):
            self._server_side(event.server).crash(event.down_ns)
        elif isinstance(event, DomainOutage):
            for server in self.topology.members(event.kind_name, event.domain_id):
                self._server_side(server).crash(event.down_ns)
        elif isinstance(event, BatchFailureStorm):
            self._spawn(
                self._batch_storm(event), f"{array.name}.batch-storm{event.batch_id}"
            )
        elif isinstance(event, GrayNicFlap):
            self._spawn(
                self._gray_nic_flap(event), f"{array.name}.gray-nic{event.server}"
            )
        elif isinstance(event, GrayDriveStutter):
            self._spawn(
                self._gray_stutter(event), f"{array.name}.gray-drive{event.server}"
            )
        elif isinstance(event, BitRot):
            self._drive(event.server).corrupt(
                "bitrot", offset=event.offset, length=event.length, seed=event.seed
            )
        elif isinstance(event, LostWrite):
            self._drive(event.server).corrupt("lost")
        elif isinstance(event, TornWrite):
            self._drive(event.server).corrupt("torn")
        elif isinstance(event, MisdirectedWrite):
            self._drive(event.server).corrupt(
                "misdirected", shift_bytes=event.shift_bytes
            )
        else:
            raise TypeError(f"unknown fault event {event!r}")
        self.applied += 1
        array.fault_stats.record_injected(event.kind)

    def _fail_member(self, server: int) -> None:
        """Hard-fail one member (idempotent; tolerance overruns are kept
        as marked failures and surface as datapath ``IoError``)."""
        array = self.array
        if server in array.failed:
            return
        from repro.baselines.base import ArrayFailureError

        try:
            array.fail_drive(server)
        except ArrayFailureError:
            pass  # still marked failed; the datapath surfaces IoError
        array.fault_stats.degraded_transitions += 1

    @property
    def topology(self) -> DomainTopology:
        """The cluster's failure-domain map (``ClusterConfig.domains``),
        or the default blast-radius shape when none was configured."""
        topology = self.cluster.config.domains
        if topology is None:
            topology = self._default_topology
            if topology is None:
                topology = default_topology(self.cluster.num_servers)
                self._default_topology = topology
        return topology

    def _drive(self, server: int):
        return self.cluster.servers[server].drive

    def _server_side(self, server: int):
        """The crashable server-side controller for member ``server``
        (dRAID bdev server or NVMe-oF target)."""
        sides = getattr(self.array, "bdev_servers", None)
        if sides is None:
            sides = getattr(self.array, "targets", None)
        if sides is None:
            raise TypeError(f"{self.array.name}: no crashable server side")
        return sides[server]

    # -- helpers -----------------------------------------------------------

    def _heal(self, server: int):
        array = self.array
        if server in array.failed:
            orchestrator = self.cluster.recovery
            if orchestrator is not None and orchestrator.array is array:
                # availability-aware path: the orchestrator owns spare
                # allocation, risk-ordered stripe scheduling and pacing
                try:
                    yield orchestrator.request_rebuild(server)
                    self.rebuilds += 1
                except (IoError, RuntimeError):
                    self.rebuild_failures += 1
                return
            num_stripes = self._num_stripes
            if num_stripes is None:
                num_stripes = (
                    self.cluster.config.functional_capacity
                    // array.geometry.chunk_bytes
                )
            job = RebuildJob(array, server, num_stripes)
            try:
                yield job.start()
                self.rebuilds += 1
            except (IoError, RuntimeError):
                # rebuild interrupted by a newer fault; a later heal (or the
                # harness's recovery pass) will retry
                self.rebuild_failures += 1
        else:
            self._drive(server).heal()

    def _batch_storm(self, event: BatchFailureStorm):
        """Stagger ``count`` correlated deaths over a seeded hazard curve."""
        from repro.faults.domains import batch_storm_victims

        for victim, fail_at in batch_storm_victims(self.topology, event):
            wait = fail_at - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            self._fail_member(victim)

    def _gray_nic_flap(self, event: GrayNicFlap):
        """Periodic short NIC dips (refcounted against overlapping
        ``NicDegrade`` windows so restores never race)."""
        server = self.cluster.servers[event.server]
        for flap in range(event.flaps):
            for nic in server.nics:
                nic.degrade(event.factor)
            self._nic_degrades[event.server] += 1
            yield self.env.timeout(event.up_ns)
            self._nic_degrades[event.server] -= 1
            if self._nic_degrades[event.server] == 0:
                for nic in server.nics:
                    nic.restore()
            rest = event.period_ns - event.up_ns
            if rest > 0 and flap + 1 < event.flaps:
                yield self.env.timeout(rest)

    def _gray_stutter(self, event: GrayDriveStutter):
        """Periodic sub-ejection-threshold latency stutters."""
        drive = self._drive(event.server)
        for repeat in range(event.repeats):
            drive.set_fail_slow(event.multiplier, event.up_ns)
            if repeat + 1 < event.repeats:
                yield self.env.timeout(event.period_ns)

    def _nic_restore(self, server: int, duration_ns: int):
        yield self.env.timeout(duration_ns)
        self._nic_degrades[server] -= 1
        if self._nic_degrades[server] == 0:
            for nic in self.cluster.servers[server].nics:
                nic.restore()

    def _jitter_clear(self, fn, duration_ns: int):
        yield self.env.timeout(duration_ns)
        if self.cluster.fabric.jitter_ns_fn is fn:
            self.cluster.fabric.jitter_ns_fn = None
