"""Fault plans: scripted or seeded-random fault timelines.

A :class:`FaultPlan` is an ordered list of :mod:`repro.faults.events`
applied by a :class:`~repro.faults.injector.FaultInjector` at the sim
times they carry.  :func:`chaos_plan` builds a randomized plan from a
seed: same seed, same plan, same simulation — the determinism contract
the chaos harness and CI golden files rely on.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.faults.domains import DomainTopology, batch_storm_victims, default_topology
from repro.faults.events import (
    BatchFailureStorm,
    BitRot,
    DomainOutage,
    DriveErrorBurst,
    DriveFail,
    DriveFailSlow,
    DriveHeal,
    FaultEvent,
    GrayDriveStutter,
    GrayNicFlap,
    LinkStall,
    LostWrite,
    MisdirectedWrite,
    NetJitter,
    NicDegrade,
    ServerCrash,
    TornWrite,
)

MS = 1_000_000  # nanoseconds per millisecond


class FaultPlan:
    """An immutable, time-sorted fault schedule."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        staged = list(events)
        for event in staged:
            if event.at_ns < 0:
                raise ValueError(f"event before t=0: {event!r}")
        # stable sort: ties keep authoring order
        self.events: List[FaultEvent] = sorted(staged, key=lambda e: e.at_ns)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon_ns(self) -> int:
        return max((e.at_ns for e in self.events), default=0)

    def describe(self) -> str:
        """Deterministic multi-line rendering (for logs and goldens)."""
        return "\n".join(f"{e.at_ns:>12} {e.kind} {e}" for e in self.events)


def chaos_plan(
    seed: int,
    horizon_ns: int,
    servers: int,
    num_parity: int = 1,
    events_min: int = 4,
    events_max: int = 9,
    allow_crashes: bool = True,
    corruption_events: int = 0,
    chunk_bytes: int = 0,
    num_stripes: int = 0,
    correlated_events: int = 0,
    gray_events: int = 0,
    topology: Optional[DomainTopology] = None,
) -> FaultPlan:
    """A seeded random fault storm over ``[0, horizon_ns)``.

    Hard faults (drive death, server crash) are budgeted so that no more
    than ``num_parity`` members are *scheduled* unavailable at once; the
    datapath may still exceed tolerance transiently (e.g. by fencing a
    fail-slow drive), which surfaces as ``IoError`` — an outcome the chaos
    harness accepts and repairs.

    ``corruption_events > 0`` additionally sprinkles silent-corruption
    events (drawn from an independent child RNG, so existing plans for a
    given seed are unchanged): per-stripe bit rot is budgeted to at most
    ``num_parity`` distinct members so parity can reconstruct it, and at
    most ``num_parity`` write-armed corruptions (lost/torn/misdirected)
    are scheduled per plan — armed events land on unpredictable stripes,
    so their count is capped rather than placed.  Bit rot and misdirected
    writes need the array layout (``chunk_bytes``; bit rot additionally
    ``num_stripes``).

    ``correlated_events > 0`` adds domain-shaped hard faults (enclosure
    :class:`DomainOutage`, shared-batch :class:`BatchFailureStorm`) drawn
    from their own child RNG, budgeted *domain-aware*: every member of an
    affected domain counts against the same ``num_parity`` simultaneous
    hard-fault limit as the independent faults above, so no stripe's
    surviving set is ever scheduled past parity.  ``gray_events > 0``
    likewise adds sub-ejection-threshold :class:`GrayNicFlap` /
    :class:`GrayDriveStutter` degradation (soft — exempt from the hard
    budget).  ``topology`` supplies the blast-radius map (defaults to
    :func:`~repro.faults.domains.default_topology`); pass the same one
    to ``ClusterConfig.domains`` so the injector resolves domains the
    way the plan budgeted them.  All three knobs default off, leaving
    existing plans for a given seed byte-identical.
    """
    if servers < 3:
        raise ValueError(f"chaos needs >= 3 servers, got {servers}")
    if horizon_ns <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_ns}")
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    #: members scheduled dead/crashed, with the time they come back
    unavailable_until = {}

    def live_hard_faults(at_ns: int) -> int:
        return sum(1 for t in unavailable_until.values() if t > at_ns)

    def hard_fault_budget_ok(at_ns: int) -> bool:
        return live_hard_faults(at_ns) < num_parity

    kinds: Sequence[str] = (
        "fail",
        "crash",
        "burst",
        "failslow",
        "nic",
        "stall",
        "jitter",
    )
    weights = (2, 3 if allow_crashes else 0, 3, 3, 2, 2, 1)
    count = rng.randint(events_min, events_max)
    for _ in range(count):
        at_ns = rng.randrange(0, horizon_ns)
        kind = rng.choices(kinds, weights=weights)[0]
        server = rng.randrange(servers)
        if kind == "fail":
            if not hard_fault_budget_ok(at_ns):
                continue
            heal_at = at_ns + rng.randint(10 * MS, 40 * MS)
            events.append(DriveFail(at_ns, server=server))
            events.append(DriveHeal(heal_at, server=server))
            unavailable_until[server] = heal_at
        elif kind == "crash":
            if not allow_crashes or not hard_fault_budget_ok(at_ns):
                continue
            down_ns = rng.randint(5 * MS, 20 * MS)
            events.append(ServerCrash(at_ns, server=server, down_ns=down_ns))
            # a crashed member is usually fenced by the host's prolonged-
            # failure handling; schedule a heal so it rejoins the array
            heal_at = at_ns + down_ns + rng.randint(15 * MS, 40 * MS)
            events.append(DriveHeal(heal_at, server=server))
            unavailable_until[server] = heal_at
        elif kind == "burst":
            events.append(
                DriveErrorBurst(
                    at_ns, server=server, duration_ns=rng.randint(1 * MS, 8 * MS)
                )
            )
        elif kind == "failslow":
            events.append(
                DriveFailSlow(
                    at_ns,
                    server=server,
                    multiplier=rng.choice((2.0, 4.0, 10.0)),
                    duration_ns=rng.randint(5 * MS, 30 * MS),
                )
            )
        elif kind == "nic":
            events.append(
                NicDegrade(
                    at_ns,
                    server=server,
                    factor=rng.choice((0.05, 0.1, 0.25, 0.5)),
                    duration_ns=rng.randint(5 * MS, 20 * MS),
                )
            )
        elif kind == "stall":
            events.append(
                LinkStall(at_ns, server=server, duration_ns=rng.randint(1 * MS, 10 * MS))
            )
        else:
            events.append(
                NetJitter(
                    at_ns,
                    duration_ns=rng.randint(5 * MS, 20 * MS),
                    jitter_ns=rng.randint(10_000, 200_000),
                    seed=rng.randrange(1 << 30),
                )
            )
    if corruption_events > 0:
        # independent child RNG: adding corruption must not perturb the
        # loud-fault stream above for the same seed
        crng = random.Random(f"repro.chaos.corruption:{seed}")
        ckinds: Sequence[str] = ("bitrot", "lost", "torn", "misdirect")
        cweights = (4, 2, 2, 1)
        armed_budget = num_parity
        bitrot_hits = {}  # stripe -> set of servers already rotten there
        made = 0
        attempts = 0
        while made < corruption_events and attempts < corruption_events * 20:
            attempts += 1
            at_ns = crng.randrange(0, horizon_ns)
            ckind = crng.choices(ckinds, weights=cweights)[0]
            server = crng.randrange(servers)
            if ckind == "bitrot":
                if not chunk_bytes or not num_stripes:
                    continue
                stripe = crng.randrange(num_stripes)
                hit = bitrot_hits.setdefault(stripe, set())
                if server not in hit and len(hit) >= num_parity:
                    continue  # keep every stripe parity-recoverable
                length = crng.choice((512, 4096))
                offset = stripe * chunk_bytes + crng.randrange(
                    max(1, chunk_bytes - length)
                )
                events.append(
                    BitRot(
                        at_ns,
                        server=server,
                        offset=offset,
                        length=length,
                        seed=crng.randrange(1 << 30),
                    )
                )
                hit.add(server)
            elif ckind == "lost":
                if armed_budget <= 0:
                    continue
                armed_budget -= 1
                events.append(LostWrite(at_ns, server=server))
            elif ckind == "torn":
                if armed_budget <= 0:
                    continue
                armed_budget -= 1
                events.append(TornWrite(at_ns, server=server))
            else:
                if armed_budget <= 0 or not chunk_bytes:
                    continue
                armed_budget -= 1
                # a one-chunk shift clobbers the adjacent stripe on the same
                # drive: one bad chunk per stripe, always reconstructable
                events.append(
                    MisdirectedWrite(at_ns, server=server, shift_bytes=chunk_bytes)
                )
            made += 1
    if correlated_events > 0:
        # independent child RNG: adding correlated faults must not perturb
        # the loud-fault or corruption streams above for the same seed
        topo = topology if topology is not None else default_topology(servers)
        drng = random.Random(f"repro.chaos.domains:{seed}")
        made = 0
        attempts = 0
        while made < correlated_events and attempts < correlated_events * 20:
            attempts += 1
            at_ns = drng.randrange(0, horizon_ns)
            if drng.random() < 0.5 and allow_crashes:
                # whole-enclosure outage: every member crashes at once, so
                # the *domain size* counts against the hard-fault budget
                domain_id = drng.choice(topo.domains("enclosure"))
                members = topo.members("enclosure", domain_id)
                if live_hard_faults(at_ns) + len(members) > num_parity:
                    continue
                down_ns = drng.randint(5 * MS, 20 * MS)
                events.append(
                    DomainOutage(
                        at_ns, kind_name="enclosure", domain_id=domain_id, down_ns=down_ns
                    )
                )
                # crashed members may be fenced by prolonged-failure
                # handling; heal each so the array returns to full strength
                for member in members:
                    heal_at = at_ns + down_ns + drng.randint(15 * MS, 40 * MS)
                    events.append(DriveHeal(heal_at, server=member))
                    unavailable_until[member] = heal_at
            else:
                # shared-batch hazard storm: k correlated drive deaths
                batch_id = drng.choice(topo.domains("batch"))
                batch = topo.members("batch", batch_id)
                count = drng.randint(1, max(1, min(len(batch), num_parity)))
                if live_hard_faults(at_ns) + count > num_parity:
                    continue
                storm = BatchFailureStorm(
                    at_ns,
                    batch_id=batch_id,
                    count=count,
                    spread_ns=drng.randint(2 * MS, 10 * MS),
                    shape=drng.choice((0.7, 1.0, 1.5)),
                    seed=drng.randrange(1 << 30),
                )
                events.append(storm)
                # the storm's victim timeline is deterministic in its seed:
                # replay it here to budget and to schedule per-victim heals
                for victim, fail_at in batch_storm_victims(topo, storm):
                    heal_at = fail_at + drng.randint(10 * MS, 40 * MS)
                    events.append(DriveHeal(heal_at, server=victim))
                    unavailable_until[victim] = heal_at
            made += 1
    if gray_events > 0:
        grng = random.Random(f"repro.chaos.gray:{seed}")
        for _ in range(gray_events):
            at_ns = grng.randrange(0, horizon_ns)
            server = grng.randrange(servers)
            period_ns = grng.randint(2 * MS, 6 * MS)
            up_ns = grng.randint(period_ns // 4, period_ns // 2)
            if grng.random() < 0.5:
                events.append(
                    GrayNicFlap(
                        at_ns,
                        server=server,
                        factor=grng.choice((0.1, 0.25)),
                        period_ns=period_ns,
                        up_ns=up_ns,
                        flaps=grng.randint(3, 8),
                    )
                )
            else:
                # multipliers below the detector's 3x ratio: the member
                # degrades without ever cleanly tripping ejection
                events.append(
                    GrayDriveStutter(
                        at_ns,
                        server=server,
                        multiplier=grng.choice((1.5, 2.0, 2.5)),
                        period_ns=period_ns,
                        up_ns=up_ns,
                        repeats=grng.randint(3, 8),
                    )
                )
    return FaultPlan(events)
