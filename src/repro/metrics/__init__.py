"""Measurement utilities: latency distributions and throughput windows."""

from repro.metrics.faults import FaultStats
from repro.metrics.integrity import IntegrityStats
from repro.metrics.latency import LatencySummary, LatencyRecorder
from repro.metrics.report import Row, format_table
from repro.metrics.tenancy import fairness_index, goodput_retention
from repro.metrics.timeline import ThroughputTimeline, TimelineSample

__all__ = [
    "FaultStats",
    "IntegrityStats",
    "LatencyRecorder",
    "LatencySummary",
    "Row",
    "ThroughputTimeline",
    "TimelineSample",
    "fairness_index",
    "format_table",
    "goodput_retention",
]
