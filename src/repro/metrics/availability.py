"""Durability accounting for the availability experiment (MTTDL-style).

The Monte Carlo availability sweep replays seeded fault processes against
each system and needs two things measured on the same clock:

* **exposure** — how long the array spends at reduced redundancy.  A
  stripe's risk is set by its *surviving* redundancy (parity minus live
  erasures), so the tracker integrates the worst stripe's erasure count
  over time: ``degraded_ns`` (any erasure), ``double_degraded_ns`` (two or
  more) and ``zero_redundancy_ns`` (erasures == parity: one more fault is
  data loss).
* **data-loss events** — transitions of the worst stripe past parity.
  Each entry into the lost state counts once, however long it lasts;
  dividing total simulated time by total events across seeds gives the
  Monte Carlo MTTDL estimate.

Sampling is piecewise-constant: the caller (the recovery orchestrator's
watch loop) reports the worst erasure count at every poll, and each
interval is attributed the level of its *preceding* sample.
"""

from __future__ import annotations

from typing import Optional


class ExposureTracker:
    """Integrate redundancy exposure from periodic worst-stripe samples."""

    def __init__(self) -> None:
        #: sim ns with at least one live erasure somewhere
        self.degraded_ns = 0
        #: sim ns with two or more erasures in some stripe
        self.double_degraded_ns = 0
        #: sim ns with some stripe at zero surviving redundancy
        self.zero_redundancy_ns = 0
        #: entries into the lost state (worst erasures > parity)
        self.loss_events = 0
        #: high-water mark of simultaneous erasures in one stripe
        self.worst_erasures = 0
        self.samples = 0
        self._last_ns: Optional[int] = None
        self._level = 0
        self._parity = 0
        self._in_loss = False

    def sample(
        self,
        now_ns: int,
        worst_erasures: int,
        degraded_members: int,
        num_parity: int,
    ) -> None:
        """Fold one poll into the integrals.

        ``worst_erasures`` is the largest live erasure count of any stripe
        (out-of-order rebuilt stripes excluded); ``degraded_members`` is
        unused for the integrals but validates monotone sampling in debug
        use.  Time between this and the previous sample is attributed to
        the *previous* level.
        """
        if self._last_ns is not None:
            dt = now_ns - self._last_ns
            if dt > 0:
                if self._level >= 1:
                    self.degraded_ns += dt
                if self._level >= 2:
                    self.double_degraded_ns += dt
                if self._parity and self._level >= self._parity:
                    self.zero_redundancy_ns += dt
        self._last_ns = now_ns
        self._level = worst_erasures
        self._parity = num_parity
        self.samples += 1
        if worst_erasures > self.worst_erasures:
            self.worst_erasures = worst_erasures
        if worst_erasures > num_parity:
            if not self._in_loss:
                self.loss_events += 1
                self._in_loss = True
        else:
            self._in_loss = False

    def degraded_ms(self) -> float:
        return self.degraded_ns / 1e6

    def zero_redundancy_ms(self) -> float:
        return self.zero_redundancy_ns / 1e6


def loss_rate_per_hour(total_loss_events: int, total_sim_ns: int) -> float:
    """Monte Carlo data-loss-event rate (events per simulated hour).

    The reciprocal is the MTTDL estimate; the rate form stays finite when
    no run lost data, which is the common case for the healthy systems.
    """
    if total_sim_ns <= 0:
        return 0.0
    return total_loss_events * 3.6e12 / total_sim_ns


def mttdl_hours(total_loss_events: int, total_sim_ns: int) -> Optional[float]:
    """MTTDL estimate in simulated hours (None when no loss was observed)."""
    if total_loss_events == 0:
        return None
    return total_sim_ns / total_loss_events / 3.6e12
