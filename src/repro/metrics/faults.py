"""Per-array fault-handling counters (§5.4 observability).

Every RAID controller owns a :class:`FaultStats`; the datapath increments
it as faults are detected and handled, and the fault injector adds the
counts of events it actually applied.  ``summary()`` is a stable
single-line rendering used by the chaos determinism gate (two runs of the
same seeded schedule must produce byte-identical summaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FaultStats:
    """Counters for one array's fault handling."""

    #: operations re-driven after an error or timeout
    retries: int = 0
    #: per-attempt deadlines that expired
    timeouts: int = 0
    #: drives transitioned to degraded mode (any cause)
    degraded_transitions: int = 0
    #: degraded transitions caused by the EWMA fail-slow detector
    fail_slow_ejections: int = 0
    #: drives declared prolonged-failed after a timeout drain (§5.4)
    prolonged_failures: int = 0
    #: I/Os that exhausted their retry budget and surfaced IoError
    io_errors: int = 0
    #: fault events actually applied by the injector, keyed by event type
    injected: Dict[str, int] = field(default_factory=dict)

    def record_injected(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def reset(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.degraded_transitions = 0
        self.fail_slow_ejections = 0
        self.prolonged_failures = 0
        self.io_errors = 0
        self.injected.clear()

    def summary(self) -> str:
        """Deterministic one-line rendering (chaos golden files diff this)."""
        fields = [
            f"retries={self.retries}",
            f"timeouts={self.timeouts}",
            f"degraded={self.degraded_transitions}",
            f"failslow={self.fail_slow_ejections}",
            f"prolonged={self.prolonged_failures}",
            f"io_errors={self.io_errors}",
        ]
        injected = ",".join(
            f"{kind}:{count}" for kind, count in sorted(self.injected.items())
        )
        fields.append(f"injected=[{injected}]")
        return " ".join(fields)
