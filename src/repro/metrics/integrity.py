"""Per-array integrity counters (silent-corruption observability).

Every RAID controller owns an :class:`IntegrityStats`; the checksummed
datapath and the scrub daemon increment it as corruption is detected and
repaired.  ``summary()`` is a stable single-line rendering used by the
integrity smoke golden (two runs of the same seeded schedule must produce
byte-identical summaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


def _bump(counters: Dict[str, int], kinds) -> None:
    for kind in kinds:
        counters[kind] = counters.get(kind, 0) + 1


def _render(counters: Dict[str, int]) -> str:
    return ",".join(f"{kind}:{count}" for kind, count in sorted(counters.items()))


@dataclass
class IntegrityStats:
    """Counters for one array's corruption detection and repair."""

    #: chunk verifications performed (read path + write pre-verify + scrub)
    chunks_verified: int = 0
    #: read-repair invocations triggered from the foreground read path
    read_repairs: int = 0
    #: read-repair invocations triggered by the pre-write stripe verify
    write_repairs: int = 0
    #: read-repair invocations triggered by the scrub daemon
    scrub_repairs: int = 0
    #: parity chunks rewritten by the scrub daemon's parity audit
    parity_rewrites: int = 0
    #: bad chunks detected, keyed by the fault kind that poisoned them
    detected: Dict[str, int] = field(default_factory=dict)
    #: bad chunks successfully repaired from parity, keyed by fault kind
    repaired: Dict[str, int] = field(default_factory=dict)
    #: bad chunks that could not be repaired (erasures beyond parity)
    unrecoverable_kinds: Dict[str, int] = field(default_factory=dict)
    #: corruption-to-detection latency of each detected chunk, sim ns
    detection_latencies_ns: List[int] = field(default_factory=list)

    @property
    def unrecoverable(self) -> int:
        """Total unrecoverable chunks (the chaos acceptance gate)."""
        return sum(self.unrecoverable_kinds.values())

    @property
    def total_detected(self) -> int:
        return sum(self.detected.values())

    @property
    def total_repaired(self) -> int:
        return sum(self.repaired.values())

    def record_detected(self, kinds, latency_ns=None) -> None:
        _bump(self.detected, kinds)
        if latency_ns is not None:
            self.detection_latencies_ns.append(int(latency_ns))

    def record_repaired(self, kinds) -> None:
        _bump(self.repaired, kinds)

    def record_unrecoverable(self, kinds) -> None:
        _bump(self.unrecoverable_kinds, kinds)

    def mean_detection_latency_ns(self) -> int:
        if not self.detection_latencies_ns:
            return 0
        return sum(self.detection_latencies_ns) // len(self.detection_latencies_ns)

    def reset(self) -> None:
        self.chunks_verified = 0
        self.read_repairs = 0
        self.write_repairs = 0
        self.scrub_repairs = 0
        self.parity_rewrites = 0
        self.detected.clear()
        self.repaired.clear()
        self.unrecoverable_kinds.clear()
        self.detection_latencies_ns.clear()

    def summary(self) -> str:
        """Deterministic one-line rendering (integrity goldens diff this)."""
        return " ".join(
            [
                f"verified={self.chunks_verified}",
                f"detected=[{_render(self.detected)}]",
                f"repaired=[{_render(self.repaired)}]",
                f"unrecoverable=[{_render(self.unrecoverable_kinds)}]",
                f"read_repairs={self.read_repairs}",
                f"write_repairs={self.write_repairs}",
                f"scrub_repairs={self.scrub_repairs}",
                f"parity_rewrites={self.parity_rewrites}",
                f"detect_mean_ns={self.mean_detection_latency_ns()}",
            ]
        )
