"""Latency recording and summarization."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample, in nanoseconds."""

    count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p99_ns: float
    max_ns: float

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1_000

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1_000

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)


class LatencyRecorder:
    """Collects per-operation latencies (exact, not sketched).

    Simulated experiments complete at most a few tens of thousands of
    operations, so keeping every sample is cheap and exact.
    """

    def __init__(self) -> None:
        self._samples: List[int] = []

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self._samples.append(latency_ns)

    def __len__(self) -> int:
        return len(self._samples)

    def reset(self) -> None:
        self._samples.clear()

    def _percentile(self, sorted_samples: List[int], q: float) -> float:
        if not sorted_samples:
            return 0.0
        idx = q * (len(sorted_samples) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(sorted_samples) - 1)
        frac = idx - lo
        return sorted_samples[lo] * (1 - frac) + sorted_samples[hi] * frac

    def summarize(self) -> LatencySummary:
        if not self._samples:
            return LatencySummary.empty()
        ordered = sorted(self._samples)
        return LatencySummary(
            count=len(ordered),
            mean_ns=sum(ordered) / len(ordered),
            p50_ns=self._percentile(ordered, 0.50),
            p90_ns=self._percentile(ordered, 0.90),
            p99_ns=self._percentile(ordered, 0.99),
            max_ns=float(ordered[-1]),
        )
