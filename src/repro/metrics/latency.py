"""Latency recording and summarization."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample, in nanoseconds."""

    count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p99_ns: float
    max_ns: float

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1_000

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1_000

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)


class LatencyRecorder:
    """Collects per-operation latencies (exact, not sketched).

    Simulated experiments complete at most a few tens of thousands of
    operations, so keeping every sample is cheap and exact.
    """

    def __init__(self) -> None:
        self._samples: List[int] = []
        self._cached: Optional[Tuple[int, LatencySummary]] = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self._samples.append(latency_ns)
        self._cached = None

    def record_many(self, latencies_ns) -> None:
        """Bulk ingest: validate a whole batch with one vectorized pass.

        Accepts any 1-D sequence/array of integer nanoseconds.  The batch is
        range-checked via a single ``min`` reduction instead of a Python-level
        comparison per sample, then appended in one ``list.extend``; summaries
        are unchanged because samples land in the same internal list that
        :meth:`record` feeds.
        """
        arr = np.asarray(latencies_ns, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"expected 1-D samples, got shape {arr.shape}")
        if arr.size == 0:
            return
        lowest = int(arr.min())
        if lowest < 0:
            raise ValueError(f"negative latency {lowest}")
        self._samples.extend(arr.tolist())
        self._cached = None

    @staticmethod
    def merged(*recorders: "LatencyRecorder") -> "LatencyRecorder":
        """A new recorder holding every sample of ``recorders`` (in order)."""
        out = LatencyRecorder()
        for rec in recorders:
            out._samples.extend(rec._samples)
        return out

    def __len__(self) -> int:
        return len(self._samples)

    def reset(self) -> None:
        self._samples.clear()
        self._cached = None

    def _percentile(self, sorted_samples, q: float) -> float:
        if len(sorted_samples) == 0:
            return 0.0
        idx = q * (len(sorted_samples) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(sorted_samples) - 1)
        frac = idx - lo
        # int -> float64 promotion and the interpolation arithmetic are
        # IEEE-identical whether the operands come from a Python list or a
        # numpy int64 array, so this matches the pre-numpy implementation
        # bit for bit.
        return float(sorted_samples[lo] * (1 - frac) + sorted_samples[hi] * frac)

    def summarize(self) -> LatencySummary:
        samples = self._samples
        if not samples:
            return LatencySummary.empty()
        if self._cached is not None and self._cached[0] == len(samples):
            return self._cached[1]
        ordered = np.sort(np.asarray(samples, dtype=np.int64))
        summary = LatencySummary(
            count=len(ordered),
            mean_ns=int(ordered.sum(dtype=np.int64)) / len(ordered),
            p50_ns=self._percentile(ordered, 0.50),
            p90_ns=self._percentile(ordered, 0.90),
            p99_ns=self._percentile(ordered, 0.99),
            max_ns=float(ordered[-1]),
        )
        self._cached = (len(ordered), summary)
        return summary
