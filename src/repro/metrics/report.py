"""Plain-text result tables in the style the paper's figures report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class Row:
    """One data point of an experiment: an x-value, a system, and metrics."""

    x: Any
    system: str
    metrics: Dict[str, float] = field(default_factory=dict)


def format_table(
    title: str,
    rows: Sequence[Row],
    x_label: str = "x",
    metric_order: Sequence[str] = (),
) -> str:
    """Render rows as a fixed-width table grouped by x-value."""
    metrics: List[str] = list(metric_order)
    for row in rows:
        for key in row.metrics:
            if key not in metrics:
                metrics.append(key)
    # Per-column widths grow with content (long metric names, multi-digit-GB
    # bandwidths) but never shrink below the historical 12/10/16 minimums, so
    # tables whose cells fit render byte-identically to earlier releases.
    x_cells = [str(row.x) for row in rows]
    cell_rows = [
        [f"{row.metrics.get(m, float('nan')):.1f}" for m in metrics] for row in rows
    ]
    x_width = max([12, len(x_label), *(len(c) for c in x_cells)] if x_cells else [12, len(x_label)])
    system_width = max([10, *(len(row.system) for row in rows)] if rows else [10])
    # the +1 guarantees at least one space between adjacent metric columns
    # (they have no explicit separator) once content reaches the 16 minimum
    widths = [
        max([16, len(m) + 1, *(len(r[i]) + 1 for r in cell_rows)] if cell_rows else [16, len(m) + 1])
        for i, m in enumerate(metrics)
    ]
    lines = [title, "=" * len(title)]
    header = f"{x_label:>{x_width}} {'system':>{system_width}}" + "".join(
        f"{m:>{w}}" for m, w in zip(metrics, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row, cells in zip(rows, cell_rows):
        body = "".join(f"{c:>{w}}" for c, w in zip(cells, widths))
        lines.append(f"{str(row.x):>{x_width}} {row.system:>{system_width}}{body}")
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row]) -> str:
    """Render rows as CSV (x, system, then one column per metric)."""
    metrics: List[str] = []
    for row in rows:
        for key in row.metrics:
            if key not in metrics:
                metrics.append(key)
    lines = ["x,system," + ",".join(metrics)]
    for row in rows:
        cells = ",".join(
            f"{row.metrics[m]:.3f}" if m in row.metrics else "" for m in metrics
        )
        lines.append(f"{row.x},{row.system},{cells}")
    return "\n".join(lines) + "\n"
