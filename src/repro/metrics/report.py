"""Plain-text result tables in the style the paper's figures report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class Row:
    """One data point of an experiment: an x-value, a system, and metrics."""

    x: Any
    system: str
    metrics: Dict[str, float] = field(default_factory=dict)


def format_table(
    title: str,
    rows: Sequence[Row],
    x_label: str = "x",
    metric_order: Sequence[str] = (),
) -> str:
    """Render rows as a fixed-width table grouped by x-value."""
    metrics: List[str] = list(metric_order)
    for row in rows:
        for key in row.metrics:
            if key not in metrics:
                metrics.append(key)
    systems: List[str] = []
    for row in rows:
        if row.system not in systems:
            systems.append(row.system)
    lines = [title, "=" * len(title)]
    header = f"{x_label:>12} {'system':>10}" + "".join(f"{m:>16}" for m in metrics)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = "".join(
            f"{row.metrics.get(m, float('nan')):>16.1f}" for m in metrics
        )
        lines.append(f"{str(row.x):>12} {row.system:>10}{cells}")
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row]) -> str:
    """Render rows as CSV (x, system, then one column per metric)."""
    metrics: List[str] = []
    for row in rows:
        for key in row.metrics:
            if key not in metrics:
                metrics.append(key)
    lines = ["x,system," + ",".join(metrics)]
    for row in rows:
        cells = ",".join(
            f"{row.metrics[m]:.3f}" if m in row.metrics else "" for m in metrics
        )
        lines.append(f"{row.x},{row.system},{cells}")
    return "\n".join(lines) + "\n"
