"""Multi-tenant isolation metrics.

Per-tenant goodput and latency come straight from
:class:`~repro.workloads.openloop.OpenLoopResult`; this module adds the
two derived quantities the tenancy figure reports:

* **retention** — what fraction of its uncontended (solo) goodput a tenant
  keeps while sharing the rack with an aggressor.  1.0 means perfect
  isolation; the noisy-neighbor experiment's QoS-off arm shows how far
  below 1.0 an unprotected tenant falls.
* **Jain's fairness index** — how evenly a set of per-tenant allocations
  matches their entitlements.  1.0 when every tenant gets goodput exactly
  proportional to its fair-share weight, approaching ``1/n`` when one
  tenant takes everything.
"""

from __future__ import annotations

from typing import Sequence


def goodput_retention(contended_mb_s: float, solo_mb_s: float) -> float:
    """Fraction of solo goodput retained under contention (capped at 1.0).

    ``solo_mb_s`` is the tenant's goodput measured alone on an otherwise
    idle rack with the same seeds and windows; values above 1.0 (sampling
    jitter) clamp to 1.0 so the isolation figure never reports >100%.
    """
    if solo_mb_s <= 0.0:
        return 0.0
    return min(1.0, contended_mb_s / solo_mb_s)


def fairness_index(allocations: Sequence[float], weights: Sequence[float] = ()) -> float:
    """Jain's fairness index over (optionally weight-normalized) allocations.

    With ``weights`` given, each allocation is divided by its tenant's
    weight first, so the index measures *weighted* fairness: 1.0 when
    goodput is exactly proportional to weight.  An all-zero allocation
    vector returns 0.0.
    """
    if not allocations:
        raise ValueError("need at least one allocation")
    if weights:
        if len(weights) != len(allocations):
            raise ValueError(
                f"{len(allocations)} allocations but {len(weights)} weights"
            )
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        values = [a / w for a, w in zip(allocations, weights)]
    else:
        values = list(allocations)
    total = sum(values)
    if total <= 0.0:
        return 0.0
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)
