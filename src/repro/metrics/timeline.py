"""Windowed time-series metrics.

:class:`ThroughputTimeline` samples a byte counter on a fixed period and
exposes the per-window rate — how rebuild interference, GC brownouts or
bursty arrivals shape throughput *over time*, which summary statistics
hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.sim.core import Environment

MB = 1_000_000


@dataclass(frozen=True)
class TimelineSample:
    """One sampling window."""

    start_ns: int
    end_ns: int
    bytes_delta: int

    @property
    def rate_mb_s(self) -> float:
        elapsed = self.end_ns - self.start_ns
        if elapsed <= 0:
            return 0.0
        return self.bytes_delta * 1e9 / elapsed / MB


class ThroughputTimeline:
    """Periodically samples a monotonically increasing byte counter.

    ``counter`` is any zero-argument callable returning cumulative bytes
    (e.g. ``lambda: nic.tx_bytes`` or a workload's bytes-done counter).
    Sampling starts immediately on construction and runs until ``stop()``
    or the simulation ends.
    """

    def __init__(
        self,
        env: Environment,
        counter: Callable[[], int],
        window_ns: int = 1_000_000,
    ) -> None:
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        self.env = env
        self.counter = counter
        self.window_ns = window_ns
        self.samples: List[TimelineSample] = []
        self._stopped = False
        env.process(self._sample(), name="timeline")

    def _sample(self):
        last_value = self.counter()
        last_time = self.env.now
        while not self._stopped:
            yield self.env.timeout(self.window_ns)
            value = self.counter()
            self.samples.append(
                TimelineSample(last_time, self.env.now, value - last_value)
            )
            last_value = value
            last_time = self.env.now

    def stop(self) -> None:
        self._stopped = True

    # -- analysis -----------------------------------------------------------

    def rates_mb_s(self) -> List[float]:
        return [s.rate_mb_s for s in self.samples]

    def peak_mb_s(self) -> float:
        return max(self.rates_mb_s(), default=0.0)

    def mean_mb_s(self) -> float:
        rates = self.rates_mb_s()
        return sum(rates) / len(rates) if rates else 0.0

    def trough_mb_s(self, skip_leading: int = 0) -> float:
        """Lowest window rate (optionally ignoring warmup windows)."""
        rates = self.rates_mb_s()[skip_leading:]
        return min(rates, default=0.0)

    def sparkline(self, buckets: int = 40) -> str:
        """A terminal sparkline of the rate series (for example scripts)."""
        rates = self.rates_mb_s()
        if not rates:
            return ""
        # squeeze to the requested width by averaging groups
        if len(rates) > buckets:
            group = len(rates) / buckets
            rates = [
                sum(rates[int(i * group) : max(int(i * group) + 1, int((i + 1) * group))])
                / max(1, len(rates[int(i * group) : max(int(i * group) + 1, int((i + 1) * group))]))
                for i in range(buckets)
            ]
        glyphs = " .:-=+*#%@"
        top = max(rates) or 1.0
        return "".join(glyphs[min(len(glyphs) - 1, int(r / top * (len(glyphs) - 1)))] for r in rates)
