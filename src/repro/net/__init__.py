"""Simulated datacenter network: NICs, fabric and RDMA RC connections.

The network model is bandwidth-conserving: every byte a transfer moves
occupies the sender's TX direction and the receiver's RX direction for
``bytes / rate``, with FIFO queueing per direction.  This captures exactly
the quantity the paper's evaluation turns on — *which NIC carries how many
bytes* — while abstracting packets, congestion control and DMA engines.
"""

from repro.net.nic import Nic
from repro.net.fabric import ConnectionEnd, Fabric, RdmaConnection

__all__ = ["ConnectionEnd", "Fabric", "Nic", "RdmaConnection"]
