"""The datacenter fabric and RDMA reliable connections.

The fabric is a single-switch topology (as in the paper's testbed, one Dell
Z9264) with a fixed propagation delay per traversal.  dRAID uses RDMA RC
queue pairs between the host and every storage server, and between storage
servers in pairs (§3); :class:`RdmaConnection` models one such queue pair.

Three verbs are modeled:

* ``send`` — a message (command capsule) with optional inline payload,
  delivered into the peer's inbox in order.
* ``rdma_read`` — one-sided READ: the initiator pulls bytes from the peer;
  bytes occupy peer-TX and initiator-RX.
* ``rdma_write`` — one-sided WRITE: bytes occupy initiator-TX and peer-RX.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.nic import Nic
from repro.sim.core import Environment, Event
from repro.sim.resources import Store

#: Size of a command capsule on the wire (NVMe-oF capsule + dRAID fields).
CAPSULE_BYTES = 192


class ConnectionEnd:
    """One endpoint of an RDMA RC connection."""

    def __init__(self, connection: "RdmaConnection", nic: Nic, label: str) -> None:
        self.connection = connection
        self.nic = nic
        self.label = label
        self.inbox: Store = Store(connection.env, name=f"{label}.inbox")
        self.peer: "ConnectionEnd" = None  # type: ignore[assignment]  # wired by RdmaConnection

    def __repr__(self) -> str:
        return f"<ConnectionEnd {self.label}>"

    # -- verbs --------------------------------------------------------------

    def send(self, message: Any, payload_bytes: int = 0, header_bytes: int = CAPSULE_BYTES) -> Event:
        """Send a command capsule (+ optional inline payload) to the peer.

        The message object is placed into the peer's inbox when the last
        byte arrives.  Returns the delivery event.
        """
        return self.connection._transfer(
            src=self.nic,
            dst=self.peer.nic,
            nbytes=header_bytes + payload_bytes,
            deliver_to=self.peer.inbox,
            message=message,
        )

    def rdma_read(self, nbytes: int, ctx: Any = None) -> Event:
        """One-sided READ: pull ``nbytes`` from the peer's memory.

        ``ctx`` (an optional :class:`repro.obs.TraceContext`) attributes the
        wire time to a traced request when the fabric's tracer is armed.
        """
        return self.connection._transfer(
            src=self.peer.nic, dst=self.nic, nbytes=nbytes, ctx=ctx
        )

    def rdma_write(self, nbytes: int, ctx: Any = None) -> Event:
        """One-sided WRITE: push ``nbytes`` into the peer's memory."""
        return self.connection._transfer(
            src=self.nic, dst=self.peer.nic, nbytes=nbytes, ctx=ctx
        )

    def recv(self) -> Event:
        """Event yielding the next message in this end's inbox."""
        return self.inbox.get()


class RdmaConnection:
    """An RDMA reliable connection (queue pair) between two NICs."""

    def __init__(self, env: Environment, fabric: "Fabric", nic_a: Nic, nic_b: Nic, name: str) -> None:
        self.env = env
        self.fabric = fabric
        self.name = name
        self.a = ConnectionEnd(self, nic_a, f"{name}.a")
        self.b = ConnectionEnd(self, nic_b, f"{name}.b")
        self.a.peer = self.b
        self.b.peer = self.a
        # Fault injection: transfers never complete before this sim time.
        self._stall_until = 0

    def stall(self, duration_ns: int) -> None:
        """Fault injection: delay completion of every transfer on this
        queue pair (in-flight and new) until ``now + duration_ns``, as if
        the RC connection went through a retransmit storm or pause."""
        if duration_ns < 0:
            raise ValueError(f"negative stall duration {duration_ns}")
        self._stall_until = max(self._stall_until, self.env.now + duration_ns)

    def end_for(self, nic: Nic) -> ConnectionEnd:
        if nic is self.a.nic:
            return self.a
        if nic is self.b.nic:
            return self.b
        raise ValueError(f"{nic!r} is not an endpoint of {self.name}")

    def _transfer(
        self,
        src: Nic,
        dst: Nic,
        nbytes: int,
        deliver_to: Optional[Store] = None,
        message: Any = None,
        ctx: Any = None,
    ) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Bytes occupy src.tx and dst.rx; the transfer completes when both
        directions have drained it, plus fabric propagation and the RDMA
        op overhead.  O(1): one completion event per transfer.

        When the fabric's tracer is armed and the transfer belongs to a
        traced request (``ctx`` passed explicitly, or carried as a
        ``.trace`` attribute of ``message``), the fully determined
        schedule is recorded as queue-wait + transfer spans — tracing
        reads the future completion time, it never changes it.
        """
        tracer = self.fabric.tracer
        wait = 0
        if tracer is not None:
            if ctx is None and message is not None:
                ctx = getattr(message, "trace", None)
            if ctx is not None and src is not dst:
                wait = max(src.tx.queue_delay_ns(), dst.rx.queue_delay_ns())
        if src is dst:
            # loopback (co-located bdevs): no NIC occupancy, memcpy-scale delay
            done = self.env.now + self.fabric.loopback_ns
        else:
            tx_done = src.tx.reserve(nbytes)
            rx_done = dst.rx.reserve(nbytes)
            done = max(tx_done, rx_done) + self.fabric.propagation_ns
        done += self.fabric.rdma_op_ns
        if self._stall_until > done:
            done = self._stall_until
        jitter_fn = self.fabric.jitter_ns_fn
        if jitter_fn is not None:
            done += jitter_fn()
        now = self.env.now
        if tracer is not None and ctx is not None:
            track = f"net.{self.name}"
            if wait:
                tracer.record(ctx, f"{src.name}.tx-queue", "queue-wait", track, now, now + wait)
            tracer.record(
                ctx,
                f"{src.name}->{dst.name}",
                "transfer",
                track,
                now + wait,
                done,
                {"bytes": nbytes},
            )
        event = self.env.timeout(done - now, value=nbytes)
        if deliver_to is not None:
            event.callbacks.append(lambda _ev: deliver_to.put(message))
        return event


class Fabric:
    """A single-switch RDMA fabric.

    ``propagation_ns`` is the one-way switch traversal time;
    ``rdma_op_ns`` the per-verb initiation/completion overhead; and
    ``loopback_ns`` the cost of a transfer between co-located endpoints.
    """

    def __init__(
        self,
        env: Environment,
        propagation_ns: int = 1_500,
        rdma_op_ns: int = 3_000,
        loopback_ns: int = 500,
    ) -> None:
        self.env = env
        self.propagation_ns = int(propagation_ns)
        self.rdma_op_ns = int(rdma_op_ns)
        self.loopback_ns = int(loopback_ns)
        #: Fault injection: when set, called once per transfer; must return a
        #: non-negative jitter (ns) added to the completion time.  Drive it
        #: from a seeded RNG so runs stay deterministic.
        self.jitter_ns_fn = None
        #: Observability: a :class:`repro.obs.Tracer` armed by
        #: :class:`repro.obs.Observability`; None (default) disables all
        #: transfer-span recording at the cost of one ``is None`` check.
        self.tracer = None
        self._counter = 0
        self.connections = []

    def connect(self, nic_a: Nic, nic_b: Nic, name: Optional[str] = None) -> RdmaConnection:
        """Create an RDMA RC connection (queue pair) between two NICs."""
        self._counter += 1
        conn = RdmaConnection(
            self.env, self, nic_a, nic_b, name or f"qp{self._counter}"
        )
        self.connections.append(conn)
        return conn
