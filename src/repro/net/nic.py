"""Network interface cards.

A :class:`Nic` is a pair of independent FIFO bandwidth channels (full
duplex).  Rates are expressed as *goodput* — what the application sees after
protocol overheads — matching the paper's methodology ("NIC goodput
~92 Gbps" for a 100 Gbps ConnectX-5).
"""

from __future__ import annotations

from repro.sim.core import Environment
from repro.sim.resources import BandwidthChannel

GBPS = 1_000_000_000 / 8  # bytes/s per Gbps

#: Goodput of the paper's 100 Gbps NIC (~92 Gbps on the wire).
GOODPUT_100G = 92 * GBPS
#: Goodput of the paper's 25 Gbps NIC (~23 Gbps).
GOODPUT_25G = 23 * GBPS


class Nic:
    """A full-duplex NIC with FIFO per-direction bandwidth queues."""

    def __init__(
        self,
        env: Environment,
        rate_bytes_per_s: float = GOODPUT_100G,
        name: str = "nic",
    ) -> None:
        self.env = env
        self.name = name
        self.tx = BandwidthChannel(env, rate_bytes_per_s, name=f"{name}.tx")
        self.rx = BandwidthChannel(env, rate_bytes_per_s, name=f"{name}.rx")
        self._base_rate = float(rate_bytes_per_s)

    @property
    def rate_bytes_per_s(self) -> float:
        return self.tx.rate_bytes_per_s

    def degrade(self, factor: float) -> None:
        """Fault injection: scale both directions to ``factor`` × the base
        rate (0 < factor <= 1).  New transfers see the degraded rate;
        already-queued transfers keep their reserved completion times."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degrade factor must be in (0, 1], got {factor}")
        self.tx.rate_bytes_per_s = self._base_rate * factor
        self.rx.rate_bytes_per_s = self._base_rate * factor

    def restore(self) -> None:
        """Undo :meth:`degrade`."""
        self.tx.rate_bytes_per_s = self._base_rate
        self.rx.rate_bytes_per_s = self._base_rate

    @property
    def tx_bytes(self) -> int:
        return self.tx.bytes_transferred

    @property
    def rx_bytes(self) -> int:
        return self.rx.bytes_transferred

    def available_bandwidth(self, window_ns: int) -> float:
        """Estimated spare TX bandwidth (bytes/s) given the current backlog.

        Used by the bandwidth-aware reconstruction algorithm (§6.2): a NIC
        with a deep TX backlog has little headroom to serve as reducer.
        """
        backlog = self.tx.backlog_ns()
        if window_ns <= 0:
            raise ValueError("window must be positive")
        free_fraction = max(0.0, 1.0 - backlog / window_ns)
        return self.rate_bytes_per_s * free_fraction

    def reset_accounting(self) -> None:
        self.tx.reset_accounting()
        self.rx.reset_accounting()

    def __repr__(self) -> str:
        return f"<Nic {self.name} {self.rate_bytes_per_s * 8 / 1e9:.0f}Gbps>"
