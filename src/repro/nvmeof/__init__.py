"""Standard NVMe-over-Fabrics: commands, targets and initiators.

This is the baseline remote-storage protocol (§2.2): the host sends a
command capsule over an RDMA RC queue pair; for writes the target pulls the
payload with a one-sided READ, for reads it pushes the payload back with
the response.  The Linux-MD and SPDK-POC baseline RAID controllers are
built purely on this layer; dRAID extends the target with additional
opcodes (:mod:`repro.draid`).
"""

from repro.nvmeof.messages import IoError, NvmeOfCommand, NvmeOfCompletion, Opcode
from repro.nvmeof.target import NvmeOfTarget
from repro.nvmeof.initiator import RemoteBdev

__all__ = [
    "IoError",
    "NvmeOfCommand",
    "NvmeOfCompletion",
    "NvmeOfTarget",
    "Opcode",
    "RemoteBdev",
]
