"""The NVMe-oF initiator: a host-side handle to one remote drive.

A :class:`RemoteBdev` turns the message exchange with a target into plain
``read``/``write`` calls returning completion events, which is the
interface the baseline RAID controllers program against.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cluster.machines import HostMachine
from repro.net.fabric import ConnectionEnd
from repro.nvmeof.messages import (
    IoError,
    NvmeOfCommand,
    NvmeOfCompletion,
    Opcode,
    next_cid,
)
from repro.qos.errors import Busy, DeadlineExceeded
from repro.sim.core import Environment, Event


def completion_error(name: str, completion: NvmeOfCompletion) -> IoError:
    """Map a failed completion to its typed exception.

    ``status == "busy"`` (queue-full fast-reject) and ``"deadline"``
    (expired at the target) get their :mod:`repro.qos.errors` subclasses so
    overload-aware callers can tell shed work from real faults; everything
    else stays a plain :class:`IoError`.
    """
    message = f"{name}: {completion.error}"
    if completion.status == "busy":
        return Busy(message)
    if completion.status == "deadline":
        return DeadlineExceeded(message)
    return IoError(message)


class RemoteBdev:
    """Host-side view of one remote NVMe namespace over NVMe-oF."""

    def __init__(self, host: HostMachine, end: ConnectionEnd, name: str = "bdev") -> None:
        self.env: Environment = host.env
        self.host = host
        self.end = end
        self.name = name
        self._pending: Dict[int, Event] = {}
        #: sim time of the last completion seen from this member — the
        #: liveness signal prolonged-failure fencing keys off (§5.4)
        self.last_completion_ns = 0
        #: Observability: armed by the controller when ``cluster.obs`` is set.
        self.tracer = None
        #: Verification: armed by the controller when ``cluster.verify`` is
        #: set — a :class:`repro.verify.ProtocolChecker` watching the
        #: completion stream for duplicate acks.
        self.verifier = None
        #: Overload control: armed by the controller when the circuit
        #: breaker is on — called with each completion's ``ok`` so the
        #: per-member EWMA error rate sees this member's result stream.
        self.on_result = None
        #: cid -> (reserved envelope context, submit time ns, op name)
        self._inflight_spans: Dict[int, Any] = {}
        self._receiver = self.env.process(self._receive(), name=f"{name}.cq")

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def _receive(self):
        while True:
            completion: NvmeOfCompletion = yield self.end.recv()
            self.last_completion_ns = self.env.now
            if self.verifier is not None:
                self.verifier.on_nvmeof_completion(
                    self.name, completion.cid, completion.ok
                )
            if self._inflight_spans:
                entry = self._inflight_spans.pop(completion.cid, None)
                if entry is not None:
                    ectx, start_ns, op = entry
                    self.tracer.record_at(
                        ectx, f"{self.name}.{op}", "rpc",
                        f"host.{self.name}", start_ns, self.env.now,
                    )
            if self.on_result is not None:
                self.on_result(completion.ok)
            event = self._pending.pop(completion.cid, None)
            if event is None or event.triggered:
                continue  # late completion for a timed-out command
            if completion.ok:
                event.succeed(completion.data)
            else:
                event.fail(completion_error(self.name, completion))

    def _submit(
        self, opcode: Opcode, offset: int, length: int, data: Any = None,
        ctx: Any = None, deadline_ns: Any = None,
    ) -> Event:
        command = NvmeOfCommand(
            next_cid(), opcode, offset, length, data=data, deadline_ns=deadline_ns
        )
        if self.tracer is not None and ctx is not None:
            # Reserve the remote-op envelope span now so the capsule, target
            # and drive spans nest under it; its end is recorded on completion.
            ectx = self.tracer.derive(ctx)
            command.trace = ectx
            self._inflight_spans[command.cid] = (ectx, self.env.now, opcode.value)
        completion = self.env.event()
        self._pending[command.cid] = completion
        # Write payloads are pulled by the target via one-sided READ after
        # the capsule arrives, so the capsule itself is header-only.
        self.end.send(command)
        return completion

    def read(
        self, offset: int, length: int, ctx: Any = None, deadline_ns: Any = None
    ) -> Event:
        """Completion event whose value is the data (functional mode)."""
        return self._submit(Opcode.READ, offset, length, ctx=ctx,
                            deadline_ns=deadline_ns)

    def write(
        self, offset: int, length: int, data: Any = None, ctx: Any = None,
        deadline_ns: Any = None,
    ) -> Event:
        return self._submit(Opcode.WRITE, offset, length, data=data, ctx=ctx,
                            deadline_ns=deadline_ns)

    def cancel(self, event: Event) -> None:
        """Abandon a pending command (used by timeout handling)."""
        for cid, pending in list(self._pending.items()):
            if pending is event:
                del self._pending[cid]
                return
