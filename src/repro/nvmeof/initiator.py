"""The NVMe-oF initiator: a host-side handle to one remote drive.

A :class:`RemoteBdev` turns the message exchange with a target into plain
``read``/``write`` calls returning completion events, which is the
interface the baseline RAID controllers program against.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cluster.machines import HostMachine
from repro.net.fabric import ConnectionEnd
from repro.nvmeof.messages import (
    IoError,
    NvmeOfCommand,
    NvmeOfCompletion,
    Opcode,
    next_cid,
)
from repro.sim.core import Environment, Event


class RemoteBdev:
    """Host-side view of one remote NVMe namespace over NVMe-oF."""

    def __init__(self, host: HostMachine, end: ConnectionEnd, name: str = "bdev") -> None:
        self.env: Environment = host.env
        self.host = host
        self.end = end
        self.name = name
        self._pending: Dict[int, Event] = {}
        #: sim time of the last completion seen from this member — the
        #: liveness signal prolonged-failure fencing keys off (§5.4)
        self.last_completion_ns = 0
        self._receiver = self.env.process(self._receive(), name=f"{name}.cq")

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def _receive(self):
        while True:
            completion: NvmeOfCompletion = yield self.end.recv()
            self.last_completion_ns = self.env.now
            event = self._pending.pop(completion.cid, None)
            if event is None or event.triggered:
                continue  # late completion for a timed-out command
            if completion.ok:
                event.succeed(completion.data)
            else:
                event.fail(IoError(f"{self.name}: {completion.error}"))

    def _submit(self, opcode: Opcode, offset: int, length: int, data: Any = None) -> Event:
        command = NvmeOfCommand(next_cid(), opcode, offset, length, data=data)
        completion = self.env.event()
        self._pending[command.cid] = completion
        # Write payloads are pulled by the target via one-sided READ after
        # the capsule arrives, so the capsule itself is header-only.
        self.end.send(command)
        return completion

    def read(self, offset: int, length: int) -> Event:
        """Completion event whose value is the data (functional mode)."""
        return self._submit(Opcode.READ, offset, length)

    def write(self, offset: int, length: int, data: Any = None) -> Event:
        return self._submit(Opcode.WRITE, offset, length, data=data)

    def cancel(self, event: Event) -> None:
        """Abandon a pending command (used by timeout handling)."""
        for cid, pending in list(self._pending.items()):
            if pending is event:
                del self._pending[cid]
                return
