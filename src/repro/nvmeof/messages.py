"""NVMe-oF wire messages.

These objects ride inside simulated command capsules; the network layer
charges their on-wire size separately, so they may carry real payload
arrays in functional mode without affecting timing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

#: On-wire size of a completion queue entry (+ transport framing).
RESPONSE_BYTES = 64

_cid_counter = itertools.count(1)


def next_cid() -> int:
    """Globally unique command identifier."""
    return next(_cid_counter)


class Opcode(Enum):
    """Standard NVMe-oF I/O opcodes (dRAID's extensions live in
    :mod:`repro.draid.protocol`)."""

    READ = "read"
    WRITE = "write"


class IoError(RuntimeError):
    """A remote I/O failed (drive fault, injected error, timeout)."""


@dataclass
class NvmeOfCommand:
    """A read or write submitted to a remote target."""

    cid: int
    opcode: Opcode
    offset: int
    length: int
    #: Payload for functional-mode writes (timing mode: None).
    data: Optional[Any] = None
    #: Observability: :class:`repro.obs.TraceContext` of the traced request
    #: this command belongs to (None when tracing is unarmed).
    trace: Optional[Any] = None
    #: Overload control: absolute sim-time deadline in ns — a target that
    #: dequeues the command after this instant fast-fails it instead of
    #: doing work the initiator has already abandoned (None = no deadline).
    deadline_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"command length must be positive, got {self.length}")
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")


@dataclass
class NvmeOfCompletion:
    """Response to a command."""

    cid: int
    ok: bool
    #: Read payload in functional mode.
    data: Optional[Any] = None
    error: Optional[str] = None
    #: Observability: trace context of the originating command, so the
    #: response capsule's wire time is attributed to the same request.
    trace: Optional[Any] = None
    #: Overload control: typed failure class — "busy" (queue-full
    #: fast-reject) or "deadline" (command expired at the target); None for
    #: success and ordinary errors.
    status: Optional[str] = None
