"""The NVMe-oF target: server-side command service loop.

One target runs per storage server.  It polls the host-facing connection
end for command capsules and services each in its own process so that
drive-internal parallelism is exploitable.  Per the paper's constraint
(§7), all command parsing and completion work serializes on the server's
single poll-mode core.

Fault injection knobs (used by the failure-handling tests):

* ``stall_ns`` — freeze command intake for a period (network jitter /
  transient outage); commands arriving meanwhile sit in the inbox.
* failed drives produce error completions rather than silent hangs.

Overload control (armed via ``queue_depth``): the per-connection
submission queue is bounded — a command arriving while ``queue_depth``
commands are in service is fast-rejected with a typed ``"busy"``
completion instead of growing the queue without bound, and a command
dequeued past its ``deadline_ns`` is fast-failed with ``"deadline"``
rather than serviced for an initiator that already gave up.  With the
knob unset the historic unbounded behavior is preserved exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.machines import StorageServer
from repro.net.fabric import ConnectionEnd
from repro.nvmeof.messages import (
    RESPONSE_BYTES,
    NvmeOfCommand,
    NvmeOfCompletion,
    Opcode,
)
from repro.sim.core import Environment
from repro.storage.drive import DriveFailedError


class NvmeOfTarget:
    """Serves standard NVMe-oF reads/writes for one storage server."""

    def __init__(
        self,
        server: StorageServer,
        host_end: ConnectionEnd,
        queue_depth: Optional[int] = None,
    ) -> None:
        if queue_depth is not None and queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        self.env: Environment = server.env
        self.server = server
        self.host_end = host_end
        self.stall_ns = 0
        self.down_until = 0
        self.crashes = 0
        self.commands_served = 0
        #: Overload control: max in-service commands (None = unbounded).
        self.queue_depth = queue_depth
        self.inflight = 0
        self.busy_rejections = 0
        self.deadline_rejections = 0
        #: Observability: armed by the controller when ``cluster.obs`` is set.
        self.tracer = None
        self._service = self.env.process(self._serve(), name=f"{server.name}.nvmf")

    def crash(self, down_ns: int) -> None:
        """Fault injection: crash the server process for ``down_ns``.

        Every queued command capsule is lost, and capsules arriving while
        the target is down are dropped without a completion — the host only
        finds out via its own timeout (§5.4).
        """
        if down_ns <= 0:
            raise ValueError(f"crash duration must be positive, got {down_ns}")
        self.down_until = max(self.down_until, self.env.now + down_ns)
        self.crashes += 1
        self.host_end.inbox.clear()

    def _serve(self):
        while True:
            command = yield self.host_end.recv()
            if self.env.now < self.down_until:
                continue  # crashed: capsule lost, no completion ever sent
            if self.stall_ns:
                # transient outage: the target freezes, capsules queue up
                yield self.env.timeout(self.stall_ns)
                self.stall_ns = 0
            if self.queue_depth is None:
                self.env.process(self._handle(command), name=f"{self.server.name}.cmd")
                continue
            if self.inflight >= self.queue_depth:
                # bounded submission queue: typed fast-reject, no datapath
                # work and no CPU charge (the reject path must stay cheap)
                self.busy_rejections += 1
                self.host_end.send(
                    NvmeOfCompletion(
                        command.cid, ok=False,
                        error=f"{self.server.name}: submission queue full",
                        trace=command.trace, status="busy",
                    ),
                    payload_bytes=0,
                    header_bytes=RESPONSE_BYTES,
                )
                continue
            self.inflight += 1
            self.env.process(
                self._handle_bounded(command), name=f"{self.server.name}.cmd"
            )

    def _handle_bounded(self, command: NvmeOfCommand):
        """Wrap :meth:`_handle` with in-service accounting (armed only)."""
        try:
            yield from self._handle(command)
        finally:
            self.inflight -= 1

    def _handle(self, command: NvmeOfCommand):
        if command.deadline_ns is not None and self.env.now >= command.deadline_ns:
            # stale command: the initiator's budget is already spent, so
            # answer immediately instead of burning drive/CPU time on it
            self.deadline_rejections += 1
            self.host_end.send(
                NvmeOfCompletion(
                    command.cid, ok=False,
                    error=f"{self.server.name}: deadline exceeded at target",
                    trace=command.trace, status="deadline",
                ),
                payload_bytes=0,
                header_bytes=RESPONSE_BYTES,
            )
            return
        cpu = self.server.cpu
        profile = self.server.cpu_profile
        tracer = self.tracer
        ctx = command.trace if tracer is not None else None
        track = f"{self.server.name}.cpu"
        t0 = self.env.now
        yield cpu.execute(profile.cmd_handle_ns)
        if ctx is not None:
            tracer.record(ctx, "nvmf.parse", "compute", track, t0, self.env.now)
        try:
            if command.opcode is Opcode.READ:
                data = yield self.server.drive.read(
                    command.offset, command.length, ctx=ctx
                )
                t0 = self.env.now
                yield cpu.execute(profile.completion_ns)
                if ctx is not None:
                    tracer.record(ctx, "nvmf.complete", "compute", track, t0, self.env.now)
                # read payload rides back with the response
                self.host_end.send(
                    NvmeOfCompletion(command.cid, ok=True, data=data, trace=ctx),
                    payload_bytes=command.length,
                    header_bytes=RESPONSE_BYTES,
                )
            else:
                # target pulls the payload from host memory (one-sided READ)
                yield self.host_end.rdma_read(command.length, ctx=ctx)
                yield self.server.drive.write(
                    command.offset, command.length, command.data, ctx=ctx
                )
                t0 = self.env.now
                yield cpu.execute(profile.completion_ns)
                if ctx is not None:
                    tracer.record(ctx, "nvmf.complete", "compute", track, t0, self.env.now)
                self.host_end.send(
                    NvmeOfCompletion(command.cid, ok=True, trace=ctx),
                    payload_bytes=0,
                    header_bytes=RESPONSE_BYTES,
                )
        except (DriveFailedError, ValueError) as exc:
            self.host_end.send(
                NvmeOfCompletion(command.cid, ok=False, error=str(exc), trace=ctx),
                payload_bytes=0,
                header_bytes=RESPONSE_BYTES,
            )
        self.commands_served += 1
