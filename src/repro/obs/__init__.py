"""``repro.obs``: zero-cost-when-disabled tracing and utilization observability.

Arm a cluster by passing ``ClusterConfig(observability=ObservabilityConfig())``
to :func:`repro.cluster.builder.build_cluster`.  That attaches an
:class:`Observability` hub to ``cluster.obs`` — a :class:`~repro.obs.trace.Tracer`
that components record spans into, plus a
:class:`~repro.obs.sampler.UtilizationSampler` ready to be started around a
measurement window.  When the knob is left ``None`` (the default), every
instrumentation site short-circuits on a single ``is None`` check, no trace
context objects are created, and no sampling events are scheduled — runs are
byte-identical to an unobserved simulation.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and how to open an
exported trace in Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.sampler import RESOURCE_CLASSES, BottleneckReport, UtilizationSampler
from repro.obs.trace import (
    CATEGORY_PRIORITY,
    Span,
    TraceContext,
    Tracer,
    breakdown_table,
    chrome_trace_events,
    chrome_trace_json,
    request_breakdowns,
    validate_chrome_trace,
)

__all__ = [
    "ObservabilityConfig",
    "Observability",
    "Tracer",
    "TraceContext",
    "Span",
    "CATEGORY_PRIORITY",
    "chrome_trace_events",
    "chrome_trace_json",
    "validate_chrome_trace",
    "request_breakdowns",
    "breakdown_table",
    "UtilizationSampler",
    "BottleneckReport",
    "RESOURCE_CLASSES",
]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Knobs for the observability layer of one cluster.

    ``trace`` enables span collection (per-I/O trace contexts threaded
    through the datapath); ``sample_interval_ns`` sets the utilization
    sampler's period in simulated nanoseconds.  The sampler is created
    either way but only runs between explicit ``start()``/``stop()`` calls.
    """

    trace: bool = True
    sample_interval_ns: int = 200_000


class Observability:
    """Per-cluster observability hub: one tracer plus one sampler.

    Built by :func:`repro.cluster.builder.build_cluster` when
    ``ClusterConfig.observability`` is set; arming wires the tracer into
    the fabric and every drive so transport- and media-level spans are
    recorded without per-call plumbing.
    """

    def __init__(self, cluster: Any, config: ObservabilityConfig) -> None:
        self.config = config
        self.cluster = cluster
        self.tracer: Optional[Tracer] = Tracer() if config.trace else None
        self.sampler = UtilizationSampler(cluster, config.sample_interval_ns)
        cluster.fabric.tracer = self.tracer
        for server in cluster.servers:
            for drive in server.drives:
                drive._tracer = self.tracer
