"""Periodic utilization sampling and bottleneck attribution.

:class:`UtilizationSampler` is a simulation process that wakes every
``interval_ns`` and snapshots the busy counters of every shared resource
in a cluster — NIC duplex occupancy (tx/rx separately), per-drive busy
fraction and queue depth, per-core CPU busy, and stripe-lock contention.
Each sample stores *deltas* over the interval, so warmup traffic before
``start()`` never skews the numbers.

Sampling is read-only: the only events it adds to the calendar are its
own wakeup timers, so an armed sampler cannot change the behaviour of the
workload it observes (and runs must remain seeded-deterministic).  The
sampler must be started *and stopped* explicitly around the measurement
window — it never free-runs, so a plain ``env.run()`` cannot hang on it.

:meth:`UtilizationSampler.report` folds the samples into a
:class:`BottleneckReport` naming the saturated resource class, which the
``obs`` experiment uses to reproduce the paper's attribution (MD is
host-NIC-bound; dRAID at 4 KB is drive-bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["UtilizationSampler", "BottleneckReport", "RESOURCE_CLASSES"]

#: Resource classes a :class:`BottleneckReport` can name as the bottleneck,
#: each a mean busy fraction in ``[0, 1]`` (values slightly above 1 are
#: possible for drives when queued access latency overlaps).
RESOURCE_CLASSES = (
    "host-nic",
    "server-nic",
    "drive",
    "host-cpu",
    "server-cpu",
    "raid-thread",
)


@dataclass
class BottleneckReport:
    """Aggregated utilization per resource class plus the saturated one.

    ``utilization`` maps each of :data:`RESOURCE_CLASSES` (plus the
    informational ``host-nic-tx``/``host-nic-rx`` duplex split,
    ``drive-queue`` mean queued work per drive in microseconds, and
    ``lock-waiters`` mean stripe-lock waiter count) to its mean over the
    sampled window.  ``bottleneck`` is the
    class with the highest mean busy fraction.
    """

    bottleneck: str
    utilization: Dict[str, float]
    samples: int
    window_ns: int

    def render(self) -> str:
        """Human-readable multi-line summary of the report."""
        lines = [
            f"bottleneck: {self.bottleneck}"
            f"  ({self.samples} samples over {self.window_ns / 1e6:.2f} ms)"
        ]
        for key in RESOURCE_CLASSES:
            if key in self.utilization:
                lines.append(f"  {key:>12}: {self.utilization[key] * 100:6.1f}% busy")
        for key in ("host-nic-tx", "host-nic-rx"):
            if key in self.utilization:
                lines.append(f"  {key:>12}: {self.utilization[key] * 100:6.1f}% busy")
        if "drive-queue" in self.utilization:
            lines.append(
                f"  {'drive-queue':>12}: {self.utilization['drive-queue']:6.2f} us queued"
            )
        if "lock-waiters" in self.utilization:
            lines.append(f"  {'lock-waiters':>12}: {self.utilization['lock-waiters']:6.2f} waiting")
        return "\n".join(lines)


class _Counter:
    """Delta tracker over one monotonically increasing counter."""

    __slots__ = ("read", "last")

    def __init__(self, read) -> None:
        self.read = read
        self.last = 0

    def rebase(self) -> None:
        self.last = self.read()

    def delta(self) -> int:
        value = self.read()
        out = value - self.last
        self.last = value
        return out


class UtilizationSampler:
    """Samples cluster resource occupancy every ``interval_ns`` of sim time.

    Parameters
    ----------
    cluster:
        The :class:`repro.cluster.builder.Cluster` to observe.
    interval_ns:
        Sampling period in simulated nanoseconds (default 200 µs).
    """

    def __init__(self, cluster: Any, interval_ns: int = 200_000) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.cluster = cluster
        self.env = cluster.env
        self.interval_ns = int(interval_ns)
        self.samples: List[Dict[str, float]] = []
        self._running = False
        self._arrays: List[Any] = []
        self._counters: Dict[str, _Counter] = {}
        self._drive_counters: List[Dict[str, _Counter]] = []

    # -- wiring -------------------------------------------------------------

    def attach_array(self, array: Any) -> None:
        """Include a controller's stripe locks (and MD's raid thread) in sampling."""
        if array not in self._arrays:
            self._arrays.append(array)

    def _build_counters(self) -> None:
        cluster = self.cluster
        counters: Dict[str, _Counter] = {}
        host_nic = cluster.host.nic
        counters["host-nic-tx"] = _Counter(lambda c=host_nic.tx: c.busy_ns)
        counters["host-nic-rx"] = _Counter(lambda c=host_nic.rx: c.busy_ns)
        for i, server in enumerate(cluster.servers):
            for j, nic in enumerate(server.nics):
                counters[f"s{i}-nic{j}-tx"] = _Counter(lambda c=nic.tx: c.busy_ns)
                counters[f"s{i}-nic{j}-rx"] = _Counter(lambda c=nic.rx: c.busy_ns)
        for core in cluster.host.cores:
            counters[f"host-{core.name}"] = _Counter(lambda c=core: c.busy_ns)
        for i, server in enumerate(cluster.servers):
            for core in server.cores:
                counters[f"s{i}-{core.name}"] = _Counter(lambda c=core: c.busy_ns)
        for array in self._arrays:
            thread = getattr(array, "md_thread", None)
            if thread is not None:
                counters[f"raid-thread-{array.name}"] = _Counter(lambda c=thread: c.busy_ns)
        self._counters = counters
        self._drive_counters = []
        for server in cluster.servers:
            for drive in server.drives:
                self._drive_counters.append(
                    {
                        "busy": _Counter(lambda d=drive: d.stats.busy_ns),
                        "reads": _Counter(lambda d=drive: d.stats.read_ops),
                        "writes": _Counter(lambda d=drive: d.stats.write_ops),
                    }
                )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin sampling at ``env.now``; rebases all counters first."""
        if self._running:
            return
        self._build_counters()
        for counter in self._counters.values():
            counter.rebase()
        for group in self._drive_counters:
            for counter in group.values():
                counter.rebase()
        self._running = True
        self.env.process(self._run(), name="obs.sampler")

    def stop(self) -> None:
        """Stop sampling after the currently pending wakeup (if any)."""
        self._running = False

    def _run(self):
        interval = self.interval_ns
        while self._running:
            yield self.env.timeout(interval)
            if not self._running:
                break
            self.samples.append(self._snapshot(interval))

    # -- measurement --------------------------------------------------------

    def _snapshot(self, interval: int) -> Dict[str, float]:
        cluster = self.cluster
        sample: Dict[str, float] = {"t_ns": float(self.env.now)}
        nic_busy: Dict[str, float] = {}
        cpu_busy: Dict[str, float] = {}
        thread_busy = 0.0
        for key, counter in self._counters.items():
            frac = counter.delta() / interval
            if key.startswith("host-nic"):
                sample[key] = frac
            elif "-nic" in key:
                nic_busy[key] = frac
            elif key.startswith("raid-thread"):
                thread_busy = max(thread_busy, frac)
            elif key.startswith("host-"):
                cpu_busy.setdefault("host", 0.0)
                cpu_busy["host"] += frac
            else:
                cpu_busy.setdefault("server", 0.0)
                cpu_busy["server"] += frac
        sample["host-nic"] = max(sample.get("host-nic-tx", 0.0), sample.get("host-nic-rx", 0.0))
        sample["server-nic"] = max(nic_busy.values(), default=0.0)
        host_cores = len(cluster.host.cores)
        server_cores = sum(len(s.cores) for s in cluster.servers)
        sample["host-cpu"] = cpu_busy.get("host", 0.0) / max(1, host_cores)
        sample["server-cpu"] = cpu_busy.get("server", 0.0) / max(1, server_cores)
        sample["raid-thread"] = thread_busy
        drive_utils: List[float] = []
        queue_depths: List[float] = []
        drives = [d for server in cluster.servers for d in server.drives]
        for drive, group in zip(drives, self._drive_counters):
            profile = drive.profile
            busy = group["busy"].delta()
            # Channel-transfer busy plus NAND access occupancy: each op holds
            # an internal die for its access latency even though the latency
            # does not serialize on the transfer channel.  This captures the
            # IOPS-boundness of small random I/O the way §2.3 describes it.
            occupancy = busy + (
                group["reads"].delta() * profile.read_latency_ns
                + group["writes"].delta() * profile.write_latency_ns
            )
            drive_utils.append(occupancy / (interval * profile.parallelism))
            queue_depths.append(drive.backlog_ns() / 1000.0)
        sample["drive"] = sum(drive_utils) / max(1, len(drive_utils))
        sample["drive-queue"] = sum(queue_depths) / max(1, len(queue_depths))
        waiters = 0
        for array in self._arrays:
            locks = getattr(array, "locks", None)
            if locks is not None:
                waiters += sum(len(q) for q in locks._waiting.values())
        sample["lock-waiters"] = float(waiters)
        return sample

    def report(self, window_start_ns: Optional[int] = None) -> BottleneckReport:
        """Aggregate samples (optionally only those at/after ``window_start_ns``).

        Means every sampled key over the window and names the resource
        class with the highest mean busy fraction as the bottleneck.
        """
        samples = self.samples
        if window_start_ns is not None:
            samples = [s for s in samples if s["t_ns"] >= window_start_ns]
        if not samples:
            return BottleneckReport("idle", {}, 0, 0)
        keys = [k for k in samples[0] if k != "t_ns"]
        means = {k: sum(s.get(k, 0.0) for s in samples) / len(samples) for k in keys}
        # Utilization above 1.0 only signals saturation (the drive occupancy
        # proxy can overstate overlapped access work), so clamp before
        # comparing; ties between saturated resources go to the class listed
        # first in RESOURCE_CLASSES — the one closest to the host.
        bottleneck, best = "idle", 0.0
        for key in RESOURCE_CLASSES:
            value = min(1.0, means.get(key, 0.0))
            if value > best:
                bottleneck, best = key, value
        window = int(samples[-1]["t_ns"] - samples[0]["t_ns"]) + self.interval_ns
        return BottleneckReport(bottleneck, means, len(samples), window)
