"""Distributed tracing on the simulated clock.

A :class:`Tracer` collects :class:`Span` records — closed intervals of
simulated time (integer nanoseconds) attributed to one *cause category*
(queue-wait, transfer, compute, disk, lock-wait, backoff, rpc) on one
*track* (a host core, a NIC link, a drive, a server CPU).  Spans are
recorded *after the fact*: instrumentation captures ``env.now`` before a
yield, waits, then calls :meth:`Tracer.record` — no open-span state ever
crosses a generator yield, so arming the tracer cannot perturb the event
sequence of a run.

Trace identity is carried through the datapath by tiny
:class:`TraceContext` handles (trace id + span id) attached to commands
and messages.  :func:`chrome_trace_events` exports everything as Chrome
trace-event JSON (the ``"X"`` complete-event flavour) loadable in
Perfetto / ``chrome://tracing``; :func:`request_breakdowns` computes a
per-request critical-path partition whose parts sum *exactly* to the
request's end-to-end latency.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "CATEGORY_PRIORITY",
    "chrome_trace_events",
    "chrome_trace_json",
    "validate_chrome_trace",
    "request_breakdowns",
    "breakdown_table",
]

#: Cause categories in *attribution priority* order: when several spans of
#: one request overlap an instant, the critical-path breakdown charges that
#: instant to the earliest category in this tuple.  ``"rpc"`` (the remote-op
#: envelope, covering its children) ranks last so an instant inside an
#: envelope is charged to whatever the remote side was actually doing;
#: instants covered by no span at all are charged to ``"other"``.
CATEGORY_PRIORITY = (
    "disk",
    "transfer",
    "compute",
    "queue-wait",
    "lock-wait",
    "backoff",
    "rpc",
)

#: Catch-all category for instants of a request covered by no child span
#: (host-side gaps, propagation already folded into a parent, inbox waits).
OTHER_CATEGORY = "other"

#: Category of root (whole-request) spans.
REQUEST_CATEGORY = "request"


class TraceContext:
    """A lightweight handle naming one node of one trace tree.

    ``trace_id`` groups all spans of a single host I/O; ``span_id`` is the
    identity spans recorded *under* this context use as their parent.
    ``parent_id`` remembers this node's own parent so the span for a
    *reserved* context (see :meth:`Tracer.derive`) can be recorded after
    its children have already referenced it.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int]) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One closed interval of simulated time attributed to a cause.

    ``start_ns``/``end_ns`` are absolute simulated nanoseconds; ``cat`` is
    one of :data:`CATEGORY_PRIORITY` plus ``"request"``; ``track`` names
    the resource timeline the span renders on (e.g. ``"host.cpu"``,
    ``"net.host-s3"``, ``"s3.drive"``).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "cat",
        "track",
        "start_ns",
        "end_ns",
        "args",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        cat: str,
        track: str,
        start_ns: int,
        end_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.track = track
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.args = args

    @property
    def duration_ns(self) -> int:
        """Span length in simulated nanoseconds."""
        return self.end_ns - self.start_ns


class Tracer:
    """Collects spans for every traced request of one simulation run.

    All ids (trace ids, span ids) are allocated in execution order from
    plain counters, so two runs with identical event sequences produce
    byte-identical traces.  The tracer never schedules simulation events;
    it only appends to a Python list.
    """

    __slots__ = ("spans", "_next_trace_id", "_next_span_id")

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_trace_id = 1
        self._next_span_id = 1

    # -- context plumbing ---------------------------------------------------

    def new_request(self) -> TraceContext:
        """Open a fresh trace for one host I/O; returns its root context.

        The root *span* is recorded later via :meth:`record_root` once the
        request completes and its end time is known.
        """
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        span_id = self._next_span_id
        self._next_span_id += 1
        return TraceContext(trace_id, span_id, None)

    def derive(self, parent: TraceContext) -> TraceContext:
        """Reserve a child context (e.g. a remote-op envelope) under ``parent``.

        Children may record against the reserved span id immediately; the
        envelope span itself is filled in later with :meth:`record_at`.
        """
        span_id = self._next_span_id
        self._next_span_id += 1
        return TraceContext(parent.trace_id, span_id, parent.span_id)

    # -- recording ----------------------------------------------------------

    def record(
        self,
        ctx: TraceContext,
        name: str,
        cat: str,
        track: str,
        start_ns: int,
        end_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a child span of ``ctx`` covering ``[start_ns, end_ns]``.

        Zero-length spans are dropped — they carry no time attribution and
        only bloat exports.
        """
        if end_ns <= start_ns:
            return
        span_id = self._next_span_id
        self._next_span_id += 1
        self.spans.append(
            Span(ctx.trace_id, span_id, ctx.span_id, name, cat, track, start_ns, end_ns, args)
        )

    def record_at(
        self,
        ctx: TraceContext,
        name: str,
        cat: str,
        track: str,
        start_ns: int,
        end_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record the span for a *reserved* context (from :meth:`derive`).

        Used for remote-op envelopes whose end time is only known at
        completion, after children have already recorded under the
        reserved id.
        """
        if end_ns <= start_ns:
            return
        self.spans.append(
            Span(ctx.trace_id, ctx.span_id, ctx.parent_id, name, cat, track, start_ns, end_ns, args)
        )

    def record_root(
        self,
        ctx: TraceContext,
        name: str,
        track: str,
        start_ns: int,
        end_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record the whole-request root span for ``ctx`` (cat ``request``)."""
        self.spans.append(
            Span(
                ctx.trace_id,
                ctx.span_id,
                None,
                name,
                REQUEST_CATEGORY,
                track,
                start_ns,
                end_ns,
                args,
            )
        )


# -- Chrome trace-event export ---------------------------------------------


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Render a tracer's spans as Chrome trace-event dicts.

    Produces ``"M"`` metadata events naming the process/threads followed by
    one ``"X"`` complete event per span (``ts``/``dur`` in microseconds, as
    the format requires).  Track-to-tid assignment sorts track names, so
    identical span sets export byte-identically regardless of recording
    interleaving.
    """
    tracks = sorted({span.track for span in tracer.spans})
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[track],
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for span in sorted(tracer.spans, key=lambda s: (s.start_ns, s.span_id)):
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.args:
            args.update(span.args)
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.cat,
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "args": args,
            }
        )
    return events


def chrome_trace_json(tracer: Tracer) -> str:
    """Serialize :func:`chrome_trace_events` as a Perfetto-loadable JSON string."""
    payload = {
        "displayTimeUnit": "ns",
        "traceEvents": chrome_trace_events(tracer),
    }
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def validate_chrome_trace(trace: Any) -> None:
    """Check a parsed trace object against the Chrome trace-event schema.

    Accepts either the JSON-object form (``{"traceEvents": [...]}``) or a
    bare event list.  Raises :class:`ValueError` on the first violation.
    """
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object must carry a 'traceEvents' list")
    elif isinstance(trace, list):
        events = trace
    else:
        raise ValueError(f"trace must be a dict or list, got {type(trace).__name__}")
    if not events:
        raise ValueError("trace contains no events")
    saw_complete = False
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        ph = event.get("ph")
        if ph not in ("X", "M"):
            raise ValueError(f"event {i}: unsupported phase {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"event {i}: missing name")
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            raise ValueError(f"event {i}: pid/tid must be integers")
        if ph == "X":
            saw_complete = True
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event {i}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i}: bad dur {dur!r}")
            if not isinstance(event.get("cat"), str):
                raise ValueError(f"event {i}: complete event missing cat")
    if not saw_complete:
        raise ValueError("trace contains no complete ('X') events")


# -- critical-path breakdown -----------------------------------------------


def request_breakdowns(tracer: Tracer) -> List[Dict[str, Any]]:
    """Partition each traced request's latency across cause categories.

    For every root span, a sweep over its child spans (clipped to the root
    interval) charges each instant to the highest-priority covering
    category per :data:`CATEGORY_PRIORITY`; uncovered instants go to
    ``"other"``.  By construction the per-category parts of one request sum
    exactly to its end-to-end duration in nanoseconds.
    """
    by_trace: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    for span in tracer.spans:
        if span.cat == REQUEST_CATEGORY and span.parent_id is None:
            roots.append(span)
        else:
            by_trace.setdefault(span.trace_id, []).append(span)
    rank = {cat: i for i, cat in enumerate(CATEGORY_PRIORITY)}
    breakdowns: List[Dict[str, Any]] = []
    for root in sorted(roots, key=lambda s: (s.start_ns, s.span_id)):
        children = by_trace.get(root.trace_id, ())
        clipped = []
        points = {root.start_ns, root.end_ns}
        for span in children:
            lo = max(span.start_ns, root.start_ns)
            hi = min(span.end_ns, root.end_ns)
            if hi > lo and span.cat in rank:
                clipped.append((lo, hi, rank[span.cat]))
                points.add(lo)
                points.add(hi)
        edges = sorted(points)
        parts: Dict[str, int] = {}
        for lo, hi in zip(edges, edges[1:]):
            best = None
            for s_lo, s_hi, r in clipped:
                if s_lo <= lo and s_hi >= hi and (best is None or r < best):
                    best = r
            cat = CATEGORY_PRIORITY[best] if best is not None else OTHER_CATEGORY
            parts[cat] = parts.get(cat, 0) + (hi - lo)
        breakdowns.append(
            {
                "trace_id": root.trace_id,
                "name": root.name,
                "start_ns": root.start_ns,
                "duration_ns": root.duration_ns,
                "parts": parts,
            }
        )
    return breakdowns


def breakdown_table(breakdowns: Sequence[Dict[str, Any]], limit: int = 20) -> str:
    """Render per-request critical-path breakdowns as a fixed-width table.

    Shows the first ``limit`` requests plus a mean row; all times in
    microseconds.
    """
    cats = list(CATEGORY_PRIORITY) + [OTHER_CATEGORY]
    header_cells = ["trace", "request", "total_us"] + [f"{c}_us" for c in cats]
    data_rows: List[List[str]] = []
    shown = list(breakdowns)[:limit]
    for b in shown:
        cells = [str(b["trace_id"]), b["name"], f"{b['duration_ns'] / 1000:.2f}"]
        cells += [f"{b['parts'].get(c, 0) / 1000:.2f}" for c in cats]
        data_rows.append(cells)
    if breakdowns:
        n = len(breakdowns)
        mean_total = sum(b["duration_ns"] for b in breakdowns) / n / 1000
        mean_cells = ["mean", f"({n} reqs)", f"{mean_total:.2f}"]
        mean_cells += [
            f"{sum(b['parts'].get(c, 0) for b in breakdowns) / n / 1000:.2f}" for c in cats
        ]
        data_rows.append(mean_cells)
    widths = [
        max(len(header_cells[i]), *(len(r[i]) for r in data_rows)) if data_rows else len(header_cells[i])
        for i in range(len(header_cells))
    ]
    lines = ["  ".join(cell.rjust(widths[i]) for i, cell in enumerate(header_cells))]
    for row in data_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
