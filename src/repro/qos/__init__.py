"""Overload control: admission bounds, deadlines, retry budgets, breakers.

Grown out of the paper's §5.5 QoS discussion (the token bucket used for
tenant rate limiting) into the full overload-control layer the ROADMAP's
rack-scale item needs: bounded admission queues with typed
:class:`Busy` fast-rejects, deadline propagation with terminal
:class:`DeadlineExceeded`, SRE-style :class:`RetryBudget` capping retry
amplification during fault storms, priority-aware shedding of background
I/O, and a per-member :class:`CircuitBreaker` that routes degraded reads
through reconstruction instead of a sick member.  Armed per cluster via
``ClusterConfig(overload=OverloadConfig(...))``; with no knobs set the
datapath is byte-identical to an unarmed build.
"""

from repro.qos.admission import (
    AdmissionQueue,
    PRIORITY_BACKGROUND,
    PRIORITY_FOREGROUND,
)
from repro.qos.breaker import CircuitBreaker
from repro.qos.budget import RetryBudget
from repro.qos.control import OverloadConfig, QosControl, QosStats
from repro.qos.errors import Busy, DeadlineExceeded
from repro.qos.fair import FairFlow, WeightedFairQueue
from repro.qos.tokens import NS_PER_S, RateLimitedDevice, TokenBucket

__all__ = [
    "AdmissionQueue",
    "Busy",
    "CircuitBreaker",
    "DeadlineExceeded",
    "FairFlow",
    "NS_PER_S",
    "OverloadConfig",
    "PRIORITY_BACKGROUND",
    "PRIORITY_FOREGROUND",
    "QosControl",
    "QosStats",
    "RateLimitedDevice",
    "RetryBudget",
    "TokenBucket",
    "WeightedFairQueue",
]
