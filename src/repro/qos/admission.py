"""Bounded admission at the host submission boundary.

The paper's testbed (like every real NVMe stack) has finite submission
queues; an unbounded simulated queue hides overload by silently buffering
it.  :class:`AdmissionQueue` is the counting gate a controller consults
*before* doing any datapath work: at capacity, foreground I/O gets a typed
:class:`~repro.qos.errors.Busy` fast-reject (fail fast beats queueing past
the client's patience), and background I/O (scrub, rebuild) is shed
earlier — at the ``background_depth`` watermark — so recovery traffic
yields to foreground before foreground itself starts bouncing.
"""

from __future__ import annotations

from typing import Optional

#: Admission priority classes, in shed order (background sheds first).
PRIORITY_FOREGROUND = "fg"
PRIORITY_BACKGROUND = "bg"


class AdmissionQueue:
    """A two-watermark counting admission gate.

    ``depth`` bounds concurrently admitted I/Os of any class;
    ``background_depth`` (default ``depth // 2``, at least 1) is the lower
    watermark at which background I/O is already turned away.  Purely
    synchronous bookkeeping — admission never waits, it either claims a
    slot or reports the queue full, keeping the reject path free of
    simulated work.
    """

    def __init__(self, depth: int, background_depth: Optional[int] = None) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if background_depth is None:
            background_depth = max(1, depth // 2)
        if not 0 < background_depth <= depth:
            raise ValueError(
                f"background_depth must be in 1..{depth}, got {background_depth}"
            )
        self.depth = depth
        self.background_depth = background_depth
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.shed_background = 0

    def limit_for(self, priority: str) -> int:
        """The occupancy bound that applies to ``priority`` ("fg"/"bg")."""
        return self.depth if priority == PRIORITY_FOREGROUND else self.background_depth

    def try_admit(self, priority: str = PRIORITY_FOREGROUND) -> bool:
        """Claim a slot; False (and a counter bump) when the class is full."""
        if self.inflight >= self.limit_for(priority):
            if priority == PRIORITY_FOREGROUND:
                self.rejected += 1
            else:
                self.shed_background += 1
            return False
        self.inflight += 1
        self.admitted += 1
        return True

    def release(self) -> None:
        """Return a slot claimed by a successful :meth:`try_admit`."""
        if self.inflight <= 0:
            raise RuntimeError("release() without a matching try_admit()")
        self.inflight -= 1

    @property
    def under_pressure(self) -> bool:
        """True when occupancy is at/above the background watermark."""
        return self.inflight >= self.background_depth
