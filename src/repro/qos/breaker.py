"""Per-member circuit breaker on EWMA error/timeout rate.

The :class:`~repro.faults.detect.FailSlowDetector` catches members that
are *slow but correct* by comparing latencies; it is blind to a member
that answers quickly with errors, so retry loops keep hammering it.  The
breaker closes that gap: every member completion feeds a per-member EWMA
of the failure indicator (1 for an error or attributed timeout, 0 for
success), and a member whose rate crosses ``threshold`` is *tripped* —
the controller ejects it through the same path fail-slow ejection uses,
so degraded reads route through reconstruction instead of re-asking the
sick member.  ``cooldown_ns`` (ns of sim time) rate-limits trips so one
error burst cannot cascade into mass ejection.
"""

from __future__ import annotations

from typing import Dict


class CircuitBreaker:
    """EWMA failure-rate tracker with a trip threshold, per member.

    ``threshold`` is the EWMA failure rate (0..1) above which a member
    trips; ``alpha`` the EWMA weight of the newest sample; ``min_samples``
    the observations required before a member may trip (a cold member's
    first error is not a pattern); ``cooldown_ns`` the minimum sim-time
    gap in nanoseconds between any two trips.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        alpha: float = 0.2,
        min_samples: int = 8,
        cooldown_ns: int = 10_000_000,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if cooldown_ns < 0:
            raise ValueError(f"negative cooldown {cooldown_ns}")
        self.threshold = threshold
        self.alpha = alpha
        self.min_samples = min_samples
        self.cooldown_ns = cooldown_ns
        self._rate: Dict[int, float] = {}
        self._samples: Dict[int, int] = {}
        self._last_trip_ns = -1
        self.trips = 0

    def record(self, member: int, ok: bool) -> None:
        """Fold one completion (or attributed timeout) into the member's EWMA."""
        observation = 0.0 if ok else 1.0
        previous = self._rate.get(member, 0.0)
        self._rate[member] = self.alpha * observation + (1.0 - self.alpha) * previous
        self._samples[member] = self._samples.get(member, 0) + 1

    def failure_rate(self, member: int) -> float:
        """The member's current EWMA failure rate (0 when never observed)."""
        return self._rate.get(member, 0.0)

    def should_trip(self, member: int, now_ns: int) -> bool:
        """Whether the member's failure rate warrants ejection right now."""
        if self._samples.get(member, 0) < self.min_samples:
            return False
        if self._rate.get(member, 0.0) <= self.threshold:
            return False
        if self._last_trip_ns >= 0 and now_ns - self._last_trip_ns < self.cooldown_ns:
            return False
        return True

    def note_trip(self, member: int, now_ns: int) -> None:
        """Record that the member was ejected at ``now_ns`` (sim ns)."""
        self.trips += 1
        self._last_trip_ns = now_ns
        # reset so a later re-admission starts from a clean slate
        self._rate[member] = 0.0
        self._samples[member] = 0
