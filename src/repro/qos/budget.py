"""Per-controller retry budget (SRE token-bucket semantics).

During a fault storm every timed-out I/O retries, multiplying offered
load exactly when capacity is lowest — the classic metastable-failure
amplifier.  :class:`RetryBudget` caps that amplification the way the SRE
book's adaptive-throttling rule does: each *successful* request deposits a
fraction of a retry token, each retry spends a whole one, so cluster-wide
retry traffic is bounded to ``deposit_ratio`` of the success rate (plus a
fixed ``burst`` to ride out short blips).  When the budget is dry the
retry loop stops retrying and surfaces a terminal
:class:`~repro.nvmeof.messages.IoError` — shedding work instead of
amplifying it.
"""

from __future__ import annotations


class RetryBudget:
    """Token-style retry budget: retries are a tax on successes.

    ``deposit_ratio`` is the fraction of a retry token earned per
    successful request (0.1 = at most one retry per ten successes, long
    run); ``burst`` is the bucket cap in whole tokens, which is also the
    initial balance.  Purely synchronous and deterministic — no clock, no
    randomness.
    """

    def __init__(self, deposit_ratio: float = 0.1, burst: float = 10.0) -> None:
        if deposit_ratio < 0:
            raise ValueError(f"deposit_ratio must be >= 0, got {deposit_ratio}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.deposit_ratio = float(deposit_ratio)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.granted = 0
        self.denied = 0

    def note_success(self) -> None:
        """Deposit ``deposit_ratio`` of a token (saturating at ``burst``)."""
        self.tokens = min(self.burst, self.tokens + self.deposit_ratio)

    def try_spend(self) -> bool:
        """Spend one token for a retry; False when the budget is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False
