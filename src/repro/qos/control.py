"""Overload-control configuration and the per-cluster control hub.

:class:`OverloadConfig` is the declarative knob block on
:class:`~repro.cluster.builder.ClusterConfig`; :class:`QosControl` is the
armed instance living at ``cluster.qos``, shared by the controller, the
transports and the background daemons.  Every knob defaults to *off*, and
the entire subsystem follows the repo's armed-slot convention: when
``cluster.qos`` is ``None`` (or an individual knob is unset) the datapath
takes exactly the pre-existing branches, so unarmed runs stay
byte-identical to every golden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.qos.admission import AdmissionQueue
from repro.qos.breaker import CircuitBreaker
from repro.qos.budget import RetryBudget


@dataclass
class OverloadConfig:
    """Declarative overload-control knobs (all default to disarmed).

    Queue bounds: ``admission_depth`` caps concurrently admitted I/Os at
    the host submission boundary (``background_depth`` is the earlier shed
    watermark for scrub/rebuild I/O); ``target_queue_depth`` caps in-service
    commands per NVMe-oF target / dRAID bdev connection.  Deadlines:
    ``default_deadline_ns`` stamps every admitted I/O that carries none
    with ``now + default_deadline_ns`` (ns of sim time).  Retry budget:
    ``retry_deposit_ratio``/``retry_burst`` parameterize the per-controller
    :class:`~repro.qos.budget.RetryBudget` (``None`` ratio = no budget).
    Breaker: ``breaker_threshold`` arms the per-member
    :class:`~repro.qos.breaker.CircuitBreaker` (``None`` = off) with EWMA
    weight ``breaker_alpha``, warm-up ``breaker_min_samples`` and trip
    rate-limit ``breaker_cooldown_ns`` (ns).
    """

    #: max concurrently admitted host I/Os (None = unbounded, disarmed)
    admission_depth: Optional[int] = None
    #: occupancy watermark that sheds background I/O (None = depth // 2)
    background_depth: Optional[int] = None
    #: max in-service commands per target connection (None = unbounded)
    target_queue_depth: Optional[int] = None
    #: relative deadline stamped on admitted I/Os lacking one, ns (None = off)
    default_deadline_ns: Optional[int] = None
    #: retry tokens deposited per success (None = retries not budgeted)
    retry_deposit_ratio: Optional[float] = None
    #: retry-budget bucket cap and initial balance, whole tokens
    retry_burst: float = 10.0
    #: EWMA failure rate tripping the member breaker (None = breaker off)
    breaker_threshold: Optional[float] = None
    #: EWMA weight of the newest breaker sample
    breaker_alpha: float = 0.2
    #: breaker observations required before a member may trip
    breaker_min_samples: int = 8
    #: minimum sim-time gap between breaker trips, ns
    breaker_cooldown_ns: int = 10_000_000


@dataclass
class QosStats:
    """Counters for overload-control decisions (own block, so the frozen
    ``FaultStats.summary()`` format embedded in chaos goldens is untouched).

    ``busy_rejections`` counts host-side admission fast-rejects;
    ``shed_background`` background I/Os turned away at the watermark plus
    daemon yield pauses; ``deadline_exceeded`` terminal deadline failures
    raised by retry loops or stamped at admission; ``retries_denied``
    retries refused by a dry retry budget; ``breaker_trips`` members
    ejected by the circuit breaker.
    """

    busy_rejections: int = 0
    shed_background: int = 0
    deadline_exceeded: int = 0
    retries_denied: int = 0
    breaker_trips: int = 0

    def summary(self) -> str:
        """One deterministic line for smoke scripts and reports."""
        return (
            f"busy={self.busy_rejections} shed_bg={self.shed_background} "
            f"deadline={self.deadline_exceeded} retries_denied={self.retries_denied} "
            f"breaker_trips={self.breaker_trips}"
        )


class QosControl:
    """The armed overload-control hub shared across a cluster.

    Holds the optional :class:`~repro.qos.admission.AdmissionQueue`,
    :class:`~repro.qos.budget.RetryBudget` and
    :class:`~repro.qos.breaker.CircuitBreaker` instances (each ``None``
    when its knob block is unset) plus the shared :class:`QosStats`.
    Controllers and daemons consult it through ``cluster.qos``.
    """

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.stats = QosStats()
        self.admission: Optional[AdmissionQueue] = None
        if config.admission_depth is not None:
            self.admission = AdmissionQueue(
                config.admission_depth, config.background_depth
            )
        self.retry_budget: Optional[RetryBudget] = None
        if config.retry_deposit_ratio is not None:
            self.retry_budget = RetryBudget(
                config.retry_deposit_ratio, config.retry_burst
            )
        self.breaker: Optional[CircuitBreaker] = None
        if config.breaker_threshold is not None:
            self.breaker = CircuitBreaker(
                threshold=config.breaker_threshold,
                alpha=config.breaker_alpha,
                min_samples=config.breaker_min_samples,
                cooldown_ns=config.breaker_cooldown_ns,
            )

    @property
    def under_pressure(self) -> bool:
        """True when the admission queue is at/above the shed watermark."""
        return self.admission is not None and self.admission.under_pressure
