"""Typed overload-control errors.

Both are subclasses of :class:`~repro.nvmeof.messages.IoError`, so every
pre-existing ``except IoError`` site (workloads, retry loops, apps) keeps
catching them — arming overload control never turns a handled failure into
an unhandled one.  Code that cares about the *kind* of failure (the
open-loop workload's goodput accounting, the overload experiment) catches
the subclasses first.
"""

from __future__ import annotations

from repro.nvmeof.messages import IoError


class Busy(IoError):
    """Queue-full fast-reject: the I/O was shed at an admission gate.

    Raised (as an async process failure) when a bounded host admission
    queue or a bounded target submission queue is at capacity.  The I/O
    performed no datapath work; the caller may retry later or count the
    rejection against offered load.
    """


class DeadlineExceeded(IoError):
    """Terminal deadline failure: the I/O's time budget (ns) is spent.

    Raised when an I/O's absolute deadline passes before it completes —
    at admission, at a target that dequeues a stale command, or in a retry
    loop whose remaining budget reaches zero.  Never retried: retrying work
    the client has already given up on is what turns overload metastable.
    """
