"""Weighted fair sharing at a shared service point (§5.5 tenant QoS).

A rack-scale array is a *shared* resource: every tenant volume placed on
it funnels through the same NVMe-oF submission queues, the same NICs and
the same drives.  With plain FIFO sharing one open-loop aggressor fills
every queue and the well-behaved tenant's latency rides the aggressor's
backlog — the classic noisy-neighbor failure.  :class:`WeightedFairQueue`
is the front-door scheduler that prevents it: per-flow FIFO queues, a
bounded number of in-service slots (modeling the shared submission queue
depth), and start-time fair queuing (SFQ) across the flow heads, so each
backlogged flow's share of the service slots converges to its weight no
matter how much the others offer.

Two properties make it an isolation mechanism rather than just a
scheduler:

* **per-flow backlog bounds** — a flow whose queue is full gets a typed
  :class:`~repro.qos.errors.Busy` fast-reject, so an aggressor's excess
  arrivals bounce off its *own* queue instead of growing a shared one;
* **work conservation** — an idle flow's share is lent to backlogged
  flows, so isolation costs nothing while nobody misbehaves.

Everything is synchronous bookkeeping plus ordinary simulation events;
two runs with the same arrival sequence dispatch identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.qos.errors import Busy
from repro.sim.core import Environment, Event


class FairFlow:
    """One flow (tenant) registered with a :class:`WeightedFairQueue`.

    ``weight`` sets the flow's relative share of the service slots while
    backlogged; ``queue_limit`` bounds its private backlog (arrivals past
    it are ``Busy``-rejected).  Counters (``admitted``, ``rejected``,
    ``dispatched``) are plain ints for smoke scripts and tests.
    """

    def __init__(self, name: str, weight: float, queue_limit: int, index: int) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if queue_limit <= 0:
            raise ValueError(f"queue_limit must be positive, got {queue_limit}")
        self.name = name
        self.weight = float(weight)
        self.queue_limit = queue_limit
        self.index = index
        #: pending (finish_tag, seq, nbytes, event) entries, FIFO
        self.queue: List[Tuple[float, int, int, Event]] = []
        self.finish_tag = 0.0
        self.admitted = 0
        self.rejected = 0
        self.dispatched = 0


class WeightedFairQueue:
    """Start-time fair queuing over named flows with bounded service slots.

    ``slots`` is the number of concurrently in-service requests (the
    shared queue depth being arbitrated); ``acquire`` returns an event
    that fires when the request reaches service, and every fired acquire
    must be paired with a :meth:`release` when the request completes.
    Dispatch order is by virtual finish tag (cost ``nbytes / weight``),
    tie-broken by flow registration order — fully deterministic.
    """

    def __init__(self, env: Environment, slots: int) -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        self.env = env
        self.slots = slots
        self.inflight = 0
        self._flows: Dict[str, FairFlow] = {}
        self._virtual = 0.0
        self._seq = 0

    def register(
        self, name: str, weight: float = 1.0, queue_limit: int = 64
    ) -> FairFlow:
        """Add a flow; re-registering an existing name is an error."""
        if name in self._flows:
            raise ValueError(f"flow {name!r} already registered")
        flow = FairFlow(name, weight, queue_limit, index=len(self._flows))
        self._flows[name] = flow
        return flow

    def flow(self, name: str) -> FairFlow:
        """Look up a registered flow by name."""
        return self._flows[name]

    @property
    def backlog(self) -> int:
        """Total queued (not yet in-service) requests across all flows."""
        return sum(len(f.queue) for f in self._flows.values())

    def acquire(self, name: str, nbytes: int) -> Event:
        """Event firing when ``nbytes`` for flow ``name`` reaches service.

        Raises :class:`~repro.qos.errors.Busy` synchronously when the
        flow's private queue is full — the reject path does no simulated
        work, exactly like the admission gate.
        """
        flow = self._flows[name]
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        if len(flow.queue) >= flow.queue_limit:
            flow.rejected += 1
            raise Busy(f"wfq: flow {name!r} backlog at limit {flow.queue_limit}")
        start = max(self._virtual, flow.finish_tag)
        flow.finish_tag = start + nbytes / flow.weight
        event = self.env.event()
        self._seq += 1
        flow.queue.append((flow.finish_tag, self._seq, nbytes, event))
        flow.admitted += 1
        self._dispatch()
        return event

    def release(self) -> None:
        """Return a service slot; dispatches the next eligible request."""
        if self.inflight <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self.inflight -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self.inflight < self.slots:
            best: Optional[FairFlow] = None
            for flow in self._flows.values():
                if not flow.queue:
                    continue
                if best is None or flow.queue[0][:2] < best.queue[0][:2]:
                    best = flow
            if best is None:
                return
            finish, _seq, _nbytes, event = best.queue.pop(0)
            self._virtual = max(self._virtual, finish)
            best.dispatched += 1
            self.inflight += 1
            event.succeed()
