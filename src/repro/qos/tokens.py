"""QoS rate limiting for shared storage (§5.5).

"In order to build RAID on shared storage, the key challenge is to
partition a physical drive into smaller ones with guaranteed performance
... A QoS controller needs to implement rate limiting at run-time to
ensure that a tenant does not exceed its I/O budget."

:class:`TokenBucket` implements the Generic Cell Rate Algorithm (a token
bucket in virtual-time form, O(1) per request); :class:`RateLimitedDevice`
wraps any block device (a drive, a RAID array) and applies a per-tenant
byte budget to its reads and writes.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.core import Environment, Event

#: Nanoseconds per second (the sim clock is integer nanoseconds).
NS_PER_S = 1_000_000_000


class TokenBucket:
    """A byte-rate token bucket (GCRA formulation).

    ``rate_bytes_per_s`` is the sustained budget; ``burst_bytes`` the depth
    of the bucket (how far a tenant may run ahead of the sustained rate).
    ``acquire`` returns an event that fires when the requested bytes
    conform; requests are admitted in FIFO order.
    """

    def __init__(
        self,
        env: Environment,
        rate_bytes_per_s: float,
        burst_bytes: int = 1 << 20,
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes_per_s}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self.env = env
        self.rate = float(rate_bytes_per_s)
        self.burst_bytes = burst_bytes
        self._tat = 0  # theoretical arrival time (GCRA state), ns
        self.admitted_bytes = 0
        self.throttle_events = 0

    def _cost_ns(self, nbytes: int) -> int:
        return int(round(nbytes * NS_PER_S / self.rate))

    @property
    def _limit_ns(self) -> int:
        return int(round(self.burst_bytes * NS_PER_S / self.rate))

    def acquire(self, nbytes: int) -> Event:
        """Event firing when ``nbytes`` conform to the budget."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        now = self.env.now
        self._tat = max(now, self._tat) + self._cost_ns(nbytes)
        delay = self._tat - self._limit_ns - now
        self.admitted_bytes += nbytes
        if delay <= 0:
            return self.env.timeout(0)
        self.throttle_events += 1
        return self.env.timeout(delay)

    def acquire_within(self, nbytes: int, max_delay_ns: int) -> Optional[Event]:
        """Shape-or-police: admit ``nbytes`` only if conformance is near.

        Like :meth:`acquire`, but when the bucket would delay the request
        by more than ``max_delay_ns`` (e.g. the request's remaining latency
        budget) it returns ``None`` *without consuming any budget* — the
        caller should fast-reject instead of queueing work that cannot
        possibly complete in time.  This is the per-tenant rate *limit* of
        the rack layer: short overshoots are shaped, sustained overshoots
        are policed.
        """
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        if max_delay_ns < 0:
            raise ValueError(f"max_delay_ns must be >= 0, got {max_delay_ns}")
        now = self.env.now
        tat = max(now, self._tat) + self._cost_ns(nbytes)
        delay = tat - self._limit_ns - now
        if delay > max_delay_ns:
            self.throttle_events += 1
            return None
        self._tat = tat
        self.admitted_bytes += nbytes
        if delay <= 0:
            return self.env.timeout(0)
        self.throttle_events += 1
        return self.env.timeout(delay)

    def refund(self, nbytes: int) -> None:
        """Return ``nbytes`` of budget after a canceled ``acquire``.

        A caller that gives up on a *pending* ``acquire`` (one whose event
        has not fired yet) calls this to hand the bytes back.  The refund
        is *conservative*: the theoretical arrival time is rolled back by
        the request's cost but never behind ``now``, so a cancel can
        under-refund (the bucket stays slightly pessimistic) but can never
        mint extra burst credit — the long-run admitted rate stays bounded
        by ``rate_bytes_per_s`` even under cancel storms.
        """
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        self._tat = max(self.env.now, self._tat - self._cost_ns(nbytes))
        self.admitted_bytes -= nbytes


class RateLimitedDevice:
    """A block device view with a per-tenant byte budget.

    Wraps any object exposing ``read(offset, nbytes)`` and
    ``write(offset, nbytes, data=None)`` returning events.  Separate
    buckets may be supplied for reads and writes; passing one bucket for
    both models a combined budget.
    """

    def __init__(
        self,
        inner,
        bucket: TokenBucket,
        write_bucket: Optional[TokenBucket] = None,
    ) -> None:
        self.inner = inner
        self.env: Environment = inner.env
        self.read_bucket = bucket
        self.write_bucket = write_bucket or bucket
        # pass through attributes controllers/workloads expect
        self.geometry = getattr(inner, "geometry", None)
        self.functional = getattr(inner, "functional", False)

    def read(self, offset: int, nbytes: int, ctx=None) -> Event:
        return self.env.process(self._read(offset, nbytes, ctx), name="qos.read")

    def _read(self, offset: int, nbytes: int, ctx=None):
        yield self.read_bucket.acquire(nbytes)
        result = yield (self.inner.read(offset, nbytes, ctx=ctx)
                        if ctx is not None else self.inner.read(offset, nbytes))
        return result

    def write(self, offset: int, nbytes: int, data=None, ctx=None) -> Event:
        return self.env.process(self._write(offset, nbytes, data, ctx), name="qos.write")

    def _write(self, offset: int, nbytes: int, data, ctx=None):
        yield self.write_bucket.acquire(nbytes)
        result = yield (self.inner.write(offset, nbytes, data, ctx=ctx)
                        if ctx is not None else self.inner.write(offset, nbytes, data))
        return result
