"""Rack-scale composition: many arrays, many tenants, one simulation.

The paper evaluates one dRAID array at a time; its pitch is
datacenter-scale disaggregation.  This package is the missing composition
layer: a :class:`Rack` hosts several independent RAID arrays (any mix of
the three controllers) inside one :class:`~repro.sim.core.Environment`, a
:class:`VolumeManager` places tenant volumes onto those arrays under
capacity- and load-aware policies and migrates them between arrays when
one runs hot, and an optional :class:`RackQosConfig` arms per-tenant QoS
at every array's front door — token-bucket rate limits
(:class:`~repro.qos.tokens.TokenBucket`) plus weighted fair sharing of
the shared submission-queue slots
(:class:`~repro.qos.fair.WeightedFairQueue`) — so one open-loop
aggressor cannot take a co-located tenant's latency budget with it.

A rack with a single unnamed array and no QoS builds the exact historic
testbed (same machine names, same event sequence), so every committed
golden stays byte-identical; everything above is armed-slot opt-in, the
same convention as faults/obs/verify/qos.  See ``docs/RACK.md`` for the
operator guide.
"""

from repro.rack.balance import HotSpotBalancer
from repro.rack.topology import (
    ArraySpec,
    Rack,
    RackArray,
    RackConfig,
    RackQosConfig,
    build_rack,
)
from repro.rack.volumes import (
    MigrationRecord,
    PLACEMENT_POLICIES,
    Volume,
    VolumeManager,
    VolumeSpec,
)

__all__ = [
    "ArraySpec",
    "HotSpotBalancer",
    "MigrationRecord",
    "PLACEMENT_POLICIES",
    "Rack",
    "RackArray",
    "RackConfig",
    "RackQosConfig",
    "Volume",
    "VolumeManager",
    "VolumeSpec",
    "build_rack",
]
