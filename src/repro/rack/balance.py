"""Hot-spot detection and automatic volume rebalancing.

Placement happens once, at volume-create time, against *expected* demand;
real tenants drift.  :class:`HotSpotBalancer` is the feedback loop: a
periodic control process samples every array's front-door pressure (the
weighted-fair queue's backlog — requests admitted by tenants' buckets but
not yet in service), and when one array is persistently hot while another
is cool it migrates the hottest migratable volume across.  One migration
is in flight at a time, trailed by a cooldown, so the balancer converges
instead of thrashing.

The pressure signal deliberately lives at the QoS layer rather than on
raw NIC/drive counters: backlog at the fair queue *is* the tenant-visible
symptom (queueing delay, then ``Busy`` rejects), so reacting to it reacts
to SLO damage directly.  The balancer therefore requires a rack built
with :class:`~repro.rack.topology.RackQosConfig`.

Scans, picks and migrations all run on the simulation clock with stable
tie-breaks, so two runs of the same scenario rebalance identically —
asserted by the ``rack-smoke`` CI golden.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # annotation only
    from repro.rack.topology import Rack, RackArray
    from repro.rack.volumes import Volume

MS = 1_000_000


class HotSpotBalancer:
    """Periodic rebalancing control loop over a QoS-armed rack.

    ``interval_ns`` is the scan period; an array is *hot* when its
    front-door backlog is at least ``high_backlog`` and a migration target
    must be at or below ``low_backlog``.  After each migration the
    balancer sleeps ``cooldown_ns`` before scanning again;
    ``max_migrations`` (``None`` = unlimited) caps the total number of
    moves.  Construction arms the loop immediately (it lives at
    ``.process``); :meth:`stop` disarms it at the next scan.
    """

    def __init__(
        self,
        rack: "Rack",
        interval_ns: int = 1 * MS,
        high_backlog: int = 24,
        low_backlog: int = 8,
        cooldown_ns: int = 2 * MS,
        max_migrations: Optional[int] = None,
        extent_bytes: int = 1 << 20,
    ) -> None:
        if rack.config.qos is None:
            raise ValueError(
                "HotSpotBalancer needs a QoS-armed rack (RackConfig.qos): its "
                "pressure signal is the weighted-fair queue backlog"
            )
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        if low_backlog >= high_backlog:
            raise ValueError(
                f"low_backlog ({low_backlog}) must be below high_backlog "
                f"({high_backlog})"
            )
        self.rack = rack
        self.interval_ns = interval_ns
        self.high_backlog = high_backlog
        self.low_backlog = low_backlog
        self.cooldown_ns = cooldown_ns
        self.max_migrations = max_migrations
        self.extent_bytes = extent_bytes
        self.scans = 0
        self.migrations_started = 0
        self._stopped = False
        self.process = rack.env.process(self._run(), name="rack.balancer")

    def stop(self) -> None:
        """Disarm the loop; takes effect at its next wake-up."""
        self._stopped = True

    # -- control loop --------------------------------------------------------

    def _run(self):
        env = self.rack.env
        while not self._stopped:
            yield env.timeout(self.interval_ns)
            if self._stopped:
                return
            self.scans += 1
            move = self._pick_move()
            for array in self.rack.arrays:
                for volume in array.volumes:
                    volume.reset_window()
            if move is None:
                continue
            volume, destination = move
            self.migrations_started += 1
            yield self.rack.volumes.migrate(
                volume, destination, extent_bytes=self.extent_bytes
            )
            if self.max_migrations is not None and (
                self.migrations_started >= self.max_migrations
            ):
                return
            if self.cooldown_ns:
                yield env.timeout(self.cooldown_ns)

    def _pick_move(self):
        """The (volume, destination) to migrate now, or None."""
        arrays = self.rack.arrays
        if len(arrays) < 2:
            return None
        hot = max(arrays, key=lambda a: (a.wfq.backlog + a.wfq.inflight, a.name))
        cool = min(arrays, key=lambda a: (a.wfq.backlog + a.wfq.inflight, a.name))
        if hot is cool:
            return None
        if hot.wfq.backlog < self.high_backlog or cool.wfq.backlog > self.low_backlog:
            return None
        candidates = [
            v
            for v in hot.volumes
            if v._migrating_to is None and cool.free_bytes >= v.size_bytes
        ]
        if not candidates:
            return None
        # hottest volume by offered bytes since the last scan, stable tie-break
        hottest = max(candidates, key=lambda v: (v.window_bytes, v.name))
        if hottest.window_bytes == 0:
            return None
        return hottest, cool
