"""Rack topology: many arrays (each its own cluster) in one simulation.

Every :class:`ArraySpec` builds one complete testbed — host machine,
storage servers, RDMA fabric, controller — exactly as
:func:`repro.cluster.build_cluster` always has, but all the clusters of a
rack share one :class:`~repro.sim.core.Environment`, so their events
interleave on a single deterministic clock.  Machine/NIC/drive names are
prefixed per array (``a0.server3.nvme``) via ``ClusterConfig.name``; a
rack with a single unnamed array keeps the historic unprefixed names and
is byte-identical to a directly-built cluster.

The modeling choice mirrors DRackSim-style rack composition: arrays are
*failure- and bandwidth-isolated* from each other (separate fabrics —
inter-array traffic exists only as volume-migration streams issued by the
:class:`~repro.rack.volumes.VolumeManager`), while *tenants* contend at
each array's front door, which is where the rack-level QoS
(:class:`RackQosConfig`) arbitrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.baselines import MdRaid, SpdkRaid
from repro.cluster import Cluster, ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.qos.fair import WeightedFairQueue
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim.core import Environment

KB = 1024
MB = 1_000_000

#: Controller registry, named as in the paper's figures.
RACK_SYSTEMS: Dict[str, type] = {
    "Linux": MdRaid,
    "SPDK": SpdkRaid,
    "dRAID": DraidArray,
}


@dataclass
class ArraySpec:
    """One array of a rack: controller kind, geometry and exported capacity.

    ``name`` prefixes every machine of the array's cluster (``None`` means
    ``a<i>`` in a multi-array rack, or the historic unprefixed names when
    the rack has exactly one array).  ``export_bytes`` is the logical
    capacity the array offers to the volume manager — placement accounting
    only; it is independent of ``cluster.functional_capacity``.  Pass a
    ``cluster`` :class:`~repro.cluster.ClusterConfig` to override NIC
    rates, drive profiles, overload control etc.; its ``num_servers`` and
    ``name`` fields are overwritten from this spec.
    """

    system: str = "dRAID"
    servers: int = 8
    level: RaidLevel = RaidLevel.RAID5
    chunk_bytes: int = 512 * KB
    export_bytes: int = 1 << 30
    name: Optional[str] = None
    cluster: Optional[ClusterConfig] = None


@dataclass
class RackQosConfig:
    """Per-tenant QoS knobs applied at every array's front door.

    ``slots`` bounds concurrently in-service I/Os per array (the shared
    submission-queue depth the fair queue arbitrates);
    ``default_queue_limit`` bounds each tenant's private backlog before
    typed ``Busy`` fast-rejects; ``shaping_horizon_ns`` (ns) caps how long
    a token-bucket rate limit may delay an I/O that carries no explicit
    deadline before policing it instead.
    """

    slots: int = 64
    default_queue_limit: int = 32
    shaping_horizon_ns: int = 2_000_000


@dataclass
class RackConfig:
    """Declarative rack: the array list, placement policy and tenant QoS.

    ``placement`` names a :data:`repro.rack.volumes.PLACEMENT_POLICIES`
    entry; ``qos=None`` (the default) leaves tenant QoS entirely unarmed —
    volumes become transparent pass-throughs and the datapath is
    byte-identical to driving the arrays directly.
    """

    arrays: Sequence[ArraySpec] = field(default_factory=lambda: [ArraySpec()])
    placement: str = "least-loaded"
    qos: Optional[RackQosConfig] = None


class RackArray:
    """One placed array: spec + cluster + controller + front-door state."""

    def __init__(
        self,
        name: str,
        spec: ArraySpec,
        cluster: Cluster,
        array,
        wfq: Optional[WeightedFairQueue],
    ) -> None:
        self.name = name
        self.spec = spec
        self.cluster = cluster
        self.array = array
        #: armed by ``RackConfig.qos``: the weighted-fair front door
        self.wfq = wfq
        #: placement accounting (bump allocator; see VolumeManager)
        self.allocated_bytes = 0
        self.next_offset = 0
        self.placed_demand_mb_s = 0.0
        self.volumes: List = []

    @property
    def free_bytes(self) -> int:
        """Exported capacity not yet allocated to volumes."""
        return self.spec.export_bytes - self.allocated_bytes

    def allocate(self, nbytes: int) -> int:
        """Claim ``nbytes``; returns the volume's base offset on the array."""
        if nbytes > self.free_bytes:
            raise ValueError(
                f"{self.name}: cannot allocate {nbytes} bytes "
                f"({self.free_bytes} free of {self.spec.export_bytes})"
            )
        base = self.next_offset
        self.next_offset += nbytes
        self.allocated_bytes += nbytes
        return base

    def deallocate(self, nbytes: int) -> None:
        """Return capacity (arena-style: the address range is not reused)."""
        self.allocated_bytes -= nbytes


class Rack:
    """A built rack: shared environment, arrays, and the volume manager."""

    def __init__(self, env: Environment, config: RackConfig, arrays: List[RackArray]) -> None:
        from repro.rack.volumes import VolumeManager  # circular at import time only

        self.env = env
        self.config = config
        self.arrays = arrays
        self.volumes = VolumeManager(self, policy=config.placement)

    def array(self, name: str) -> RackArray:
        """Look up an array by its resolved name."""
        for entry in self.arrays:
            if entry.name == name:
                return entry
        raise KeyError(f"no array named {name!r}; have {[a.name for a in self.arrays]}")


def build_rack(env: Optional[Environment], config: Optional[RackConfig] = None) -> Rack:
    """Build every array of ``config`` into one shared environment.

    Pass ``env=None`` to create a fresh :class:`~repro.sim.core.Environment`.
    A single-array rack with no explicit ``name`` builds the historic
    unprefixed testbed byte-for-byte.
    """
    env = env or Environment()
    config = config or RackConfig()
    if not config.arrays:
        raise ValueError("a rack needs at least one array")
    arrays: List[RackArray] = []
    seen = set()
    for i, spec in enumerate(config.arrays):
        if spec.system not in RACK_SYSTEMS:
            raise ValueError(
                f"unknown system {spec.system!r}; pick from {sorted(RACK_SYSTEMS)}"
            )
        name = spec.name
        if name is None:
            name = "" if len(config.arrays) == 1 else f"a{i}"
        if name in seen:
            raise ValueError(f"duplicate array name {name!r}")
        seen.add(name)
        base = spec.cluster if spec.cluster is not None else ClusterConfig()
        cluster_config = replace(base, num_servers=spec.servers, name=name)
        cluster = build_cluster(env, cluster_config)
        geometry = RaidGeometry(spec.level, spec.servers, spec.chunk_bytes)
        controller_name = f"{name}.raid" if name else "raid"
        array = RACK_SYSTEMS[spec.system](cluster, geometry, name=controller_name)
        wfq = None
        if config.qos is not None:
            wfq = WeightedFairQueue(env, slots=config.qos.slots)
        arrays.append(RackArray(name or f"a{i}", spec, cluster, array, wfq))
    return Rack(env, config, arrays)
