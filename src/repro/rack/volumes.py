"""Tenant volumes: placement, QoS-gated routing, and live migration.

A :class:`Volume` is the block device a tenant actually holds: a named,
fixed-size slice of one array's address space.  Tenants never see arrays —
they issue ``read``/``write`` against the volume and the
:class:`VolumeManager` decides (and may *change*, live) which array serves
them.  The life of a tenant I/O under an armed rack:

1. **rate limit** — the volume's token bucket shapes short overshoots and
   polices sustained ones (an I/O whose bucket wait alone would blow its
   latency budget is ``Busy``-rejected without consuming budget);
2. **fair share** — the home array's
   :class:`~repro.qos.fair.WeightedFairQueue` queues the I/O on the
   tenant's private lane and dispatches by weight when a shared service
   slot frees (full lane → typed ``Busy``, the noisy tenant bounces off
   its *own* backlog);
3. **the array** — the I/O enters the controller at the volume's base
   offset plus the tenant-relative offset, exactly as a directly-issued
   I/O would.

With rack QoS unarmed every step above short-circuits to a plain
pass-through call.

Placement is capacity- and load-aware (:data:`PLACEMENT_POLICIES`), and
:meth:`VolumeManager.migrate` re-homes a volume while the tenant keeps
issuing I/O: a background copy stream drains the volume extent-by-extent
to the destination (dual-writing foreground writes in functional mode so
no acknowledged byte is lost), then a cutover atomically switches the
routing.  Every decision tie-breaks on stable (index, name) order, so two
runs with the same seeds place and migrate identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.qos.admission import PRIORITY_BACKGROUND
from repro.qos.errors import Busy
from repro.qos.tokens import TokenBucket
from repro.sim.core import Environment, Event

if TYPE_CHECKING:  # annotation only
    from repro.rack.topology import Rack, RackArray

MB = 1_000_000


@dataclass
class VolumeSpec:
    """Declarative tenant volume: size, expected demand and QoS knobs.

    ``size_bytes`` is the allocated capacity; ``demand_mb_s`` the expected
    offered load (MB/s) the load-aware placement policies balance on.
    ``rate_limit_mb_s`` arms a token-bucket byte budget (MB/s; ``None`` =
    uncapped) with burst depth ``burst_bytes``; ``weight`` is the tenant's
    fair-share weight and ``queue_limit`` its private backlog bound at the
    array front door (``None`` = the rack default).  QoS knobs take effect
    only when the rack itself is built with a
    :class:`~repro.rack.topology.RackQosConfig`.
    """

    name: str
    size_bytes: int
    demand_mb_s: float = 0.0
    weight: float = 1.0
    rate_limit_mb_s: Optional[float] = None
    burst_bytes: int = 1 << 20
    queue_limit: Optional[int] = None


@dataclass(frozen=True)
class MigrationRecord:
    """One completed volume migration (all times in ns of sim time)."""

    volume: str
    source: str
    destination: str
    started_ns: int
    finished_ns: int
    moved_bytes: int


class Volume:
    """A tenant's block device: a placed, QoS-gated slice of one array.

    Exposes the same ``read(offset, nbytes)`` / ``write(offset, nbytes,
    data=None)`` event interface as an array, plus the attributes
    open-loop workloads expect (``env``, ``geometry``, ``qos``), so any
    workload generator drives a volume unchanged.
    """

    def __init__(
        self,
        manager: "VolumeManager",
        spec: VolumeSpec,
        home: "RackArray",
        base: int,
        bucket: Optional[TokenBucket],
    ) -> None:
        self.manager = manager
        self.spec = spec
        self.name = spec.name
        self.size_bytes = spec.size_bytes
        self.env: Environment = manager.rack.env
        self.home = home
        self.base = base
        self.bucket = bucket
        #: non-None while a migration copy stream is running: (dst, dst_base)
        self._migrating_to = None
        #: arrivals/bytes since the balancer's last scan (hotness signal)
        self.window_ops = 0
        self.window_bytes = 0
        #: tenant-facing Busy rejects issued by the volume's own QoS gates
        self.qos_rejections = 0

    # -- attributes workload generators expect -----------------------------

    @property
    def geometry(self):
        """The home array's RAID geometry (tracks migrations)."""
        return self.home.array.geometry

    @property
    def qos(self):
        """Truthy marker when rack-level tenant QoS is armed (workloads use
        it to decide whether to stamp absolute deadlines on I/Os)."""
        return self.manager.rack.config.qos

    # -- block interface ----------------------------------------------------

    def read(self, offset: int, nbytes: int, deadline_ns: Optional[int] = None) -> Event:
        """Read ``nbytes`` at tenant-relative ``offset`` (event interface)."""
        self._check_bounds(offset, nbytes)
        return self.env.process(
            self._io(True, offset, nbytes, None, deadline_ns),
            name=f"vol.{self.name}.read",
        )

    def write(
        self, offset: int, nbytes: int, data=None, deadline_ns: Optional[int] = None
    ) -> Event:
        """Write ``nbytes`` at tenant-relative ``offset`` (event interface)."""
        self._check_bounds(offset, nbytes)
        return self.env.process(
            self._io(False, offset, nbytes, data, deadline_ns),
            name=f"vol.{self.name}.write",
        )

    def _check_bounds(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0 or offset < 0 or offset + nbytes > self.size_bytes:
            raise ValueError(
                f"volume {self.name}: I/O [{offset}, {offset + nbytes}) outside "
                f"[0, {self.size_bytes})"
            )

    def _io(self, is_read: bool, offset: int, nbytes: int, data, deadline_ns):
        self.window_ops += 1
        self.window_bytes += nbytes
        if self.bucket is not None:
            horizon = self._shaping_horizon(deadline_ns)
            grant = self.bucket.acquire_within(nbytes, horizon)
            if grant is None:
                self.qos_rejections += 1
                raise Busy(f"volume {self.name}: over its rate limit")
            yield grant
        home = self.home  # re-read after the bucket wait: cutover may have run
        if home.wfq is not None:
            try:
                slot = home.wfq.acquire(self.name, nbytes)
            except Busy:
                self.qos_rejections += 1
                if self.bucket is not None:
                    self.bucket.refund(nbytes)
                raise
            yield slot
        try:
            result = yield self._forward(home, is_read, offset, nbytes, data, deadline_ns)
        finally:
            if home.wfq is not None:
                home.wfq.release()
        return result

    def _forward(self, home, is_read, offset, nbytes, data, deadline_ns):
        # The wire deadline (target-side shedding of stale work) is an
        # overload-control feature: forward it only when the controller has
        # its own qos armed, the combination the datapath is built for.
        # Without it the deadline still shapes the bucket horizon above and
        # the workload's goodput accounting — late I/Os complete and are
        # counted late, they are not shed mid-flight.
        if home.array.qos is None:
            deadline_ns = None
        if is_read:
            return home.array.read(self.base + offset, nbytes, deadline_ns=deadline_ns)
        # during a functional-mode migration, mirror writes to the copy
        # target so no acknowledged byte is left behind by the cutover
        if self._migrating_to is not None and self.manager.functional:
            dst, dst_base = self._migrating_to
            from repro.sim.core import AllOf

            return AllOf(
                self.env,
                [
                    home.array.write(self.base + offset, nbytes, data, deadline_ns=deadline_ns),
                    dst.array.write(dst_base + offset, nbytes, data, deadline_ns=deadline_ns),
                ],
            )
        return home.array.write(self.base + offset, nbytes, data, deadline_ns=deadline_ns)

    def _shaping_horizon(self, deadline_ns: Optional[int]) -> int:
        if deadline_ns is not None:
            return max(0, deadline_ns - self.env.now)
        qos = self.manager.rack.config.qos
        return qos.shaping_horizon_ns if qos is not None else 0

    def reset_window(self) -> None:
        """Zero the hotness counters (called by the balancer each scan)."""
        self.window_ops = 0
        self.window_bytes = 0


# -- placement policies -----------------------------------------------------


def _fits(array: "RackArray", spec: VolumeSpec) -> bool:
    return array.free_bytes >= spec.size_bytes


def _first_fit(arrays: Sequence["RackArray"], spec: VolumeSpec):
    """First array (in rack order) with enough free capacity."""
    for array in arrays:
        if _fits(array, spec):
            return array
    return None


def _best_fit(arrays: Sequence["RackArray"], spec: VolumeSpec):
    """Tightest capacity fit: the feasible array with least free space."""
    feasible = [a for a in arrays if _fits(a, spec)]
    if not feasible:
        return None
    return min(feasible, key=lambda a: (a.free_bytes, a.name))


def _least_loaded(arrays: Sequence["RackArray"], spec: VolumeSpec):
    """Load-aware: the feasible array with least placed demand (MB/s)."""
    feasible = [a for a in arrays if _fits(a, spec)]
    if not feasible:
        return None
    return min(feasible, key=lambda a: (a.placed_demand_mb_s, a.name))


#: Placement policy registry: name -> ``policy(arrays, spec) -> array|None``.
PLACEMENT_POLICIES: Dict[str, Callable] = {
    "first-fit": _first_fit,
    "best-fit": _best_fit,
    "least-loaded": _least_loaded,
}


class VolumeManager:
    """Places tenant volumes onto a rack's arrays and migrates them live.

    The control plane of the rack: :meth:`create` runs the configured
    placement policy and wires up the volume's QoS state (token bucket,
    fair-queue lane); :meth:`migrate` re-homes a volume with a paced
    background copy stream and an atomic cutover, appending a
    :class:`MigrationRecord` per completed move.  All state transitions
    happen on the simulation clock — two identical runs place and migrate
    at identical instants.
    """

    def __init__(self, rack: "Rack", policy: str = "least-loaded") -> None:
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; pick from "
                f"{sorted(PLACEMENT_POLICIES)}"
            )
        self.rack = rack
        self.policy = policy
        self.volumes: Dict[str, Volume] = {}
        self.migrations: List[MigrationRecord] = []

    @property
    def functional(self) -> bool:
        """True when every array of the rack carries real bytes."""
        return all(a.array.functional for a in self.rack.arrays)

    def create(self, spec: VolumeSpec, on: Optional[str] = None) -> Volume:
        """Place a new volume (policy-chosen array, or ``on`` to pin it)."""
        if spec.name in self.volumes:
            raise ValueError(f"volume {spec.name!r} already exists")
        if spec.size_bytes <= 0:
            raise ValueError(f"volume size must be positive, got {spec.size_bytes}")
        if on is not None:
            home = self.rack.array(on)
            if not _fits(home, spec):
                raise ValueError(
                    f"array {on!r} lacks capacity for volume {spec.name!r}"
                )
        else:
            home = PLACEMENT_POLICIES[self.policy](self.rack.arrays, spec)
            if home is None:
                raise ValueError(
                    f"no array can host volume {spec.name!r} "
                    f"({spec.size_bytes} bytes)"
                )
        base = home.allocate(spec.size_bytes)
        bucket = None
        qos = self.rack.config.qos
        if qos is not None and spec.rate_limit_mb_s is not None:
            bucket = TokenBucket(
                self.rack.env,
                rate_bytes_per_s=spec.rate_limit_mb_s * MB,
                burst_bytes=spec.burst_bytes,
            )
        volume = Volume(self, spec, home, base, bucket)
        if qos is not None:
            home.wfq.register(
                spec.name,
                weight=spec.weight,
                queue_limit=spec.queue_limit or qos.default_queue_limit,
            )
        home.volumes.append(volume)
        home.placed_demand_mb_s += spec.demand_mb_s
        self.volumes[spec.name] = volume
        return volume

    def migrate(
        self,
        volume: Volume,
        destination: "RackArray",
        extent_bytes: int = 1 << 20,
        pace_ns: int = 0,
    ) -> Event:
        """Re-home ``volume`` onto ``destination``; returns the completion
        event of the copy-and-cutover process.

        The copy stream reads the volume extent-by-extent from the source
        and writes it to the destination at background priority, pausing
        ``pace_ns`` between extents; tenant I/O keeps flowing to the
        source until the cutover at the end.
        """
        if destination is volume.home:
            raise ValueError(f"volume {volume.name!r} already lives on "
                             f"{destination.name!r}")
        if volume._migrating_to is not None:
            raise RuntimeError(f"volume {volume.name!r} is already migrating")
        if extent_bytes <= 0:
            raise ValueError(f"extent_bytes must be positive, got {extent_bytes}")
        return self.rack.env.process(
            self._migrate(volume, destination, extent_bytes, pace_ns),
            name=f"rack.migrate.{volume.name}",
        )

    def _migrate(self, volume: Volume, dst: "RackArray", extent_bytes: int, pace_ns: int):
        env = self.rack.env
        src = volume.home
        started = env.now
        dst_base = dst.allocate(volume.size_bytes)
        if self.rack.config.qos is not None:
            dst.wfq.register(
                volume.name,
                weight=volume.spec.weight,
                queue_limit=volume.spec.queue_limit
                or self.rack.config.qos.default_queue_limit,
            )
        volume._migrating_to = (dst, dst_base)
        copied = 0
        while copied < volume.size_bytes:
            nbytes = min(extent_bytes, volume.size_bytes - copied)
            data = yield src.array.read(
                volume.base + copied, nbytes, priority=PRIORITY_BACKGROUND
            )
            yield dst.array.write(
                dst_base + copied, nbytes, data, priority=PRIORITY_BACKGROUND
            )
            copied += nbytes
            if pace_ns:
                yield env.timeout(pace_ns)
        # cutover: atomic within one event — no tenant I/O observes a half-move
        volume.home = dst
        volume.base = dst_base
        volume._migrating_to = None
        src.volumes.remove(volume)
        dst.volumes.append(volume)
        src.deallocate(volume.size_bytes)
        src.placed_demand_mb_s -= volume.spec.demand_mb_s
        dst.placed_demand_mb_s += volume.spec.demand_mb_s
        self.migrations.append(
            MigrationRecord(
                volume=volume.name,
                source=src.name,
                destination=dst.name,
                started_ns=started,
                finished_ns=env.now,
                moved_bytes=volume.size_bytes,
            )
        )

    def describe(self) -> str:
        """One deterministic line per array: capacity, demand, volumes."""
        lines = []
        for array in self.rack.arrays:
            names = ",".join(v.name for v in array.volumes) or "-"
            lines.append(
                f"{array.name or 'array'}: {array.spec.system} "
                f"x{array.spec.servers} alloc={array.allocated_bytes} "
                f"free={array.free_bytes} demand={array.placed_demand_mb_s:.1f}MB/s "
                f"volumes=[{names}]"
            )
        return "\n".join(lines)
