"""RAID core: geometry, write-mode classification and stripe locking.

This package contains the level- and system-independent machinery shared by
all three controllers (Linux-MD model, SPDK-POC model and dRAID): mapping a
user byte extent onto stripes/chunks/drives with rotating parity, deciding
between read-modify-write / reconstruct-write / full-stripe write, and
serializing conflicting writes per stripe.
"""

from repro.raid.bitmap import WriteIntentBitmap
from repro.raid.geometry import ChunkSegment, RaidGeometry, RaidLevel, StripeExtent
from repro.raid.locks import StripeLockManager
from repro.raid.modes import WriteMode, classify_write
from repro.raid.rebuild import RebuildJob, RebuildStats, rebuild_member_stripe
from repro.raid.recovery import RecoveryOrchestrator, RecoveryStats, SparePool
from repro.raid.resync import resync_after_crash, resync_stripes
from repro.raid.scrub import ScrubReport, scrub_array, scrub_stripe
from repro.raid.scrubber import ScrubDaemon, ScrubPassReport

__all__ = [
    "ChunkSegment",
    "RaidGeometry",
    "RaidLevel",
    "RebuildJob",
    "RebuildStats",
    "RecoveryOrchestrator",
    "RecoveryStats",
    "SparePool",
    "ScrubDaemon",
    "ScrubPassReport",
    "ScrubReport",
    "StripeExtent",
    "StripeLockManager",
    "WriteIntentBitmap",
    "WriteMode",
    "classify_write",
    "rebuild_member_stripe",
    "resync_after_crash",
    "resync_stripes",
    "scrub_array",
    "scrub_stripe",
]
