"""Write-intent bitmap (§5.4, host failures).

"Linux software RAID uses a bitmap to keep track of which blocks are
written to, so a full scan of the array can be avoided.  dRAID can just
take the same approach."

The bitmap marks stripes with in-flight writes; after a host crash only the
marked stripes need resynchronization (:mod:`repro.raid.resync`) instead of
a whole-array scan.  Reference counting handles the (serialized) queue of
writers on one stripe: the bit stays set until the last writer finishes.
"""

from __future__ import annotations

from typing import Dict, List


class WriteIntentBitmap:
    """Per-stripe in-flight write tracking with reference counts."""

    def __init__(self) -> None:
        self._dirty: Dict[int, int] = {}
        #: stripes whose writes completed normally since the last checkpoint;
        #: kept for introspection/statistics.
        self.total_marks = 0

    def mark(self, stripe: int) -> None:
        """Record an in-flight write on ``stripe``."""
        self._dirty[stripe] = self._dirty.get(stripe, 0) + 1
        self.total_marks += 1

    def clear(self, stripe: int) -> None:
        """Record write completion; the bit clears when no writer remains."""
        count = self._dirty.get(stripe)
        if count is None:
            raise KeyError(f"stripe {stripe} was not marked")
        if count <= 1:
            del self._dirty[stripe]
        else:
            self._dirty[stripe] = count - 1

    def dirty_stripes(self) -> List[int]:
        """Stripes that would need resync after a crash right now."""
        return sorted(self._dirty)

    def is_dirty(self, stripe: int) -> bool:
        return stripe in self._dirty

    def __len__(self) -> int:
        return len(self._dirty)
