"""RAID address geometry.

Maps the linear user address space of the virtual block device onto
(stripe, chunk, drive) coordinates with rotating parity:

* RAID-5 uses the *left-symmetric* layout (the Linux MD default): parity of
  stripe ``s`` lives on drive ``n-1 - (s mod n)`` and data chunks follow it
  cyclically.
* RAID-6 places Q on the drive after P (Linux "left-symmetric-6"-style
  rotation) so both parities rotate and the read load is balanced across
  all members — the property §6 relies on ("parity chunks are evenly
  distributed among all member drives").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.raid.layout import Layout, RotatingLayout


class RaidLevel(Enum):
    """Parity-based RAID levels supported by every controller here."""

    RAID5 = 5
    RAID6 = 6

    @property
    def num_parity(self) -> int:
        return 1 if self is RaidLevel.RAID5 else 2


@dataclass(frozen=True)
class ChunkSegment:
    """A contiguous byte range of one data chunk touched by a user I/O."""

    data_index: int  #: logical data-chunk index within the stripe (0..k-1)
    drive: int  #: physical member-drive index
    drive_offset: int  #: byte offset of the segment on that drive
    chunk_offset: int  #: offset of the segment within its chunk
    length: int
    io_offset: int  #: offset of this segment inside the user buffer

    @property
    def chunk_end(self) -> int:
        return self.chunk_offset + self.length


@dataclass(frozen=True)
class StripeExtent:
    """The portion of a user I/O that falls into one stripe."""

    stripe: int
    segments: Tuple[ChunkSegment, ...]
    parity_drives: Tuple[int, ...]  #: (P,) for RAID-5, (P, Q) for RAID-6
    parity_offset: int  #: byte offset of the parity chunk on its drive

    @property
    def touched_bytes(self) -> int:
        return sum(s.length for s in self.segments)

    @property
    def touched_data_indices(self) -> Tuple[int, ...]:
        return tuple(s.data_index for s in self.segments)

    def parity_span(self) -> Tuple[int, int]:
        """(offset, length) of the union of per-chunk intervals touched.

        This is the region of the parity chunk that must be updated: the
        dRAID protocol's ``fwd-offset`` / ``fwd-length`` (§5.1).
        """
        start = min(s.chunk_offset for s in self.segments)
        end = max(s.chunk_end for s in self.segments)
        return start, end - start


class RaidGeometry:
    """Address arithmetic for a parity-RAID array.

    ``num_drives`` counts every member (data + parity); ``chunk_bytes`` is
    the striping unit (the paper's default is 512 KiB, the Linux MD
    default).  ``layout`` selects the placement policy; the default
    :class:`~repro.raid.layout.RotatingLayout` reproduces the historical
    left-symmetric rotation byte-identically, while a
    :class:`~repro.raid.layout.DeclusteredLayout` narrows each stripe to
    a ``stripe_width``-drive member set with distributed spares.
    """

    def __init__(
        self,
        level: RaidLevel,
        num_drives: int,
        chunk_bytes: int,
        layout: Optional[Layout] = None,
    ) -> None:
        min_drives = 3 if level is RaidLevel.RAID5 else 4
        if num_drives < min_drives:
            raise ValueError(f"{level.name} needs >= {min_drives} drives, got {num_drives}")
        if chunk_bytes <= 0 or chunk_bytes % 4096:
            raise ValueError(f"chunk size must be a positive multiple of 4096, got {chunk_bytes}")
        if layout is None:
            layout = RotatingLayout(num_drives, level.num_parity)
        elif layout.num_drives != num_drives or layout.num_parity != level.num_parity:
            raise ValueError(
                f"layout {layout.describe()} does not match "
                f"{level.name} over {num_drives} drives"
            )
        self.level = level
        self.layout = layout
        self.num_drives = num_drives
        self.chunk_bytes = chunk_bytes
        self.num_parity = level.num_parity
        self.data_per_stripe = layout.data_per_stripe
        self.stripe_data_bytes = self.data_per_stripe * chunk_bytes
        #: True when every drive is a member of every stripe (rotating)
        self.full_width = layout.stripe_width == num_drives

    def __repr__(self) -> str:
        return (
            f"<RaidGeometry {self.level.name} drives={self.num_drives} "
            f"chunk={self.chunk_bytes // 1024}KiB>"
        )

    # -- parity / data placement -------------------------------------------

    def parity_drives(self, stripe: int) -> Tuple[int, ...]:
        """Physical drives holding P (and Q) for ``stripe``."""
        return self.layout.parity_drives(stripe)

    def data_drive(self, stripe: int, data_index: int) -> int:
        """Physical drive of logical data chunk ``data_index`` in ``stripe``."""
        if not 0 <= data_index < self.data_per_stripe:
            raise ValueError(f"data index {data_index} out of range")
        return self.layout.data_drive(stripe, data_index)

    def data_index_of_drive(self, stripe: int, drive: int) -> int:
        """Inverse of :meth:`data_drive`; raises if ``drive`` holds parity."""
        return self.layout.data_index_of_drive(stripe, drive)

    def stripe_drives(self, stripe: int) -> Tuple[int, ...]:
        """All member drives of ``stripe`` (parity first, then data)."""
        return self.layout.stripe_drives(stripe)

    def spare_drives(self, stripe: int) -> Tuple[int, ...]:
        """Distributed-spare drives of ``stripe`` (empty when rotating)."""
        return self.layout.spare_drives(stripe)

    def chunk_offset_on_drive(self, stripe: int) -> int:
        """Every member stores one chunk per stripe at the same drive offset."""
        return stripe * self.chunk_bytes

    # -- extent mapping -------------------------------------------------------

    def map_extent(self, offset: int, length: int) -> List[StripeExtent]:
        """Split the user extent ``[offset, offset+length)`` into stripes."""
        if offset < 0 or length <= 0:
            raise ValueError(f"invalid extent offset={offset} length={length}")
        extents: List[StripeExtent] = []
        end = offset + length
        pos = offset
        while pos < end:
            stripe = pos // self.stripe_data_bytes
            stripe_start = stripe * self.stripe_data_bytes
            local = pos - stripe_start
            local_end = min(end - stripe_start, self.stripe_data_bytes)
            segments: List[ChunkSegment] = []
            while local < local_end:
                data_index = local // self.chunk_bytes
                chunk_offset = local % self.chunk_bytes
                seg_len = min(self.chunk_bytes - chunk_offset, local_end - local)
                segments.append(
                    ChunkSegment(
                        data_index=data_index,
                        drive=self.data_drive(stripe, data_index),
                        drive_offset=stripe * self.chunk_bytes + chunk_offset,
                        chunk_offset=chunk_offset,
                        length=seg_len,
                        io_offset=(stripe_start + local) - offset,
                    )
                )
                local += seg_len
            extents.append(
                StripeExtent(
                    stripe=stripe,
                    segments=tuple(segments),
                    parity_drives=self.parity_drives(stripe),
                    parity_offset=self.chunk_offset_on_drive(stripe),
                )
            )
            pos = stripe_start + local_end
        return extents

    def untouched_data_indices(self, extent: StripeExtent) -> List[int]:
        """Data-chunk indices of ``extent``'s stripe not touched at all."""
        touched = set(extent.touched_data_indices)
        return [d for d in range(self.data_per_stripe) if d not in touched]

    def capacity_bytes(self, drive_capacity: int) -> int:
        """Usable capacity of the virtual device."""
        stripes = drive_capacity // self.chunk_bytes
        return stripes * self.stripe_data_bytes
