"""Pluggable stripe-placement layouts (the design-space geometry axis).

A :class:`Layout` decides which physical member drives hold each
stripe's parity, data and spare chunks.  :class:`RotatingLayout`
reproduces the left-symmetric rotation every controller has used since
the first commit — parity anchored at drive ``n-1 - (s mod n)`` with
data following cyclically — generalized to any parity count, so all
existing ``RaidGeometry``/``EcGeometry`` placements stay byte-identical
when it is the (default) layout.

:class:`DeclusteredLayout` adds a seeded PRIME-style declustered
organization: a fixed pseudo-random permutation of the members is
walked with a stride coprime to the member count, and each stripe
occupies the first ``stripe_width`` drives of its window.  The rest of
the window is *distributed spare capacity*.  Because a failed drive is
a member of only ``stripe_width / num_drives`` of the stripes, and each
affected stripe's surviving members and spare target differ, rebuild
reads and spare writes fan out across the whole array instead of
funnelling into one replacement — the declustering claim the
``geometries`` figure quantifies.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Tuple


class Layout:
    """Placement policy: (stripe, role) -> physical member drive.

    Subclasses implement :meth:`parity_drives`, :meth:`data_drive` and
    :meth:`data_index_of_drive` (the three calls the datapath makes on
    every I/O) plus :meth:`stripe_drives` / :meth:`spare_drives` for
    membership queries.  ``stripe_width`` counts data + parity members
    per stripe; drives outside a stripe's member set hold no chunk for
    it.
    """

    #: registry key; subclasses override
    name = "layout"

    def __init__(self, num_drives: int, num_parity: int) -> None:
        if num_parity < 1:
            raise ValueError(f"need >= 1 parity, got {num_parity}")
        if num_drives <= num_parity:
            raise ValueError(
                f"need > {num_parity} drives for {num_parity} parity, "
                f"got {num_drives}"
            )
        self.num_drives = num_drives
        self.num_parity = num_parity

    @property
    def stripe_width(self) -> int:
        """Members per stripe (data + parity chunks)."""
        raise NotImplementedError

    @property
    def data_per_stripe(self) -> int:
        """Data chunks per stripe."""
        return self.stripe_width - self.num_parity

    def parity_drives(self, stripe: int) -> Tuple[int, ...]:
        """Physical drives holding this stripe's parity chunks, in order."""
        raise NotImplementedError

    def data_drive(self, stripe: int, data_index: int) -> int:
        """Physical drive of logical data chunk ``data_index``."""
        raise NotImplementedError

    def data_index_of_drive(self, stripe: int, drive: int) -> int:
        """Inverse of :meth:`data_drive`; raises if ``drive`` holds parity
        (or is not a member of the stripe at all)."""
        raise NotImplementedError

    def stripe_drives(self, stripe: int) -> Tuple[int, ...]:
        """All member drives of ``stripe``: parity first, then data in
        logical chunk order."""
        parity = self.parity_drives(stripe)
        return parity + tuple(
            self.data_drive(stripe, d) for d in range(self.data_per_stripe)
        )

    def spare_drives(self, stripe: int) -> Tuple[int, ...]:
        """Drives holding distributed spare capacity for ``stripe``
        (empty for full-width layouts)."""
        return ()

    def describe(self) -> str:
        """One-line deterministic rendering (for goldens and logs)."""
        return f"{self.name}(n={self.num_drives}, p={self.num_parity})"


class RotatingLayout(Layout):
    """Left-symmetric rotation: the historical default placement.

    Parity of stripe ``s`` starts at drive ``n-1 - (s mod n)`` with the
    remaining parities on the cyclically following drives, and data
    chunk ``i`` on drive ``anchor + 1 + i (mod n)`` where ``anchor`` is
    the last parity drive.  Every drive is a member of every stripe
    (``stripe_width == num_drives``) and there is no spare capacity.
    Matches the placement previously hard-coded in ``RaidGeometry``
    (RAID-5/6) and ``EcGeometry`` (m-parity) exactly.
    """

    name = "rotating"

    @property
    def stripe_width(self) -> int:
        return self.num_drives

    def parity_drives(self, stripe: int) -> Tuple[int, ...]:
        n = self.num_drives
        first = (n - 1) - (stripe % n)
        return tuple((first + j) % n for j in range(self.num_parity))

    def data_drive(self, stripe: int, data_index: int) -> int:
        anchor = self.parity_drives(stripe)[-1]
        return (anchor + 1 + data_index) % self.num_drives

    def data_index_of_drive(self, stripe: int, drive: int) -> int:
        parity = self.parity_drives(stripe)
        if drive in parity:
            raise ValueError(f"drive {drive} holds parity for stripe {stripe}")
        return (drive - parity[-1] - 1) % self.num_drives

    def stripe_drives(self, stripe: int) -> Tuple[int, ...]:
        parity = self.parity_drives(stripe)
        anchor = parity[-1]
        return parity + tuple(
            (anchor + 1 + d) % self.num_drives
            for d in range(self.data_per_stripe)
        )


class DeclusteredLayout(Layout):
    """Seeded PRIME-style declustered layout with distributed spares.

    A pseudo-random permutation ``perm`` of the drives (seeded child
    RNG, ``repro.layout:<seed>``) is walked with a stride coprime to
    ``num_drives``; stripe ``s`` occupies the window
    ``perm[(s*stride + j) mod n]`` for ``j < stripe_width`` (parity in
    the first ``num_parity`` slots, then data), and the remainder of
    the window is its spare capacity.  Because the stride generates the
    full cyclic group, every drive holds each role exactly once per
    ``num_drives`` consecutive stripes — placement is perfectly
    balanced over that window (the declustering bound the property
    suite asserts).

    :meth:`remap_to_spare` substitutes a failed member's chunk with a
    distributed spare, preserving the chunk's role; all placement
    queries observe the substitution, so rebuild can redirect a dead
    member's chunks onto per-stripe spares that differ stripe to
    stripe.
    """

    name = "declustered"

    def __init__(
        self,
        num_drives: int,
        num_parity: int,
        stripe_width: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_drives, num_parity)
        if stripe_width <= 0:
            stripe_width = num_drives - 1  # leave >= 1 distributed spare
        if not num_parity + 1 <= stripe_width <= num_drives:
            raise ValueError(
                f"stripe_width {stripe_width} out of range "
                f"[{num_parity + 1}, {num_drives}]"
            )
        self.seed = seed
        self._stripe_width = stripe_width
        rng = random.Random(f"repro.layout:{seed}")
        perm = list(range(num_drives))
        rng.shuffle(perm)
        self.perm: Tuple[int, ...] = tuple(perm)
        coprimes = [c for c in range(1, num_drives) if math.gcd(c, num_drives) == 1]
        self.stride = coprimes[rng.randrange(len(coprimes))]
        #: (stripe, original member drive) -> spare drive substitution
        self._remaps: Dict[Tuple[int, int], int] = {}

    @property
    def stripe_width(self) -> int:
        return self._stripe_width

    def _window(self, stripe: int) -> Tuple[int, ...]:
        n = self.num_drives
        base = (stripe * self.stride) % n
        return tuple(self.perm[(base + j) % n] for j in range(n))

    def stripe_drives(self, stripe: int) -> Tuple[int, ...]:
        members = list(self._window(stripe)[: self._stripe_width])
        if self._remaps:
            for slot, drive in enumerate(members):
                members[slot] = self._remaps.get((stripe, drive), drive)
        return tuple(members)

    def parity_drives(self, stripe: int) -> Tuple[int, ...]:
        return self.stripe_drives(stripe)[: self.num_parity]

    def data_drive(self, stripe: int, data_index: int) -> int:
        return self.stripe_drives(stripe)[self.num_parity + data_index]

    def data_index_of_drive(self, stripe: int, drive: int) -> int:
        members = self.stripe_drives(stripe)
        try:
            slot = members.index(drive)
        except ValueError:
            raise ValueError(
                f"drive {drive} is not a member of stripe {stripe}"
            ) from None
        if slot < self.num_parity:
            raise ValueError(f"drive {drive} holds parity for stripe {stripe}")
        return slot - self.num_parity

    def spare_drives(self, stripe: int) -> Tuple[int, ...]:
        used = {s for (st, _), s in self._remaps.items() if st == stripe}
        window = self._window(stripe)
        return tuple(d for d in window[self._stripe_width :] if d not in used)

    def remap_to_spare(self, stripe: int, failed: int) -> int:
        """Redirect ``failed``'s chunk in ``stripe`` onto the stripe's first
        free distributed spare; returns the spare drive.

        Role-preserving: after the remap the spare answers every
        placement query the failed drive used to.  Raises when
        ``failed`` is not a member or the stripe's spare capacity is
        exhausted.
        """
        members = self.stripe_drives(stripe)
        if failed not in members:
            raise ValueError(f"drive {failed} is not a member of stripe {stripe}")
        spares = self.spare_drives(stripe)
        if not spares:
            raise ValueError(f"stripe {stripe} has no spare capacity left")
        original = failed
        for (st, orig), current in self._remaps.items():
            if st == stripe and current == failed:
                original = orig
                break
        spare = spares[0]
        self._remaps[(stripe, original)] = spare
        return spare

    def describe(self) -> str:
        return (
            f"{self.name}(n={self.num_drives}, p={self.num_parity}, "
            f"w={self._stripe_width}, seed={self.seed})"
        )


#: Registered layouts, keyed by the name the fuzz/chaos axes draw from.
LAYOUTS: Dict[str, type] = {
    RotatingLayout.name: RotatingLayout,
    DeclusteredLayout.name: DeclusteredLayout,
}


def make_layout(name: str, num_drives: int, num_parity: int, **kwargs) -> Layout:
    """Construct a registered layout by name (``rotating``/``declustered``)."""
    if name not in LAYOUTS:
        raise ValueError(f"unknown layout {name!r}; pick from {sorted(LAYOUTS)}")
    return LAYOUTS[name](num_drives, num_parity, **kwargs)
