"""Per-stripe write serialization.

"RAID does not allow concurrent writes to the same stripe.  The host-side
controller only admits one write I/O on a stripe at a time and keeps the
others in a queue." (§3)

:class:`StripeLockManager` provides exactly that: an exclusive FIFO lock
per stripe index, created lazily and discarded when uncontended.  Which
operations take the lock differs per system — the SPDK POC locks normal
reads too, while dRAID reads are lock-free (§8) — so the choice is left to
the controllers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.sim.core import Environment, Event


class StripeLockManager:
    """Exclusive FIFO locks keyed by stripe index."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiting: Dict[int, Deque[Event]] = {}
        self._held: Dict[int, bool] = {}
        self.contended_acquires = 0  #: how often a lock request had to wait

    def held(self, stripe: int) -> bool:
        return self._held.get(stripe, False)

    def queue_length(self, stripe: int) -> int:
        return len(self._waiting.get(stripe, ()))

    def acquire(self, stripe: int) -> Event:
        """Event that succeeds once the stripe lock is held by the caller."""
        event = self.env.event()
        if not self._held.get(stripe, False):
            self._held[stripe] = True
            event.succeed(stripe)
        else:
            self.contended_acquires += 1
            self._waiting.setdefault(stripe, deque()).append(event)
        return event

    def release(self, stripe: int) -> None:
        """Release the lock, waking the oldest queued waiter if any."""
        if not self._held.get(stripe, False):
            raise RuntimeError(f"stripe {stripe} released but not held")
        queue = self._waiting.get(stripe)
        while queue:
            waiter = queue.popleft()
            if not queue:
                del self._waiting[stripe]
            if waiter.triggered:
                queue = self._waiting.get(stripe)
                continue
            waiter.succeed(stripe)
            return
        if stripe in self._waiting:  # pragma: no cover - defensive
            del self._waiting[stripe]
        del self._held[stripe]
