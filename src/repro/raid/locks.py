"""Per-stripe write serialization.

"RAID does not allow concurrent writes to the same stripe.  The host-side
controller only admits one write I/O on a stripe at a time and keeps the
others in a queue." (§3)

:class:`StripeLockManager` provides exactly that: an exclusive FIFO lock
per stripe index, created lazily and discarded when uncontended.  Which
operations take the lock differs per system — the SPDK POC locks normal
reads too, while dRAID reads are lock-free (§8) — so the choice is left to
the controllers.

When a :class:`repro.verify.kernel.KernelSanitizer` is armed (via
``ClusterConfig.verify``) the manager reports every acquire/grant/release
so the sanitizer can detect lock-order inversions, double releases, leaked
holds and deadlocks.  Unarmed managers keep the exact pre-sanitizer
behavior: every hook sits behind an ``is None`` check on a class attribute.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.sim.core import Environment, Event


class _LockAcquire(Event):
    """A stripe-lock acquire that survives ``Process.interrupt``.

    A waiter interrupted while queued withdraws from the stripe's wait
    queue; a waiter interrupted *between* grant and resume passes the lock
    on (or releases it) so the stripe is never held by a process that will
    never run again.
    """

    __slots__ = ("manager", "stripe", "proc")

    def __init__(self, manager: "StripeLockManager", stripe: int) -> None:
        super().__init__(manager.env)
        self.manager = manager
        self.stripe = stripe
        #: acquiring process (for the sanitizer's ownership tracking)
        self.proc = manager.env._active_process

    def _abandoned(self) -> None:
        manager, self.manager = self.manager, None
        if manager is None:  # pragma: no cover - double interrupt, defensive
            return
        if self._ok is None:
            queue = manager._waiting.get(self.stripe)
            if queue is not None:
                try:
                    queue.remove(self)
                except ValueError:  # pragma: no cover - already granted
                    pass
                if not queue:
                    del manager._waiting[self.stripe]
        elif self._ok:
            # Granted but never consumed: behave as if the dead holder
            # released cleanly, waking the next live waiter.
            if manager.sanitizer is not None:
                manager.sanitizer.on_lock_release(manager, self.stripe)
            manager._pass_on(self.stripe)


class StripeLockManager:
    """Exclusive FIFO locks keyed by stripe index."""

    #: Armed by :class:`repro.verify.kernel.KernelSanitizer.watch_locks`;
    #: None keeps acquire/release on their zero-cost paths.
    sanitizer = None

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiting: Dict[int, Deque[_LockAcquire]] = {}
        self._held: Dict[int, bool] = {}
        self.contended_acquires = 0  #: how often a lock request had to wait

    def held(self, stripe: int) -> bool:
        return self._held.get(stripe, False)

    def queue_length(self, stripe: int) -> int:
        return len(self._waiting.get(stripe, ()))

    def acquire(self, stripe: int, ctx: Optional[Any] = None) -> Event:
        """Event that succeeds once the stripe lock is held by the caller.

        ``ctx`` is an optional :class:`repro.obs.TraceContext`: it is only
        consulted by an armed sanitizer, which attaches it to any
        :class:`~repro.verify.InvariantViolation` blaming this acquire.
        """
        event = _LockAcquire(self, stripe)
        if not self._held.get(stripe, False):
            self._held[stripe] = True
            if self.sanitizer is not None:
                self.sanitizer.on_lock_acquire(self, stripe, event, ctx, granted=True)
            event.succeed(stripe)
        else:
            self.contended_acquires += 1
            if self.sanitizer is not None:
                self.sanitizer.on_lock_acquire(self, stripe, event, ctx, granted=False)
            self._waiting.setdefault(stripe, deque()).append(event)
        return event

    def _pass_on(self, stripe: int) -> None:
        """Wake the oldest live waiter on ``stripe``, else free the lock."""
        queue = self._waiting.get(stripe)
        while queue:
            waiter = queue.popleft()
            if not queue:
                del self._waiting[stripe]
            if waiter.triggered:
                queue = self._waiting.get(stripe)
                continue
            if self.sanitizer is not None:
                self.sanitizer.on_lock_grant(self, stripe, waiter)
            waiter.succeed(stripe)
            return
        if stripe in self._waiting:  # pragma: no cover - defensive
            del self._waiting[stripe]
        del self._held[stripe]

    def release(self, stripe: int) -> None:
        """Release the lock, waking the oldest queued waiter if any."""
        if not self._held.get(stripe, False):
            if self.sanitizer is not None:
                self.sanitizer.on_double_release(self, stripe)
            raise RuntimeError(f"stripe {stripe} released but not held")
        if self.sanitizer is not None:
            self.sanitizer.on_lock_release(self, stripe)
        self._pass_on(stripe)
