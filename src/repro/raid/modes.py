"""Write-mode classification.

Parity RAID has three ways to execute a write (§2.1):

* **read-modify-write (RMW)** — read old data + old parity, XOR the deltas
  in.  Cheapest when few chunks change.
* **reconstruct-write (RCW)** — read the *untouched* chunks and recompute
  parity from scratch.  Cheaper once most of the stripe changes.
* **full-stripe write** — no reads at all; parity from the new data.

The classifier compares the read cost of RMW and RCW in bytes (the Linux MD
heuristic, generalized from its 4 KiB-page granularity to byte extents) and
ties go to RCW.  With the paper's default geometry (8 drives, 512 KiB
chunks, RAID-5) this reproduces §9.3's boundaries exactly: I/O < 1536 KiB →
RMW, 1536–3583 KiB → RCW, 3584 KiB → full stripe.
"""

from __future__ import annotations

from enum import Enum

from repro.raid.geometry import RaidGeometry, StripeExtent


class WriteMode(Enum):
    """How a stripe write produces its new parity: read-modify-write (read
    old data + old parity), reconstruct-write (read the untouched
    complement), or full-stripe (no reads at all)."""

    READ_MODIFY_WRITE = "rmw"
    RECONSTRUCT_WRITE = "rcw"
    FULL_STRIPE = "full"


def rmw_read_bytes(geometry: RaidGeometry, extent: StripeExtent) -> int:
    """Bytes RMW must read: old data under the write + old parity span."""
    span_off, span_len = extent.parity_span()
    return extent.touched_bytes + geometry.num_parity * span_len


def rcw_read_bytes(geometry: RaidGeometry, extent: StripeExtent) -> int:
    """Bytes RCW must read: everything in the stripe not being written."""
    return geometry.stripe_data_bytes - extent.touched_bytes


def classify_write(geometry: RaidGeometry, extent: StripeExtent) -> WriteMode:
    """Pick the cheapest write mode for one stripe extent."""
    if extent.touched_bytes == geometry.stripe_data_bytes:
        return WriteMode.FULL_STRIPE
    if rcw_read_bytes(geometry, extent) <= rmw_read_bytes(geometry, extent):
        return WriteMode.RECONSTRUCT_WRITE
    return WriteMode.READ_MODIFY_WRITE
