"""Online drive rebuild onto a replacement (§1 hot spares, §6 context).

With disaggregated storage a replacement drive comes from the shared pool;
the array must reconstruct the failed member's contents onto it while
staying online.  :class:`RebuildJob` sweeps the stripes in order:

* the failed member's *data* chunk is rebuilt through the array's degraded
  read path (which for dRAID is the §6.1 peer-to-peer reconstruction) and
  written to the replacement;
* the failed member's *parity* chunk is recomputed from the stripe's data.

A per-drive *rebuild watermark* on the controller makes rebuilt stripes
treat the member as healthy again, so concurrent writes update the
replacement directly and nothing goes stale — the array serves I/O during
the whole rebuild.  Each stripe is processed under the stripe lock to
serialize with writers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ec import raid6_pq, xor_blocks
from repro.raid.geometry import RaidLevel
from repro.sim.core import Environment, Event


@dataclass
class RebuildStats:
    """Progress counters of one rebuild job: chunk/stripe counts,
    ``bytes_written`` in bytes, ``started_ns``/``finished_ns`` in simulated
    nanoseconds."""

    stripes_rebuilt: int = 0
    data_chunks_rebuilt: int = 0
    parity_chunks_rebuilt: int = 0
    bytes_written: int = 0
    started_ns: int = 0
    finished_ns: int = 0

    @property
    def elapsed_ns(self) -> int:
        return max(0, self.finished_ns - self.started_ns)

    def rate_mb_s(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.bytes_written * 1e9 / self.elapsed_ns / 1e6


class RebuildJob:
    """Rebuild the contents of failed member ``drive`` onto its replacement.

    The replacement is modeled as the repaired physical drive on the same
    server slot (the pool-allocation itself is outside the data path).
    ``throttle_ns`` adds an inter-stripe delay so production deployments
    can bound rebuild interference with foreground traffic.
    """

    def __init__(
        self,
        array,
        drive: int,
        num_stripes: int,
        throttle_ns: int = 0,
    ) -> None:
        if drive not in array.failed:
            raise ValueError(f"drive {drive} is not failed")
        self.array = array
        self.drive = drive
        self.num_stripes = num_stripes
        self.throttle_ns = throttle_ns
        self.env: Environment = array.env
        self.stats = RebuildStats()

    def start(self) -> Event:
        """Begin the rebuild; the returned event fires on completion."""
        return self.env.process(self._run(), name=f"{self.array.name}.rebuild")

    @property
    def progress(self) -> float:
        """Fraction of stripes rebuilt so far."""
        if self.num_stripes == 0:
            return 1.0
        return self.stats.stripes_rebuilt / self.num_stripes

    def _run(self):
        array = self.array
        # physically replace the drive; the controller still treats it as
        # failed beyond the (initially zero) watermark.  heal() (not just
        # repair()) so the replacement carries no queued-channel, GC or
        # fail-slow residue from its previous life.
        replacement = array.cluster.servers[self.drive].drive
        replacement.heal()
        array.rebuild_watermark[self.drive] = 0
        self.stats.started_ns = self.env.now
        try:
            for stripe in range(self.num_stripes):
                yield array.locks.acquire(stripe)
                try:
                    yield from self._rebuild_stripe(stripe)
                    array.rebuild_watermark[self.drive] = stripe + 1
                finally:
                    array.locks.release(stripe)
                if self.throttle_ns:
                    yield self.env.timeout(self.throttle_ns)
                self.stats.stripes_rebuilt += 1
        except BaseException:
            if replacement.failed:
                # the replacement itself died mid-rebuild: nothing written
                # so far survives, so the next rebuild must restart from
                # stripe 0 — a stale watermark would serve reads from a
                # dead (or re-replaced, still-empty) drive
                array.rebuild_watermark.pop(self.drive, None)
                array.rebuilt_stripes.pop(self.drive, None)
            raise
        array.repair_drive(self.drive)
        self.stats.finished_ns = self.env.now
        return self.stats

    def _rebuild_stripe(self, stripe: int):
        drive = self.array.cluster.servers[self.drive].drive
        yield from rebuild_member_stripe(
            self.array, self.drive, stripe, drive, self.stats
        )


def rebuild_member_stripe(array, member: int, stripe: int, drive, stats=None):
    """Reconstruct ``member``'s chunk of ``stripe`` onto replacement
    ``drive`` (a generator; the caller must hold the stripe lock).

    Shared by the sequential :class:`RebuildJob` sweep and the
    risk-ordered scheduler in :mod:`repro.raid.recovery`: the failed
    member's *data* chunk is rebuilt through the array's degraded read
    path (for dRAID the §6.1 peer-to-peer reconstruction), its *parity*
    chunk is recomputed from the stripe's data.
    """
    geometry = array.geometry
    chunk = geometry.chunk_bytes
    if (
        not getattr(geometry, "full_width", True)
        and member not in geometry.stripe_drives(stripe)
    ):
        # declustered layout: this stripe holds no chunk of the member
        return
    parity_drives = geometry.parity_drives(stripe)
    if member in parity_drives:
        yield from _rebuild_parity_chunk(
            array, stripe, parity_drives.index(member), drive
        )
        if stats is not None:
            stats.parity_chunks_rebuilt += 1
    else:
        data_index = geometry.data_index_of_drive(stripe, member)
        offset = stripe * geometry.stripe_data_bytes + data_index * chunk
        # degraded read: dRAID reconstructs peer-to-peer, the baselines
        # pull width-1 chunks through the host (unlocked: the stripe
        # lock is already held by the caller)
        data = yield array.read_unlocked(offset, chunk)
        yield drive.write(stripe * chunk, chunk, data)
        if stats is not None:
            stats.data_chunks_rebuilt += 1
    if stats is not None:
        stats.bytes_written += chunk


class SpareRebuildJob:
    """Rebuild a failed member onto *distributed spares* (declustered).

    Requires a :class:`~repro.raid.layout.DeclusteredLayout` geometry:
    only the ``stripe_width / num_drives`` fraction of stripes that hold
    a chunk of the failed member need work, and each reconstructed chunk
    lands on that stripe's own spare drive (role-preserving
    ``remap_to_spare``), so rebuild *writes* fan out across the whole
    array instead of funnelling into one replacement — the declustering
    speed-up the ``geometries`` figure measures against
    :class:`RebuildJob` on the stock rotation.  Once a stripe is
    remapped it is served from the spare and no longer degraded; after
    the sweep the dead member holds no chunks and is dropped from the
    failed set (the physical drive stays dead — no replacement is
    allocated).
    """

    def __init__(
        self,
        array,
        drive: int,
        num_stripes: int,
        throttle_ns: int = 0,
    ) -> None:
        if drive not in array.failed:
            raise ValueError(f"drive {drive} is not failed")
        layout = array.geometry.layout
        if not hasattr(layout, "remap_to_spare"):
            raise ValueError(
                f"layout {layout.describe()} has no distributed spares"
            )
        self.array = array
        self.drive = drive
        self.num_stripes = num_stripes
        self.throttle_ns = throttle_ns
        self.env: Environment = array.env
        self.stats = RebuildStats()

    def start(self) -> Event:
        """Begin the rebuild; the returned event fires on completion."""
        return self.env.process(
            self._run(), name=f"{self.array.name}.spare-rebuild"
        )

    def _run(self):
        array = self.array
        geometry = array.geometry
        layout = geometry.layout
        chunk = geometry.chunk_bytes
        drives = array.cluster.drives()
        self.stats.started_ns = self.env.now
        for stripe in range(self.num_stripes):
            if self.drive not in geometry.stripe_drives(stripe):
                continue
            yield array.locks.acquire(stripe)
            try:
                yield from self._rebuild_stripe(
                    stripe, geometry, layout, chunk, drives
                )
            finally:
                array.locks.release(stripe)
            if self.throttle_ns:
                yield self.env.timeout(self.throttle_ns)
            self.stats.stripes_rebuilt += 1
        array.failed.discard(self.drive)
        array.rebuild_watermark.pop(self.drive, None)
        array.rebuilt_stripes.pop(self.drive, None)
        self.stats.finished_ns = self.env.now
        return self.stats

    def _rebuild_stripe(self, stripe, geometry, layout, chunk, drives):
        array = self.array
        parity_drives = geometry.parity_drives(stripe)
        if self.drive in parity_drives:
            parity_index = parity_drives.index(self.drive)
            spare = layout.remap_to_spare(stripe, self.drive)
            yield from _rebuild_parity_chunk(
                array, stripe, parity_index, drives[spare]
            )
            self.stats.parity_chunks_rebuilt += 1
        else:
            data_index = geometry.data_index_of_drive(stripe, self.drive)
            offset = stripe * geometry.stripe_data_bytes + data_index * chunk
            # reconstruct through the degraded read path *before* the
            # remap (the spare must not be a read source for this stripe)
            data = yield array.read_unlocked(offset, chunk)
            spare = layout.remap_to_spare(stripe, self.drive)
            yield drives[spare].write(stripe * chunk, chunk, data)
            self.stats.data_chunks_rebuilt += 1
        self.stats.bytes_written += chunk


def _rebuild_parity_chunk(array, stripe: int, parity_index: int, drive):
    geometry = array.geometry
    chunk = geometry.chunk_bytes
    offset = stripe * geometry.stripe_data_bytes
    data = yield array.read_unlocked(offset, geometry.stripe_data_bytes)
    block: Optional[np.ndarray] = None
    if data is not None:
        chunks = [data[d * chunk : (d + 1) * chunk] for d in range(geometry.data_per_stripe)]
        code = getattr(array, "code", None)
        if geometry.level is None and code is not None:
            block = code.encode(chunks)[parity_index]
        elif geometry.level is RaidLevel.RAID5 or parity_index == 0:
            block = xor_blocks(chunks)
        else:
            _, block = raid6_pq(chunks)
    yield drive.write(stripe * chunk, chunk, block)
