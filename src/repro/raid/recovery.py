"""Availability-aware recovery orchestration (§1 hot spares, §5.4, §6).

:class:`RebuildJob` sweeps one failed member's stripes in address order.
That is the right primitive but the wrong *policy* once failures overlap:
after a second failure in a RAID-6 group, the stripes that lost **two**
chunks sit at zero surviving redundancy — one more fault there is data
loss — while single-degraded stripes can still absorb a hit.  A sequential
per-drive sweep happily polishes safe stripes while the at-risk ones wait.

:class:`RecoveryOrchestrator` replaces direct ``RebuildJob`` kickoff with a
small control plane:

* **risk-ordered scheduling** — one stripe-centric scheduler rebuilds the
  stripe with the *least surviving redundancy* first (most erasures, then
  lowest index), repairing every pending member's chunk under one lock
  acquisition.  Double-degraded stripes drain before single-degraded ones.
* **hot-spare pool** — :class:`SparePool` bounds concurrent replacements;
  a rebuild waits (FIFO) for a spare before the replacement is installed.
* **SLO-paced rebuild I/O** — a periodic foreground probe read measures
  end-to-end latency; when its EWMA exceeds ``slo_p99_us`` the inter-stripe
  ``pace_ns`` doubles (up to ``max_pace_ns``), and it decays back once the
  probe drops well under the SLO — the scrubber's rate-limit pattern made
  adaptive.
* **gray-failure escalation** — with a :class:`~repro.faults.detect
  .FailSlowDetector`, the watch loop probes every member, ejects persistent
  stragglers (never past parity), and re-admits them through a full rebuild
  only once the detector's hysteresis band says they have genuinely
  recovered — no eject/re-admit flapping.

Progress is tracked per (member, stripe) in the controller's
``rebuilt_stripes`` out-of-order set, so foreground writes update already
rebuilt chunks in place exactly as with the watermark scheme.

Arming an orchestrator sets ``cluster.recovery``;
:class:`~repro.faults.injector.FaultInjector` then routes ``DriveHeal``
recovery through :meth:`request_rebuild` instead of spawning a
``RebuildJob`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.nvmeof.messages import IoError
from repro.raid.rebuild import RebuildStats, rebuild_member_stripe
from repro.sim.core import Environment, Event, _defuse_on_failure
from repro.sim.resources import CapacityResource
from repro.storage.drive import DriveFailedError


class SparePool:
    """A bounded pool of replacement drives (FIFO allocation).

    Disaggregated deployments keep a few hot spares per failure domain,
    not one per array; concurrent rebuilds beyond the pool size must
    queue.  ``replace_latency_ns`` charges the mechanical/administrative
    delay of attaching a replacement before its rebuild may start.
    """

    def __init__(self, env: Environment, capacity: int, replace_latency_ns: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"spare pool needs >= 1 spare, got {capacity}")
        if replace_latency_ns < 0:
            raise ValueError(f"negative replace latency {replace_latency_ns}")
        self.env = env
        self.replace_latency_ns = int(replace_latency_ns)
        self._resource = CapacityResource(env, capacity, name="spares")
        #: cumulative spare allocations
        self.allocated = 0
        #: allocations that had to queue behind an exhausted pool
        self.waits = 0

    @property
    def capacity(self) -> int:
        return self._resource.capacity

    @property
    def in_use(self) -> int:
        return self._resource.in_use

    @property
    def available(self) -> int:
        return self._resource.capacity - self._resource.in_use

    def acquire(self):
        """Take one spare (a generator; waits FIFO when exhausted)."""
        if self.available <= 0:
            self.waits += 1
        yield self._resource.request()
        if self.replace_latency_ns:
            yield self.env.timeout(self.replace_latency_ns)
        self.allocated += 1

    def release(self) -> None:
        """Return one spare to the pool."""
        self._resource.release()


@dataclass
class RecoveryStats:
    """Counters of one orchestrator: rebuild episodes, per-chunk progress,
    SLO pacing actions and gray-failure escalations."""

    rebuilds_started: int = 0
    rebuilds_completed: int = 0
    rebuilds_aborted: int = 0
    #: member-stripe chunks reconstructed
    chunks_recovered: int = 0
    #: member-stripe chunks that could not be reconstructed (beyond parity)
    chunks_unrecoverable: int = 0
    #: cumulative wall (sim) time members spent under rebuild
    rebuild_ns_total: int = 0
    gray_ejections: int = 0
    readmissions: int = 0
    probes: int = 0
    pace_increases: int = 0
    pace_decreases: int = 0
    #: pace slots where rebuild I/O yielded to foreground admission pressure
    pressure_sheds: int = 0


class RecoveryOrchestrator:
    """Risk-ordered, SLO-paced rebuild scheduling for one array.

    Construction arms the orchestrator on the array's cluster
    (``cluster.recovery``) so fault-injection heals route through it.
    ``request_rebuild`` is the one entry point; :meth:`start_watch` adds
    the autonomous mode (failure detection, gray escalation/re-admission)
    used by the availability experiment.
    """

    def __init__(
        self,
        array,
        num_stripes: int,
        spares: Optional[SparePool] = None,
        concurrency: int = 1,
        pace_ns: int = 0,
        max_pace_ns: int = 2_000_000,
        min_pace_ns: int = 50_000,
        slo_p99_us: Optional[float] = None,
        probe_every: int = 8,
        probe_bytes: int = 4096,
        detector=None,
        poll_ns: int = 500_000,
        exposure=None,
        pressure_pause_ns: int = 500_000,
    ) -> None:
        if num_stripes < 1:
            raise ValueError(f"need >= 1 stripe, got {num_stripes}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {probe_every}")
        self.array = array
        self.env: Environment = array.env
        self.num_stripes = int(num_stripes)
        self.spares = spares
        self.concurrency = int(concurrency)
        self.base_pace_ns = int(pace_ns)
        self.pace_ns = int(pace_ns)
        self.max_pace_ns = int(max_pace_ns)
        self.min_pace_ns = int(min_pace_ns)
        self.slo_p99_us = slo_p99_us
        self.probe_every = int(probe_every)
        self.probe_bytes = int(probe_bytes)
        self.detector = detector if detector is not None else array.failslow_detector
        self.poll_ns = int(poll_ns)
        self.exposure = exposure
        #: extra back-off per pace slot while foreground admission pressure
        #: is high (overload control armed only; see :meth:`_pace`)
        self.pressure_pause_ns = int(pressure_pause_ns)
        self.stats = RecoveryStats()
        #: aggregate chunk/byte counters across all orchestrated rebuilds
        self.rebuild_stats = RebuildStats()
        # stripe -> members whose chunk there still needs reconstruction
        self._stripe_pending: Dict[int, Set[int]] = {}
        # stripes a scheduler worker is currently reconstructing
        self._in_flight: Set[int] = set()
        # member -> count of stripes still pending (0 == rebuild complete)
        self._remaining: Dict[int, int] = {}
        # member -> event fired when its rebuild completes (or aborts)
        self._done: Dict[int, Event] = {}
        # member -> sim time its rebuild was admitted (duration accounting)
        self._started_at: Dict[int, int] = {}
        # members ejected for gray (fail-slow) behavior, awaiting re-admission
        self._gray: Set[int] = set()
        self._scheduler_running = False
        self._watch_proc: Optional[Event] = None
        self._watch_stop = True
        self._ewma_probe_us: Optional[float] = None
        self._since_probe = 0
        array.cluster.recovery = self

    # -- public API ------------------------------------------------------------

    def request_rebuild(self, member: int) -> Event:
        """Rebuild failed ``member``; the returned event fires on repair.

        Concurrent requests for the same member coalesce onto one rebuild.
        The event *fails* (with the underlying error) if the replacement
        itself dies mid-rebuild — a later request starts over.
        """
        return self.env.process(
            self._request(member), name=f"{self.array.name}.recover{member}"
        )

    def risk_index(self) -> Dict[int, int]:
        """Histogram ``surviving redundancy -> stripe count``.

        A RAID-6 array with one wholly-failed member reports every stripe
        at level 1; as the rebuild progresses stripes migrate back to
        level 2.  Level 0 stripes are one fault away from data loss —
        exactly the ones the scheduler drains first.
        """
        array = self.array
        parity = array.geometry.num_parity
        histogram: Dict[int, int] = {}
        for stripe in range(self.num_stripes):
            erased = sum(1 for m in array.failed if array.drive_failed(m, stripe))
            level = parity - erased
            histogram[level] = histogram.get(level, 0) + 1
        return histogram

    def start_watch(self, auto_rebuild: bool = True) -> Event:
        """Start the autonomous poll loop (idempotent).

        Every ``poll_ns``: probe members and feed the fail-slow detector,
        eject persistent stragglers / re-admit recovered ones through the
        hysteresis band, kick rebuilds for hard-failed members (when
        ``auto_rebuild``), and sample the exposure tracker if attached.
        """
        if self._watch_proc is not None:
            return self._watch_proc
        self._watch_stop = False
        self._watch_proc = self.env.process(
            self._watch(auto_rebuild), name=f"{self.array.name}.recovery-watch"
        )
        return self._watch_proc

    def stop_watch(self) -> None:
        """Ask the watch loop to exit at its next tick."""
        self._watch_stop = True

    @property
    def rebuilding(self) -> bool:
        """Whether any member rebuild is currently in flight."""
        return bool(self._remaining)

    # -- admission -------------------------------------------------------------

    def _request(self, member: int):
        if member not in self.array.failed:
            return None
        result = yield self._enqueue(member)
        return result

    def _enqueue(self, member: int) -> Event:
        done = self._done.get(member)
        if done is None:
            done = self.env.event()
            # an aborted rebuild nobody awaits must not crash the kernel
            done.callbacks.append(_defuse_on_failure)
            self._done[member] = done
            self.env.process(
                self._admit(member), name=f"{self.array.name}.spare{member}"
            )
        return done

    def _admit(self, member: int):
        array = self.array
        if self.spares is not None:
            yield from self.spares.acquire()
        if member not in array.failed:
            # repaired while waiting for a spare (e.g. an explicit heal)
            if self.spares is not None:
                self.spares.release()
            done = self._done.pop(member, None)
            if done is not None and not done.triggered:
                done.succeed(None)
            return
        # install the replacement; heal() (not repair()) so it carries no
        # queued-channel, GC or fail-slow residue from its previous life
        self._member_drive(member).heal()
        self._started_at[member] = self.env.now
        self._remaining[member] = self.num_stripes
        for stripe in range(self.num_stripes):
            self._stripe_pending.setdefault(stripe, set()).add(member)
        # progress lives in the out-of-order rebuilt set, never a watermark:
        # the scheduler does not sweep in address order
        array.rebuild_watermark.pop(member, None)
        array.rebuilt_stripes[member] = set()
        self.stats.rebuilds_started += 1
        self._ensure_scheduler()

    def _ensure_scheduler(self) -> None:
        if self._scheduler_running:
            return
        self._scheduler_running = True
        self.env.process(self._scheduler(), name=f"{self.array.name}.recovery")

    # -- risk-ordered scheduler ------------------------------------------------

    def _scheduler(self):
        """Run ``concurrency`` reconstruction workers until the queue drains.

        Each worker repeatedly claims the most-at-risk unclaimed stripe.
        For dRAID the per-stripe reconstruction runs on the storage peers,
        so widening the pool scales rebuild bandwidth with the array; the
        host-centric baselines funnel every surviving chunk through one
        host and saturate it instead.
        """
        try:
            workers = [
                self.env.process(
                    self._rebuild_worker(), name=f"{self.array.name}.recovery{i}"
                )
                for i in range(self.concurrency)
            ]
            yield self.env.all_of(workers)
        finally:
            self._scheduler_running = False
            if self._stripe_pending:
                # a member was admitted while the pool was draining (e.g.
                # granted a spare freed by the last completion): respawn
                self._ensure_scheduler()

    def _rebuild_worker(self):
        array = self.array
        while self._stripe_pending:
            stripe = self._next_target()
            if stripe is None:
                # every pending stripe is claimed by a sibling worker
                yield self.env.timeout(self.poll_ns)
                continue
            self._in_flight.add(stripe)
            members = sorted(self._stripe_pending.get(stripe, ()))
            yield array.locks.acquire(stripe)
            try:
                for member in members:
                    pending = self._stripe_pending.get(stripe)
                    if pending is None or member not in pending:
                        continue
                    drive = self._member_drive(member)
                    try:
                        yield from rebuild_member_stripe(
                            array, member, stripe, drive, self.rebuild_stats
                        )
                    except (IoError, DriveFailedError) as exc:
                        if drive.failed:
                            # the replacement died: all progress is void
                            self._abort(member, exc)
                            continue
                        # reconstruction impossible (beyond parity) —
                        # skip the chunk, keep draining the rest
                        self.stats.chunks_unrecoverable += 1
                    self._mark_done(member, stripe)
            finally:
                array.locks.release(stripe)
                self._in_flight.discard(stripe)
            self._finish_completed()
            yield from self._pace()

    def _next_target(self) -> Optional[int]:
        """The unclaimed stripe with the most erasures pending
        (ties: lowest index); None when all pending stripes are claimed."""
        best = None
        best_key = None
        in_flight = self._in_flight
        for stripe, members in self._stripe_pending.items():
            if stripe in in_flight:
                continue
            key = (-len(members), stripe)
            if best_key is None or key < best_key:
                best = stripe
                best_key = key
        return best

    def _mark_done(self, member: int, stripe: int) -> None:
        pending = self._stripe_pending.get(stripe)
        if pending is not None:
            pending.discard(member)
            if not pending:
                del self._stripe_pending[stripe]
        if member in self._remaining:
            self._remaining[member] -= 1
        rebuilt = self.array.rebuilt_stripes.get(member)
        if rebuilt is not None:
            rebuilt.add(stripe)
        self.stats.chunks_recovered += 1

    def _finish_completed(self) -> None:
        array = self.array
        for member in [m for m, left in self._remaining.items() if left <= 0]:
            del self._remaining[member]
            array.repair_drive(member)
            started = self._started_at.pop(member, None)
            if started is not None:
                self.stats.rebuild_ns_total += self.env.now - started
            if self.spares is not None:
                self.spares.release()
            self.stats.rebuilds_completed += 1
            if member in self._gray:
                self._gray.discard(member)
                if self.detector is not None:
                    self.detector.note_readmit(member, self.env.now)
                self.stats.readmissions += 1
            done = self._done.pop(member, None)
            if done is not None and not done.triggered:
                done.succeed(None)

    def _abort(self, member: int, exc: BaseException) -> None:
        self._remaining.pop(member, None)
        self._started_at.pop(member, None)
        for stripe in list(self._stripe_pending):
            pending = self._stripe_pending[stripe]
            pending.discard(member)
            if not pending:
                del self._stripe_pending[stripe]
        self.array.rebuilt_stripes.pop(member, None)
        self._gray.discard(member)
        if self.spares is not None:
            self.spares.release()
        self.stats.rebuilds_aborted += 1
        done = self._done.pop(member, None)
        if done is not None and not done.triggered:
            done.fail(exc)

    # -- SLO pacing ------------------------------------------------------------

    def _pace(self):
        if self.slo_p99_us is not None:
            self._since_probe += 1
            if self._since_probe >= self.probe_every:
                self._since_probe = 0
                yield from self._probe_slo()
        qos = getattr(self.array, "qos", None)
        if qos is not None and qos.under_pressure:
            # the admission queue is at/above its background watermark:
            # rebuild I/O yields a full pressure pause so foreground drains
            # first (priority shedding, the recovery-side half of the
            # admission queue's early background rejection)
            qos.stats.shed_background += 1
            self.stats.pressure_sheds += 1
            yield self.env.timeout(max(self.pace_ns, self.pressure_pause_ns))
            return
        if self.pace_ns:
            yield self.env.timeout(self.pace_ns)

    def _probe_slo(self):
        """One foreground-path read; adapt ``pace_ns`` against the SLO."""
        start = self.env.now
        try:
            yield self.array.read(0, self.probe_bytes)
        except (IoError, DriveFailedError):
            return
        self.stats.probes += 1
        latency_us = (self.env.now - start) / 1_000.0
        if self._ewma_probe_us is None:
            self._ewma_probe_us = latency_us
        else:
            self._ewma_probe_us = 0.3 * latency_us + 0.7 * self._ewma_probe_us
        if self._ewma_probe_us > self.slo_p99_us:
            paced = min(self.max_pace_ns, max(self.pace_ns * 2, self.min_pace_ns))
            if paced != self.pace_ns:
                self.stats.pace_increases += 1
            self.pace_ns = paced
        elif self._ewma_probe_us < 0.5 * self.slo_p99_us and self.pace_ns > self.base_pace_ns:
            paced = max(self.base_pace_ns, self.pace_ns // 2)
            if paced < self.min_pace_ns and paced != self.base_pace_ns:
                paced = self.base_pace_ns
            if paced != self.pace_ns:
                self.stats.pace_decreases += 1
            self.pace_ns = paced

    # -- autonomous watch loop ---------------------------------------------------

    def _watch(self, auto_rebuild: bool):
        while not self._watch_stop:
            yield self.env.timeout(self.poll_ns)
            yield from self._watch_tick(auto_rebuild)
        self._watch_proc = None

    def _watch_tick(self, auto_rebuild: bool):
        array = self.array
        if self.detector is not None:
            yield from self._probe_members()
            self._escalate_gray()
            self._readmit_gray()
        if auto_rebuild:
            for member in sorted(array.failed):
                if member in self._done or member in self._remaining:
                    continue
                if self._member_drive(member).failed:
                    self._enqueue(member)
        if self.exposure is not None:
            self._sample_exposure()

    def _probe_members(self):
        """Probe every physically-alive member with a small read so the
        detector's peer medians come from one uniform sample stream —
        including ejected-but-alive (gray) members, whose fresh samples
        feed :meth:`FailSlowDetector.recovered`."""
        for member in range(self.array.geometry.num_drives):
            drive = self._member_drive(member)
            if drive.failed:
                continue
            start = self.env.now
            try:
                yield drive.read(0, self.probe_bytes)
            except DriveFailedError:
                continue
            self.detector.observe(member, self.env.now - start)

    def _escalate_gray(self) -> None:
        array = self.array
        for member in range(array.geometry.num_drives):
            if member in array.failed:
                continue
            if len(array.failed) >= array.geometry.num_parity:
                # never eject past parity: a slow answer beats data loss
                break
            if self.detector.suspect(member, exclude=array.failed, now_ns=self.env.now):
                array.failed.add(member)
                self.detector.note_eject(member, self.env.now)
                array.fault_stats.fail_slow_ejections += 1
                array.fault_stats.degraded_transitions += 1
                self._gray.add(member)
                self.stats.gray_ejections += 1

    def _readmit_gray(self) -> None:
        array = self.array
        for member in sorted(array.failed):
            if member in self._done or member in self._remaining:
                continue
            if self._member_drive(member).failed:
                continue  # hard failure — auto_rebuild's business
            if self.detector.recovered(
                member, self.env.now, exclude=array.failed - {member}
            ):
                # writes skipped the member while it was ejected, so
                # re-admission is a rebuild, not a flag flip
                self._gray.add(member)
                self._enqueue(member)

    def _sample_exposure(self) -> None:
        array = self.array
        worst = 0
        if array.failed:
            worst = max(
                sum(1 for m in array.failed if array.drive_failed(m, stripe))
                for stripe in range(self.num_stripes)
            )
        self.exposure.sample(
            self.env.now, worst, len(array.failed), array.geometry.num_parity
        )

    # -- helpers ---------------------------------------------------------------

    def _member_drive(self, member: int):
        server_of = getattr(self.array, "_server_of", None)
        server = server_of(member) if server_of is not None else member
        return self.array.cluster.servers[server].drive
