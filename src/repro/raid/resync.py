"""Post-crash resynchronization (§5.4, host failures).

A host crash can leave stripes with data written but parity not (or vice
versa).  Resync repairs a stripe by reading its full data extent through
the (degraded-aware) read path and rewriting it, which forces a full-stripe
write that regenerates parity from the data — valid for every controller in
this repository because full-stripe writes recompute parity from scratch.

With a :class:`~repro.raid.bitmap.WriteIntentBitmap` the set of stripes is
the bitmap's dirty set; without one, all stripes (a full scan).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.core import Environment, Event


def resync_stripes(array, stripes: Iterable[int]) -> Event:
    """Resynchronize ``stripes`` of ``array``; returns a completion event.

    The event's value is the number of stripes rewritten.
    """
    env: Environment = array.env
    return env.process(_resync(array, list(stripes)), name=f"{array.name}.resync")


def _resync(array, stripes: List[int]):
    geometry = array.geometry
    count = 0
    for stripe in stripes:
        offset = stripe * geometry.stripe_data_bytes
        data = yield array.read(offset, geometry.stripe_data_bytes)
        # a full-stripe write recomputes parity from the data image
        yield array.write(offset, geometry.stripe_data_bytes, data)
        count += 1
    return count


def resync_after_crash(array, bitmap) -> Event:
    """Resync exactly the stripes the write-intent bitmap marked dirty."""
    return resync_stripes(array, bitmap.dirty_stripes())
