"""Array scrubbing: verify on-disk parity consistency.

Only meaningful for functional-mode drives (which carry real bytes).
Used by the whole-array tests as the ground-truth invariant — after any
workload, every stripe's parity must equal the parity of its data chunks —
and usable as a library facility (e.g. after crash-recovery resync).

:func:`scrub_array` streams stripes in batches and verifies each batch
with vectorized numpy parity math (one XOR reduction across the member
rows instead of a Python loop per chunk), reporting progress through an
optional callback and returning a structured :class:`ScrubReport`.  For
the *online* scrubber that runs on the sim clock against a live array,
see :mod:`repro.raid.scrubber`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.ec import raid6_pq, xor_blocks
from repro.ec.gf import GF
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.storage.drive import NvmeDrive


@dataclass
class ScrubReport:
    """Result of one offline scrub sweep."""

    stripes_checked: int
    bad_stripes: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.bad_stripes


def scrub_stripe(
    drives: Sequence[NvmeDrive],
    geometry: RaidGeometry,
    stripe: int,
    code=None,
) -> bool:
    """True iff ``stripe``'s parity is consistent with its data.

    ``code`` supplies the erasure code (``encode(data) -> parities``) for
    generic geometries (``level is None``); RAID-5/6 stripes verify with
    the dedicated XOR/P+Q math as before.
    """
    chunk = geometry.chunk_bytes
    offset = stripe * chunk
    data = [
        drives[geometry.data_drive(stripe, d)].peek(offset, chunk)
        for d in range(geometry.data_per_stripe)
    ]
    parity_drives = geometry.parity_drives(stripe)
    if geometry.level is None:
        if code is None:
            raise ValueError("generic geometry needs an erasure code to scrub")
        expected = code.encode(data)
        return all(
            bool(np.array_equal(exp, drives[p].peek(offset, chunk)))
            for exp, p in zip(expected, parity_drives)
        )
    if geometry.level is RaidLevel.RAID5:
        expected = xor_blocks(data)
        actual = drives[parity_drives[0]].peek(offset, chunk)
        return bool(np.array_equal(expected, actual))
    p, q = raid6_pq(data)
    actual_p = drives[parity_drives[0]].peek(offset, chunk)
    actual_q = drives[parity_drives[1]].peek(offset, chunk)
    return bool(np.array_equal(p, actual_p) and np.array_equal(q, actual_q))


def scrub_array(
    drives: Sequence[NvmeDrive],
    geometry: RaidGeometry,
    num_stripes: int,
    batch_stripes: int = 64,
    progress: Optional[Callable[[int, int], None]] = None,
    code=None,
) -> ScrubReport:
    """Scrub ``num_stripes`` stripes; returns a :class:`ScrubReport`.

    Stripes are streamed in batches of ``batch_stripes``: each batch peeks
    one contiguous region per member and verifies all its stripes with
    vectorized parity math.  ``progress(stripes_done, num_stripes)`` is
    invoked after every batch.

    * RAID-5: the XOR across *all* members (data + P) of a consistent
      stripe is zero, independent of where P rotates to.
    * RAID-6: that same total XOR equals Q when P is consistent, which
      checks P; Q is then recomputed from the data chunks per rotation
      phase (stripes sharing ``stripe % num_drives`` have identical
      placement, so one fancy-indexed GF table lookup per phase covers
      the whole batch).
    """
    g = geometry
    if g.level not in (RaidLevel.RAID5, RaidLevel.RAID6) and code is None:
        raise ValueError(f"scrub_array supports RAID5/RAID6, not {g.level!r}")
    if batch_stripes <= 0:
        raise ValueError(f"batch_stripes must be positive, got {batch_stripes}")
    if g.level is None or not getattr(g, "full_width", True):
        # generic code or declustered members: the whole-row XOR trick
        # below assumes every drive holds a chunk of every stripe, so
        # fall back to per-stripe verification
        bad_list: List[int] = []
        done = 0
        for stripe in range(num_stripes):
            if not scrub_stripe(drives, g, stripe, code=code):
                bad_list.append(stripe)
            done += 1
            if progress is not None and (done % batch_stripes == 0 or done == num_stripes):
                progress(done, num_stripes)
        return ScrubReport(stripes_checked=done, bad_stripes=bad_list)
    chunk = g.chunk_bytes
    n = g.num_drives
    bad: List[int] = []
    checked = 0
    for start in range(0, num_stripes, batch_stripes):
        nb = min(batch_stripes, num_stripes - start)
        rows = np.stack(
            [drv.peek(start * chunk, nb * chunk).reshape(nb, chunk) for drv in drives]
        )
        total = rows[0].copy()
        for i in range(1, n):
            np.bitwise_xor(total, rows[i], out=total)
        if g.level is RaidLevel.RAID5:
            bad_mask = total.any(axis=1)
        else:
            bad_mask = np.zeros(nb, dtype=bool)
            phases = np.arange(start, start + nb) % n
            for phase in np.unique(phases):
                sel = np.nonzero(phases == phase)[0]
                s0 = start + int(sel[0])
                q_drive = g.parity_drives(s0)[1]
                # P-check: total XOR == Q iff P is consistent
                bad_mask[sel] |= (total[sel] ^ rows[q_drive][sel]).any(axis=1)
                # Q-check: recompute Q from the data chunks
                q_calc = np.zeros((len(sel), chunk), dtype=np.uint8)
                for d in range(g.data_per_stripe):
                    drive = g.data_drive(s0, d)
                    np.bitwise_xor(
                        q_calc,
                        GF.mul_table[GF.gen_pow(d)][rows[drive][sel]],
                        out=q_calc,
                    )
                bad_mask[sel] |= (q_calc ^ rows[q_drive][sel]).any(axis=1)
        bad.extend(start + int(i) for i in np.nonzero(bad_mask)[0])
        checked += nb
        if progress is not None:
            progress(checked, num_stripes)
    return ScrubReport(stripes_checked=checked, bad_stripes=bad)
