"""Array scrubbing: verify on-disk parity consistency.

Only meaningful for functional-mode drives (which carry real bytes).
Used by the whole-array tests as the ground-truth invariant — after any
workload, every stripe's parity must equal the parity of its data chunks —
and usable as a library facility (e.g. after crash-recovery resync).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ec import raid6_pq, xor_blocks
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.storage.drive import NvmeDrive


def scrub_stripe(drives: Sequence[NvmeDrive], geometry: RaidGeometry, stripe: int) -> bool:
    """True iff ``stripe``'s parity is consistent with its data."""
    chunk = geometry.chunk_bytes
    offset = stripe * chunk
    data = [
        drives[geometry.data_drive(stripe, d)].peek(offset, chunk)
        for d in range(geometry.data_per_stripe)
    ]
    parity_drives = geometry.parity_drives(stripe)
    if geometry.level is RaidLevel.RAID5:
        expected = xor_blocks(data)
        actual = drives[parity_drives[0]].peek(offset, chunk)
        return bool(np.array_equal(expected, actual))
    p, q = raid6_pq(data)
    actual_p = drives[parity_drives[0]].peek(offset, chunk)
    actual_q = drives[parity_drives[1]].peek(offset, chunk)
    return bool(np.array_equal(p, actual_p) and np.array_equal(q, actual_q))


def scrub_array(
    drives: Sequence[NvmeDrive], geometry: RaidGeometry, num_stripes: int
) -> List[int]:
    """Scrub ``num_stripes`` stripes; returns the inconsistent stripe indices."""
    return [
        stripe
        for stripe in range(num_stripes)
        if not scrub_stripe(drives, geometry, stripe)
    ]
