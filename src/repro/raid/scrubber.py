"""The online scrub daemon: background verify-and-repair on the sim clock.

Production arrays scrub continuously — a rate-limited background walker
reads every stripe, verifies it and repairs what it finds, trading a
little foreground bandwidth for a bounded silent-corruption detection
latency (Thomasian's RAID tutorial treats scrubbing as a first-class
reliability mechanism next to parity).  :class:`ScrubDaemon` is that
walker for any armed array:

* it runs as a simulation process *concurrently with foreground I/O*,
  serializing per stripe through the array's stripe locks;
* every member chunk is read through the array's normal member-I/O path
  (so the scrub's bandwidth cost is physically modeled, not assumed) and
  verified against the cluster's :class:`~repro.storage.integrity.IntegrityStore`;
* bad chunks are repaired through the controller's shared parity
  read-repair (the same path foreground reads use), honoring degraded /
  rebuilding members;
* in functional mode, clean-looking stripes additionally get a parity
  audit (recompute P/Q from the data read-back) — defense in depth
  against corruption that slipped past the checksum layer;
* pacing: ``pace_ns`` of idle time per stripe bounds the daemon's
  bandwidth draw (pace 0 = as fast as the array allows).

Each completed pass appends a :class:`ScrubPassReport` to ``reports``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ec import xor_blocks
from repro.ec.gf import GF
from repro.raid.geometry import RaidLevel
from repro.sim.core import AllOf, _defuse_on_failure


@dataclass(frozen=True)
class ScrubPassReport:
    """Summary of one full pass over the array."""

    stripes_scanned: int
    chunks_verified: int
    bad_chunks: int
    repaired_chunks: int
    unrecoverable_chunks: int
    parity_rewrites: int
    started_ns: int
    finished_ns: int

    @property
    def clean(self) -> bool:
        return self.bad_chunks == 0 and self.parity_rewrites == 0

    @property
    def duration_ns(self) -> int:
        return self.finished_ns - self.started_ns


class ScrubDaemon:
    """Background verify-and-repair walker over ``num_stripes`` stripes."""

    def __init__(
        self,
        array,
        num_stripes: int,
        pace_ns: int = 0,
        repeat: bool = False,
        name: Optional[str] = None,
        pressure_pause_ns: int = 500_000,
    ) -> None:
        if array.integrity is None:
            raise ValueError(
                f"{array.name}: ScrubDaemon needs an armed IntegrityStore "
                f"(IntegrityStore(...).attach(cluster))"
            )
        if num_stripes <= 0:
            raise ValueError(f"num_stripes must be positive, got {num_stripes}")
        if pace_ns < 0:
            raise ValueError(f"negative pace {pace_ns}")
        self.array = array
        self.env = array.env
        self.num_stripes = num_stripes
        self.pace_ns = pace_ns
        #: extra back-off per stripe while foreground admission pressure is
        #: high (overload control armed only; zero-cost when disarmed)
        self.pressure_pause_ns = pressure_pause_ns
        self.pressure_sheds = 0
        self.repeat = repeat
        self.name = name or f"{array.name}.scrub"
        self.reports: List[ScrubPassReport] = []
        #: stripes scanned across all passes, including the one in flight
        #: (lets callers measure coverage of an interrupted pass)
        self.stripes_scanned_total = 0
        self._stop = False
        self.process = self.env.process(self._run(), name=self.name)

    def stop(self) -> None:
        """Ask the daemon to finish after the stripe it is on."""
        self._stop = True

    # -- the walker --------------------------------------------------------

    def _run(self):
        while True:
            report = yield from self._scrub_pass()
            self.reports.append(report)
            if self._stop or not self.repeat:
                return

    def _scrub_pass(self):
        array = self.array
        g = array.geometry
        chunk = g.chunk_bytes
        store = array.integrity
        stats = array.integrity_stats
        drives = array.cluster.drives()
        started = self.env.now
        scanned = verified = bad_total = repaired = unrecoverable = 0
        rewrites_before = stats.parity_rewrites
        for stripe in range(self.num_stripes):
            if self._stop:
                break
            yield array.locks.acquire(stripe)
            try:
                failed = array.failed_in_stripe(stripe)
                members = [d for d in array._stripe_members(stripe) if d not in failed]
                reads = [
                    self.env.process(array._member_read(d, stripe * chunk, chunk))
                    for d in members
                ]
                gathered = AllOf(self.env, reads)
                gathered.callbacks.append(_defuse_on_failure)
                outcome = yield from array._await_repair_io(gathered)
                if outcome is None:
                    continue  # members erroring/stalling out; retry next pass
                blocks = {d: outcome[e] for d, e in zip(members, reads)}
                bad = []
                for d in members:
                    stats.chunks_verified += 1
                    verified += 1
                    if not store.chunk_ok(drives[d], stripe, data=blocks[d]):
                        bad.append(d)
                if bad:
                    bad_total += len(bad)
                    stats.scrub_repairs += 1
                    ok = yield from array._read_repair(stripe, bad, locked=True)
                    if ok:
                        repaired += len(bad)
                    else:
                        unrecoverable += len(bad)
                elif (
                    array.functional
                    and not failed
                    and g.level in (RaidLevel.RAID5, RaidLevel.RAID6)
                ):
                    yield from self._parity_audit(stripe, blocks)
            finally:
                array.locks.release(stripe)
            scanned += 1
            self.stripes_scanned_total += 1
            qos = getattr(array, "qos", None)
            if qos is not None and qos.under_pressure:
                # foreground is pressing against the admission bound: the
                # scrub walker backs off a full pressure pause instead of
                # its normal pace, shedding verify bandwidth to clients
                qos.stats.shed_background += 1
                self.pressure_sheds += 1
                yield self.env.timeout(max(self.pace_ns, self.pressure_pause_ns))
            elif self.pace_ns:
                yield self.env.timeout(self.pace_ns)
        return ScrubPassReport(
            stripes_scanned=scanned,
            chunks_verified=verified,
            bad_chunks=bad_total,
            repaired_chunks=repaired,
            unrecoverable_chunks=unrecoverable,
            parity_rewrites=stats.parity_rewrites - rewrites_before,
            started_ns=started,
            finished_ns=self.env.now,
        )

    def _parity_audit(self, stripe: int, blocks):
        """Functional-mode defense in depth: recompute P/Q from the data
        read-back and rewrite any parity chunk that drifted (corruption
        laundered into parity before detection could see it)."""
        array = self.array
        g = array.geometry
        chunk = g.chunk_bytes
        parity = g.parity_drives(stripe)
        data = [blocks[g.data_drive(stripe, d)] for d in range(g.data_per_stripe)]
        if data[0] is None:
            return  # timing-only read-back: nothing to audit
        rewrites = []
        p_calc = xor_blocks(data)
        if not np.array_equal(p_calc, blocks[parity[0]]):
            rewrites.append((parity[0], p_calc))
        if g.level is RaidLevel.RAID6:
            q_calc = np.zeros(chunk, dtype=np.uint8)
            for i, blk in enumerate(data):
                GF.mul_bytes_inplace_xor(q_calc, GF.gen_pow(i), blk)
            if not np.array_equal(q_calc, blocks[parity[1]]):
                rewrites.append((parity[1], q_calc))
        if not rewrites:
            return
        yield array._charge_xor(g.data_per_stripe, chunk)
        writes = [
            self.env.process(array._member_write(d, stripe * chunk, chunk, blk))
            for d, blk in rewrites
        ]
        gathered = AllOf(self.env, writes)
        gathered.callbacks.append(_defuse_on_failure)
        if (yield from array._await_repair_io(gathered)) is None:
            return  # parity drive erroring/stalling out; retry next pass
        array.integrity_stats.parity_rewrites += len(rewrites)
