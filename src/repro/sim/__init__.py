"""Discrete-event simulation kernel.

This package implements a small, deterministic, generator-based
discrete-event simulator in the style of ``simpy``.  Time is modeled as an
integer number of nanoseconds.  The kernel is self-contained so that the
rest of the repository depends on no external simulation framework.

Public surface:

* :class:`~repro.sim.core.Environment` — the event loop.
* :class:`~repro.sim.core.Event`, :class:`~repro.sim.core.Timeout`,
  :class:`~repro.sim.core.Process` — primitive events.
* :class:`~repro.sim.core.AllOf` / :class:`~repro.sim.core.AnyOf` —
  condition events.
* :class:`~repro.sim.core.Interrupt` — raised inside a process when
  another process interrupts it.
* :mod:`repro.sim.resources` — FIFO stores, counted resources and fluid
  bandwidth channels used to model NICs, SSDs and CPU cores.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import (
    BandwidthChannel,
    CapacityResource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthChannel",
    "CapacityResource",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Store",
    "Timeout",
]
