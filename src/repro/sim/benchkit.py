"""Canonical kernel microbenchmark workloads.

These are the fixed workloads behind ``scripts/bench_wallclock.py`` and
``benchmarks/test_perf_kernel.py``: a process ping-pong over stores, a
timeout churn that stresses the event calendar, and a bandwidth-channel
sweep that stresses :meth:`BandwidthChannel.reserve` under internal
parallelism.  Each returns the number of simulated operations executed so
callers can report operations per wall-clock second; the workload shapes
must stay fixed across versions for the numbers to be comparable.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from repro.sim.core import Environment
from repro.sim.resources import NS_PER_S, BandwidthChannel, CapacityResource, Store

#: Calendar events created by the most recent workload run (``env._eid``
#: after the run: every scheduled event — timer, wake-up, process start —
#: consumes exactly one id, whether it is dispatched through the heap, the
#: now-queue or the batch-advance path).  Lets harnesses report an
#: auditable event count next to the fixed operation count.
LAST_EVENT_COUNT = 0


def pingpong(rounds: int = 30_000) -> int:
    """Two processes exchange a token via two stores.

    Each round is four kernel operations: two store hand-offs and two
    timeouts.  Returns the operation count.
    """
    env = Environment()
    ping: Store = Store(env, name="ping")
    pong: Store = Store(env, name="pong")

    def player(inbox: Store, outbox: Store, serve_first: bool) -> object:
        if serve_first:
            outbox.put(0)
        for _ in range(rounds):
            token = yield inbox.get()
            yield env.timeout(5)
            outbox.put(token + 1)

    env.process(player(ping, pong, serve_first=False), name="ponger")
    env.process(player(pong, ping, serve_first=True), name="pinger")
    env.run()
    global LAST_EVENT_COUNT
    LAST_EVENT_COUNT = env._eid
    return rounds * 4


def timeout_churn(processes: int = 64, rounds: int = 600) -> int:
    """Many interleaved timers with co-prime periods (heap stress).

    Returns the operation count (one per timeout fired).
    """
    env = Environment()

    def ticker(period: int) -> object:
        for _ in range(rounds):
            yield env.timeout(period)

    for i in range(processes):
        env.process(ticker(3 + (i * 7) % 97), name=f"ticker{i}")
    env.run()
    global LAST_EVENT_COUNT
    LAST_EVENT_COUNT = env._eid
    return processes * rounds


def bandwidth_sweep(
    transfers: int = 24_000, workers: int = 48, parallelism: int = 8
) -> int:
    """Closed-loop transfers through one parallel bandwidth channel.

    Queue-depth-limited like a drive: stresses ``reserve``'s earliest-free
    server selection and the store/semaphore fast paths.  Returns the
    operation count (one per transfer).
    """
    env = Environment()
    channel = BandwidthChannel(
        env, rate_bytes_per_s=NS_PER_S * 64, parallelism=parallelism, name="bench"
    )
    slots = CapacityResource(env, capacity=workers, name="qd")
    per_worker = transfers // workers

    def worker() -> object:
        for _ in range(per_worker):
            yield slots.request()
            yield channel.transfer(4096)
            slots.release()

    for _ in range(workers):
        env.process(worker(), name="xfer")
    env.run()
    global LAST_EVENT_COUNT
    LAST_EVENT_COUNT = env._eid
    return per_worker * workers


#: name -> workload callable (fixed canonical parameters).
KERNEL_WORKLOADS: Dict[str, Callable[[], int]] = {
    "pingpong": pingpong,
    "timeout_churn": timeout_churn,
    "bandwidth_sweep": bandwidth_sweep,
}


def run_workload(name: str, repeats: int = 3) -> Tuple[float, int]:
    """Best-of-``repeats`` timing: returns (events_per_second, operations)."""
    fn = KERNEL_WORKLOADS[name]
    best = float("inf")
    ops = 0
    for _ in range(repeats):
        start = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return ops / best, ops
