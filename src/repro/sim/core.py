"""Core of the discrete-event simulation kernel.

The design mirrors ``simpy``: an :class:`Environment` owns a binary-heap
event calendar; a :class:`Process` wraps a Python generator that yields
events and is resumed when those events trigger.  Unlike ``simpy``, time is
an integer (nanoseconds) so simulations are exactly reproducible across
platforms, and the implementation is trimmed to what this repository needs.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Sentinel for "event has not been assigned a value yet".
_PENDING = object()

ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an invalid state."""


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An event that may succeed (with a value) or fail (with an exception).

    Callbacks are plain callables invoked with the event as their only
    argument when the event is *processed* (popped from the calendar).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._scheduled = False

    def __repr__(self) -> str:
        state = "pending"
        if self._ok is True:
            state = f"ok({self._value!r})"
        elif self._ok is False:
            state = f"failed({self._value!r})"
        return f"<{type(self).__name__} {state}>"

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (succeeded or failed)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has no value yet")
        return self._value

    def _abandoned(self) -> None:
        """Hook: the process waiting on this event was interrupted away.

        :meth:`Process.interrupt` detaches the consumer and then calls this
        so resource-wait events (queued :class:`~repro.sim.resources.Store`
        gets, :class:`~repro.sim.resources.CapacityResource` requests,
        stripe-lock acquires) can withdraw from their wait queue — or, if
        the grant already happened, hand the slot back — instead of leaking
        it to a consumer that will never resume.  The base event has no
        resource attached, so this is a no-op.
        """

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # inlined self.env._schedule(self) — succeed is a kernel hot path
        if not self._scheduled:
            self._scheduled = True
            env = self.env
            env._eid += 1
            heapq.heappush(env._queue, (env.now, env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the event;
        if nothing waits, :meth:`Environment.run` re-raises it (errors never
        pass silently).
        """
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the kernel's most common event; initialize and
        # schedule inline rather than through Event.__init__/_schedule.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._scheduled = True
        self.delay = delay
        env._eid += 1
        heapq.heappush(env._queue, (env.now + delay, env._eid, self))


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


def _defuse_on_failure(event: "Event") -> None:
    """Sink callback for events abandoned by an interrupted process."""
    if event._ok is False:
        event._defused = True


class Process(Event):
    """A running process: an event that triggers when its generator returns.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event succeeds the generator is resumed with the event's value; when it
    fails the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name} at t={self.env.now}>"

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is None:
            raise SimulationError(f"{self!r} is not waiting on anything")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        # Detach from the current wait target so the original event no
        # longer resumes this process when it eventually triggers.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
            # The interrupted process was this event's consumer; if the
            # abandoned event later fails there is nobody left to handle
            # it, so defuse instead of crashing the simulation.
            target.callbacks.append(_defuse_on_failure)
        self._target = None
        # Let resource-wait events return queued positions or granted
        # slots; a plain Event's hook is a no-op.
        target._abandoned()
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event is None or event._ok:
                    target = generator.send(None if event is None else event._value)
                else:
                    event._defused = True
                    target = generator.throw(event._value)
                while not isinstance(target, Event):
                    # Throw into the generator so the process terminates (or
                    # recovers) through the normal paths below — the Process
                    # event must still succeed or fail, or waiters leak.
                    target = generator.throw(
                        SimulationError(f"process yielded a non-event: {target!r}")
                    )
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self.fail(exc)
                return

            if target.callbacks is None:
                # Already processed: resume immediately with its outcome.
                event = target
                continue
            self._target = target
            target.callbacks.append(self._resume)
            env._active_process = None
            return


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._outcome())
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
            if self.triggered:
                break

    def _outcome(self) -> Any:
        return {e: e._value for e in self.events if e.triggered and e._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every child event has succeeded (fails fast on error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._outcome())


class AnyOf(Condition):
    """Triggers as soon as any child event succeeds (fails fast on error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._outcome())


class Environment:
    """The simulation event loop.

    ``now`` is the current simulated time in integer nanoseconds.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self.now: int = int(initial_time)
        self._queue: List = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` nanoseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._eid += 1
        heapq.heappush(self._queue, (self.now + delay, self._eid, event))

    def _step(self) -> None:
        time, _, event = heapq.heappop(self._queue)
        self.now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), an integer
        time, or an :class:`Event` (run until it triggers and return its
        value).

        Integer-horizon semantics (locked by ``tests/test_sim_core.py``):
        every event with timestamp ``<= until`` is processed before ``run``
        returns — including zero-delay cascades spawned *at* the horizon —
        and the clock is left exactly at ``until``.  Events scheduled after
        the horizon stay queued for the next ``run`` call.  This boundary
        is deterministic: two runs split at any horizon process the same
        events in the same order as one uninterrupted run.

        The event dispatch loop is inlined here (rather than calling
        :meth:`_step`) because it is the hottest code in the repository.
        """
        queue = self._queue
        pop = heapq.heappop
        if isinstance(until, Event):
            stop_event = until
            while queue and stop_event._ok is None:
                time, _, event = pop(queue)
                self.now = time
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
            if stop_event._ok is None:
                raise SimulationError(
                    f"simulation ran out of events before {stop_event!r} triggered"
                )
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value
        if until is not None:
            horizon = int(until)
            if horizon < self.now:
                raise ValueError(f"until={horizon} is in the past (now={self.now})")
            while queue and queue[0][0] <= horizon:
                time, _, event = pop(queue)
                self.now = time
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
            self.now = horizon
            return None
        while queue:
            time, _, event = pop(queue)
            self.now = time
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event._defused:
                raise event._value
        return None

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the calendar is empty."""
        return self._queue[0][0] if self._queue else None
