"""Core of the discrete-event simulation kernel.

The design mirrors ``simpy``: an :class:`Environment` owns a binary-heap
event calendar; a :class:`Process` wraps a Python generator that yields
events and is resumed when those events trigger.  Unlike ``simpy``, time is
an integer (nanoseconds) so simulations are exactly reproducible across
platforms, and the implementation is trimmed to what this repository needs.

Fast-path architecture (PR 6)
-----------------------------

Three coordinated optimizations keep the dispatch rate high without
changing a single event's outcome or ordering:

* **now-queue** — events scheduled at the current timestamp (``succeed``,
  ``fail``, store wake-ups, process starts) go to a FIFO deque instead of
  the heap.  Creation order equals event-id order, so draining the deque
  FIFO — interleaved with same-timestamp heap entries by event id — is
  exactly the order the pure-heap kernel dispatches.
* **batch-advance** — when a process yields the event the calendar would
  dispatch next anyway (typically a timer: the heap head, nothing queued
  at ``now``, no other listeners, inside the run horizon), ``_resume``
  pops it and continues the generator inline instead of parking and
  bouncing through ``Environment.run``.  Fluid-flow resources
  (:class:`~repro.sim.resources.BandwidthChannel`,
  :class:`~repro.storage.drive.NvmeDrive`) compute completion times in
  closed form and yield exactly such timers, so long stretches of
  independent completions advance in one tight loop.
* **event arena** — hot short-lived events (timers, uncontended
  store/semaphore grants) are recycled through per-class free lists on the
  environment.  Recycling is guarded by ``sys.getrefcount``: an event is
  returned to the arena only when the kernel holds the *only* reference,
  so user code that keeps an event alive can never observe it aliased.

Arming a :class:`repro.verify.kernel.KernelSanitizer` sets
``env._fast = False`` and migrates the now-queue into the heap: the kernel
degrades to the fully-checked pure-heap path and the sanitizer's rebound
``run`` sees every single event.
"""

from __future__ import annotations

import heapq
from collections import deque
from sys import getrefcount
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

#: Sentinel for "event has not been assigned a value yet".
_PENDING = object()

#: Run horizon meaning "no limit" (compares greater than any int timestamp).
_NO_HORIZON = float("inf")

#: Per-class cap on arena free lists (bounds memory if a workload bursts).
_POOL_CAP = 512

ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an invalid state."""


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An event that may succeed (with a value) or fail (with an exception).

    Callbacks are plain callables invoked with the event as their only
    argument when the event is *processed* (popped from the calendar).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_scheduled")

    #: True for arena-managed classes (Timeout, resource waiters): the
    #: dispatch loop may recycle an instance once nothing references it.
    _poolable = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._scheduled = False

    def __repr__(self) -> str:
        state = "pending"
        if self._ok is True:
            state = f"ok({self._value!r})"
        elif self._ok is False:
            state = f"failed({self._value!r})"
        return f"<{type(self).__name__} {state}>"

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (succeeded or failed)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has no value yet")
        return self._value

    def _abandoned(self) -> None:
        """Hook: the process waiting on this event was interrupted away.

        :meth:`Process.interrupt` detaches the consumer and then calls this
        so resource-wait events (queued :class:`~repro.sim.resources.Store`
        gets, :class:`~repro.sim.resources.CapacityResource` requests,
        stripe-lock acquires) can withdraw from their wait queue — or, if
        the grant already happened, hand the slot back — instead of leaking
        it to a consumer that will never resume.  The base event has no
        resource attached, so this is a no-op.
        """

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # inlined self.env._schedule(self) — succeed is a kernel hot path
        if not self._scheduled:
            self._scheduled = True
            env = self.env
            env._eid += 1
            if env._fast:
                env._nowq.append((env._eid, self))
            else:
                heapq.heappush(env._queue, (env.now, env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the event;
        if nothing waits, :meth:`Environment.run` re-raises it (errors never
        pass silently).
        """
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that triggers after a fixed delay.

    ``_time``/``_teid`` hold the calendar position of a *deferred* timer
    (see :meth:`Environment.timeout`): a pooled timer is not pushed onto
    the heap until something other than its creator needs the calendar,
    because the overwhelmingly common fate of a timer is to be yielded
    immediately and consumed by the batch-advance path without any other
    event dispatching in between.
    """

    __slots__ = ("delay", "_time", "_teid")

    _poolable = True

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the kernel's most common event; initialize and
        # schedule inline rather than through Event.__init__/_schedule.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._scheduled = True
        self.delay = delay
        self._time = env.now + delay
        env._eid += 1
        heapq.heappush(env._queue, (env.now + delay, env._eid, self))


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


def _defuse_on_failure(event: "Event") -> None:
    """Sink callback for events abandoned by an interrupted process."""
    if event._ok is False:
        event._defused = True


class Process(Event):
    """A running process: an event that triggers when its generator returns.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event succeeds the generator is resumed with the event's value; when it
    fails the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name} at t={self.env.now}>"

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is None:
            raise SimulationError(f"{self!r} is not waiting on anything")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        # Detach from the current wait target so the original event no
        # longer resumes this process when it eventually triggers.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
            # The interrupted process was this event's consumer; if the
            # abandoned event later fails there is nobody left to handle
            # it, so defuse instead of crashing the simulation.
            target.callbacks.append(_defuse_on_failure)
        self._target = None
        # Let resource-wait events return queued positions or granted
        # slots; a plain Event's hook is a no-op.
        target._abandoned()
        self.env._recycle_abandoned(target)
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event is None or event._ok:
                    target = generator.send(None if event is None else event._value)
                else:
                    event._defused = True
                    target = generator.throw(event._value)
                while not isinstance(target, Event):
                    # Throw into the generator so the process terminates (or
                    # recovers) through the normal paths below — the Process
                    # event must still succeed or fail, or waiters leak.
                    target = generator.throw(
                        SimulationError(f"process yielded a non-event: {target!r}")
                    )
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self.succeed(stop.value)
                deferred = env._deferred
                if deferred is not None:
                    env._deferred = None
                    heapq.heappush(
                        env._queue, (deferred._time, deferred._teid, deferred)
                    )
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self.fail(exc)
                deferred = env._deferred
                if deferred is not None:
                    env._deferred = None
                    heapq.heappush(
                        env._queue, (deferred._time, deferred._teid, deferred)
                    )
                return

            # The consumed event is dead unless someone else still holds a
            # reference (the run loop, a Condition, user code): recycle it
            # into the arena.  refcount == 2 means exactly [our local +
            # getrefcount's argument] — nothing can observe the reuse.
            if event is not None and event.callbacks is None:
                cls = event.__class__
                if cls is Timeout:
                    pool = env._timeout_pool
                    if len(pool) < _POOL_CAP and getrefcount(event) == 2:
                        pool.append(event)
                elif cls is Event:
                    pool = env._event_pool
                    if len(pool) < _POOL_CAP and getrefcount(event) == 2:
                        pool.append(event)

            if target.callbacks is None:
                # Already processed: resume immediately with its outcome.
                event = target
                continue
            if (
                env._fast
                and not target.callbacks
                and not env._nowq
            ):
                # Batch-advance: the yielded event is scheduled, nothing
                # waits at the current timestamp, and nobody else listens.
                # If it is also the next calendar entry and inside the run
                # horizon, the run loop's next action would be to pop it
                # and resume this process — do that here without the round
                # trip.
                if env._deferred is target:
                    # The just-created timer was never pushed: consume it
                    # in place unless an earlier heap entry must dispatch
                    # first (strict (time, eid) order against the head).
                    time = target._time
                    if time <= env._horizon:
                        queue = env._queue
                        if (
                            not queue
                            or time < queue[0][0]
                            or (time == queue[0][0] and target._teid < queue[0][1])
                        ):
                            env._deferred = None
                            env.now = time
                            target.callbacks = None
                            event = target
                            continue
                elif env._deferred is None:
                    # (No temporary may retain the heap tuple, or the
                    # recycle site above sees a phantom reference and never
                    # pools timers.)
                    queue = env._queue
                    if queue and queue[0][2] is target and queue[0][0] <= env._horizon:
                        env.now = heapq.heappop(queue)[0]
                        target.callbacks = None
                        event = target
                        continue
            self._target = target
            target.callbacks.append(self._resume)
            deferred = env._deferred
            if deferred is not None:
                env._deferred = None
                heapq.heappush(
                    env._queue, (deferred._time, deferred._teid, deferred)
                )
            env._active_process = None
            return


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._outcome())
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
            if self.triggered:
                break

    def _outcome(self) -> Any:
        return {e: e._value for e in self.events if e.triggered and e._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every child event has succeeded (fails fast on error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._outcome())


class AnyOf(Condition):
    """Triggers as soon as any child event succeeds (fails fast on error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._outcome())


class Environment:
    """The simulation event loop.

    ``now`` is the current simulated time in integer nanoseconds.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self.now: int = int(initial_time)
        self._queue: List = []
        #: FIFO of ``(eid, event)`` scheduled at the *current* timestamp.
        #: Only populated on the fast path; drained before the clock moves.
        self._nowq: Deque[Tuple[int, Event]] = deque()
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: False once a sanitizer arms this environment: every event goes
        #: through the heap and the checked dispatch loop.
        self._fast = True
        #: Time bound of the active ``run`` call; the batch-advance fast
        #: path never advances the clock past it.
        self._horizon = _NO_HORIZON
        #: A pooled Timeout whose heap insertion is deferred (see
        #: :meth:`timeout`).  Flushed by every kernel entry point that
        #: reads the calendar; at most one exists at a time.
        self._deferred: Optional[Timeout] = None
        # Arena free lists (see module docstring).  Recycled objects are
        # fully re-initialized on reuse; the refcount guard at the recycle
        # sites makes aliasing with live events impossible.
        self._timeout_pool: List[Timeout] = []
        self._event_pool: List[Event] = []
        self._waiter_pool: dict = {}

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` nanoseconds from now.

        Pooled timers are *deferred*: the heap insertion happens only when
        some other kernel entry point needs the calendar.  The timer keeps
        its event id from creation time, so a late flush lands in exactly
        the slot an immediate push would have used.
        """
        deferred = self._deferred
        if deferred is not None:
            self._deferred = None
            heapq.heappush(
                self._queue, (deferred._time, deferred._teid, deferred)
            )
        pool = self._timeout_pool
        if pool and delay >= 0:
            t = pool.pop()
            t.callbacks = []
            t._value = value
            t._defused = False
            t.delay = delay
            self._eid += 1
            time = self.now + delay
            t._time = time
            queue = self._queue
            if self._fast and (not queue or time < queue[0][0]):
                # Earliest known event: defer the heap insertion — odds are
                # the creator yields it next and batch-advance consumes it
                # without the calendar ever seeing it.
                t._teid = self._eid
                self._deferred = t
                return t
            heapq.heappush(queue, (time, self._eid, t))
            return t
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- arena ----------------------------------------------------------

    def grant_event(self, value: Any) -> Event:
        """A pre-processed successful event (the uncontended-grant fast
        path of ``Store.get`` / ``CapacityResource.request``), drawn from
        the arena when possible."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = value
            event._defused = False
        else:
            event = Event(self)
            event._ok = True
            event._value = value
            event.callbacks = None
            event._scheduled = True
        return event

    def waiter_event(self, cls, *args) -> Event:
        """A fresh (or recycled) resource-wait event of ``cls``.

        ``cls.__init__`` must accept ``(*args)`` and a recycled instance
        must be reusable after ``cls._reinit(*args)``.
        """
        pool = self._waiter_pool.get(cls)
        if pool:
            event = pool.pop()
            event._reinit(*args)
            return event
        return cls(*args)

    def _recycle_waiter(self, event: Event) -> None:
        """Return a dead resource-wait event to its per-class free list.

        Callers must have verified via refcount that the kernel holds the
        only reference; see the dispatch-loop recycle site.
        """
        pool = self._waiter_pool.setdefault(event.__class__, [])
        if len(pool) < _POOL_CAP:
            pool.append(event)

    def _recycle_abandoned(self, event: Event) -> None:
        """Recycle a wait event whose consumer was interrupted away.

        Called from :meth:`Process.interrupt` after ``_abandoned`` has
        withdrawn the event from its resource queue.  Only a *still-queued*
        waiter (never triggered, never scheduled) is eligible — a waiter
        whose grant already happened stays alive until its calendar entry
        dispatches, where the dispatch-site recycler picks it up.  The
        refcount must be exactly 3 (``interrupt``'s local + our argument +
        getrefcount's own): anything more means user code or a resource
        queue still sees the event, so it is left to the garbage collector.
        """
        if (
            event._poolable
            and event._ok is None
            and event.callbacks is not None
            and getrefcount(event) == 3
        ):
            event.callbacks = None
            self._recycle_waiter(event)

    def _recycle_dispatched(self, event: Event) -> None:
        """Dispatch-loop recycle site: ``event`` just ran its callbacks and
        nothing else references it (caller verified via refcount)."""
        if event.__class__ is Timeout:
            pool = self._timeout_pool
            if len(pool) < _POOL_CAP:
                pool.append(event)
        else:
            self._recycle_waiter(event)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._eid += 1
        if delay == 0 and self._fast:
            self._nowq.append((self._eid, event))
        else:
            heapq.heappush(self._queue, (self.now + delay, self._eid, event))

    def _next(self):
        """Pop the next event in dispatch order, or None when drained.

        Interleaves the now-queue with same-timestamp heap entries by
        event id, reproducing exactly the pure-heap dispatch order.
        """
        deferred = self._deferred
        if deferred is not None:
            self._deferred = None
            heapq.heappush(self._queue, (deferred._time, deferred._teid, deferred))
        nowq = self._nowq
        queue = self._queue
        if nowq:
            if queue:
                head = queue[0]
                if head[0] == self.now and head[1] < nowq[0][0]:
                    return heapq.heappop(queue)
            eid, event = nowq.popleft()
            return (self.now, eid, event)
        if queue:
            return heapq.heappop(queue)
        return None

    def _step(self) -> None:
        item = self._next()
        if item is None:
            raise IndexError("step from an empty calendar")
        time, _, event = item
        self.now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), an integer
        time, or an :class:`Event` (run until it triggers and return its
        value).

        Integer-horizon semantics (locked by ``tests/test_sim_core.py``):
        every event with timestamp ``<= until`` is processed before ``run``
        returns — including zero-delay cascades spawned *at* the horizon —
        and the clock is left exactly at ``until``.  Events scheduled after
        the horizon stay queued for the next ``run`` call.  This boundary
        is deterministic: two runs split at any horizon process the same
        events in the same order as one uninterrupted run.

        The event dispatch loop is inlined here (rather than calling
        :meth:`_step`) because it is the hottest code in the repository.
        """
        queue = self._queue
        nowq = self._nowq
        pop = heapq.heappop
        popleft = nowq.popleft
        timeout_pool = self._timeout_pool
        waiter_pool = self._waiter_pool
        deferred = self._deferred
        if deferred is not None:
            self._deferred = None
            heapq.heappush(queue, (deferred._time, deferred._teid, deferred))
        if isinstance(until, Event) and until.__class__ is Timeout and until.callbacks is not None:
            # Timeouts are pre-succeeded at creation (``_ok`` is True long
            # before they dispatch), so the event-wait loop below would
            # return immediately having simulated nothing.  An undispatched
            # timer passed as ``until`` therefore runs as the integer
            # horizon it denotes.
            until = until._time
        if isinstance(until, Event):
            stop_event = until
            self._horizon = _NO_HORIZON
            while stop_event._ok is None:
                if nowq:
                    if queue:
                        head = queue[0]
                        if head[0] == self.now and head[1] < nowq[0][0]:
                            time, _, event = pop(queue)
                            self.now = time
                        else:
                            _, event = popleft()
                    else:
                        _, event = popleft()
                elif queue:
                    time, _, event = pop(queue)
                    self.now = time
                else:
                    break
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
                if event._poolable and getrefcount(event) == 2:
                    # inlined _recycle_dispatched (hot dispatch tail)
                    if event.__class__ is Timeout:
                        if len(timeout_pool) < _POOL_CAP:
                            timeout_pool.append(event)
                    else:
                        wpool = waiter_pool.get(event.__class__)
                        if wpool is None:
                            wpool = waiter_pool.setdefault(event.__class__, [])
                        if len(wpool) < _POOL_CAP:
                            wpool.append(event)
            if stop_event._ok is None:
                raise SimulationError(
                    f"simulation ran out of events before {stop_event!r} triggered"
                )
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value
        if until is not None:
            horizon = int(until)
            if horizon < self.now:
                raise ValueError(f"until={horizon} is in the past (now={self.now})")
            self._horizon = horizon
            while True:
                if nowq:
                    if queue:
                        head = queue[0]
                        if head[0] == self.now and head[1] < nowq[0][0]:
                            time, _, event = pop(queue)
                            self.now = time
                        else:
                            _, event = popleft()
                    else:
                        _, event = popleft()
                elif queue and queue[0][0] <= horizon:
                    time, _, event = pop(queue)
                    self.now = time
                else:
                    break
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
                if event._poolable and getrefcount(event) == 2:
                    # inlined _recycle_dispatched (hot dispatch tail)
                    if event.__class__ is Timeout:
                        if len(timeout_pool) < _POOL_CAP:
                            timeout_pool.append(event)
                    else:
                        wpool = waiter_pool.get(event.__class__)
                        if wpool is None:
                            wpool = waiter_pool.setdefault(event.__class__, [])
                        if len(wpool) < _POOL_CAP:
                            wpool.append(event)
            self.now = horizon
            return None
        self._horizon = _NO_HORIZON
        while True:
            if nowq:
                if queue:
                    head = queue[0]
                    if head[0] == self.now and head[1] < nowq[0][0]:
                        time, _, event = pop(queue)
                        self.now = time
                    else:
                        _, event = popleft()
                else:
                    _, event = popleft()
            elif queue:
                time, _, event = pop(queue)
                self.now = time
            else:
                break
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event._defused:
                raise event._value
            if event._poolable and getrefcount(event) == 2:
                # inlined _recycle_dispatched (hot dispatch tail)
                if event.__class__ is Timeout:
                    if len(timeout_pool) < _POOL_CAP:
                        timeout_pool.append(event)
                else:
                    wpool = waiter_pool.get(event.__class__)
                    if wpool is None:
                        wpool = waiter_pool.setdefault(event.__class__, [])
                    if len(wpool) < _POOL_CAP:
                        wpool.append(event)
        return None

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the calendar is empty."""
        deferred = self._deferred
        if deferred is not None:
            self._deferred = None
            heapq.heappush(self._queue, (deferred._time, deferred._teid, deferred))
        if self._nowq:
            return self.now
        return self._queue[0][0] if self._queue else None
