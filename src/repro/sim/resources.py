"""Shared resources for the simulation kernel.

Three primitives cover every piece of hardware this repository models:

* :class:`Store` — an unbounded FIFO queue of items (mailboxes, command
  queues).
* :class:`CapacityResource` — a counted semaphore (queue-depth limits).
* :class:`BandwidthChannel` — a fluid FIFO bandwidth server.  A transfer of
  ``n`` bytes occupies the channel for ``overhead + n/rate`` seconds; queued
  transfers are served in order.  This is the model used for NIC directions,
  SSD data channels and CPU cores (where "bytes" are replaced by
  nanoseconds of work).

Hot-path note: uncontended ``Store.get`` / ``CapacityResource.request``
return *pre-processed* grant events drawn from the environment's event
arena, and queued waiters (:class:`_StoreGet`, :class:`_CapacityRequest`)
are recycled through per-class free lists once consumed or cancelled —
see :mod:`repro.sim.core` for the arena's aliasing guarantees.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Tuple

from repro.sim.core import Environment, Event, _PENDING

#: Nanoseconds per second; all rates are converted to bytes/ns internally.
NS_PER_S = 1_000_000_000


class _StoreGet(Event):
    """A queued ``Store.get`` wait that survives ``Process.interrupt``.

    When the waiting process is interrupted the kernel calls
    :meth:`_abandoned`: a still-queued getter withdraws from the store's
    wait queue; a getter that was already handed an item (triggered but not
    yet resumed) returns that item to the store so it is not lost.
    """

    __slots__ = ("store",)

    #: dispatched instances are recycled through the environment arena
    _poolable = True

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        self.store = store

    def _reinit(self, store: "Store") -> None:
        """Reset a recycled instance to freshly-constructed state."""
        self.store = store
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._scheduled = False

    def _abandoned(self) -> None:
        store, self.store = self.store, None
        if store is None:  # pragma: no cover - double interrupt, defensive
            return
        if self._ok is None:
            try:
                store._getters.remove(self)
            except ValueError:  # pragma: no cover - already granted/removed
                pass
        elif self._ok:
            # Granted but never consumed: the item goes back to the store
            # (front of the line for the oldest still-live getter).
            store.put(self._value)


class _CapacityRequest(Event):
    """A queued ``CapacityResource.request`` that survives interrupts.

    Cancel path (the PR-1 fast-path bug): an interrupted waiter used to
    linger untriggered in the waiter queue, so a later ``release`` would
    grant the slot to a consumer that never resumes — leaking one unit of
    capacity forever.  The :meth:`_abandoned` hook removes a still-queued
    waiter outright and re-releases a slot that was granted between the
    grant and the resume.
    """

    __slots__ = ("resource", "proc")

    #: dispatched instances are recycled through the environment arena
    _poolable = True

    def __init__(self, resource: "CapacityResource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        #: requesting process (for the sanitizer's leaked-hold report)
        self.proc = resource.env._active_process

    def _reinit(self, resource: "CapacityResource") -> None:
        """Reset a recycled instance to freshly-constructed state."""
        self.resource = resource
        self.proc = resource.env._active_process
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._scheduled = False

    def _abandoned(self) -> None:
        resource, self.resource = self.resource, None
        if resource is None:  # pragma: no cover - double interrupt, defensive
            return
        if self._ok is None:
            try:
                resource._waiters.remove(self)
            except ValueError:  # pragma: no cover - already granted/removed
                pass
        elif self._ok:
            # Granted but never consumed: hand the slot to the next live
            # waiter (or return it to the free pool).
            if resource.sanitizer is not None:
                resource.sanitizer.on_resource_abandon(resource, self)
            resource._pass_on()


class Store:
    """Unbounded FIFO store of items with event-based ``get``."""

    def __init__(self, env: Environment, name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest waiting getter if any."""
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter._ok is not None:  # cancelled getter
                continue
            # inlined getter.succeed(item) — put/wake is a kernel hot path
            getter._ok = True
            getter._value = item
            if not getter._scheduled:
                getter._scheduled = True
                env = self.env
                env._eid += 1
                if env._fast:
                    env._nowq.append((env._eid, getter))
                else:
                    heapq.heappush(env._queue, (env.now, env._eid, getter))
            return
        self._items.append(item)

    def clear(self) -> int:
        """Drop every queued item (fault injection: a crashed server loses
        its inbox).  Waiting getters are left pending.  Returns the number
        of items dropped."""
        dropped = len(self._items)
        self._items.clear()
        return dropped

    def get(self) -> Event:
        """Event that succeeds with the next item (FIFO order).

        When an item is already available the returned event is *processed*
        (not merely triggered): a process yielding it resumes inline without
        a trip through the event calendar.  Getters that must wait are woken
        through the calendar as before, preserving FIFO fairness.
        """
        env = self.env
        items = self._items
        if items:
            # inlined env.grant_event(items.popleft())
            pool = env._event_pool
            if pool:
                event = pool.pop()
                event._value = items.popleft()
                event._defused = False
                return event
            event = Event(env)
            event._ok = True
            event._value = items.popleft()
            event.callbacks = None
            event._scheduled = True
            return event
        # inlined env.waiter_event(_StoreGet, self)
        pool = env._waiter_pool.get(_StoreGet)
        if pool:
            event = pool.pop()
            event.store = self
            event.callbacks = []
            event._value = _PENDING
            event._ok = None
            event._defused = False
            event._scheduled = False
        else:
            event = _StoreGet(self)
        self._getters.append(event)
        return event


class CapacityResource:
    """A counted resource (semaphore) with FIFO request ordering."""

    #: Armed by :class:`repro.verify.kernel.KernelSanitizer.watch_resource`;
    #: None keeps request/release on their zero-cost paths.
    sanitizer = None

    def __init__(self, env: Environment, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Event that succeeds once a slot is available (slot is then held).

        Uncontended requests return a *processed* event so a yielding
        process continues inline without touching the event calendar;
        contended requests queue and are woken FIFO through the calendar.
        """
        env = self.env
        if self._in_use < self.capacity:
            self._in_use += 1
            # inlined env.grant_event(self)
            pool = env._event_pool
            if pool:
                event = pool.pop()
                event._value = self
                event._defused = False
            else:
                event = Event(env)
                event._ok = True
                event._value = self
                event.callbacks = None
                event._scheduled = True
            if self.sanitizer is not None:
                self.sanitizer.on_resource_grant(self)
        else:
            # inlined env.waiter_event(_CapacityRequest, self)
            pool = env._waiter_pool.get(_CapacityRequest)
            if pool:
                event = pool.pop()
                event.resource = self
                event.proc = env._active_process
                event.callbacks = []
                event._value = _PENDING
                event._ok = None
                event._defused = False
                event._scheduled = False
            else:
                event = _CapacityRequest(self)
            self._waiters.append(event)
        return event

    def _pass_on(self) -> None:
        """Hand a freed slot to the oldest live waiter, else free it."""
        waiters = self._waiters
        while waiters:
            waiter = waiters.popleft()
            if waiter._ok is not None:  # cancelled waiter
                continue
            # inlined waiter.succeed(self)
            waiter._ok = True
            waiter._value = self
            if not waiter._scheduled:
                waiter._scheduled = True
                env = self.env
                env._eid += 1
                if env._fast:
                    env._nowq.append((env._eid, waiter))
                else:
                    heapq.heappush(env._queue, (env.now, env._eid, waiter))
            if self.sanitizer is not None:
                self.sanitizer.on_resource_grant(self, waiter)
            return
        self._in_use -= 1

    def release(self) -> None:
        """Release a held slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release without matching request")
        if self.sanitizer is not None:
            self.sanitizer.on_resource_release(self)
        if not self._waiters:  # uncontended fast path
            self._in_use -= 1
            return
        self._pass_on()


class BandwidthChannel:
    """A fluid FIFO bandwidth server.

    The channel serves transfers strictly in submission order.  A transfer
    of ``nbytes`` takes ``per_op_overhead_ns + nbytes / rate``; its
    completion event fires when the transfer (and everything queued before
    it) has drained.  Scheduling is O(1) per transfer: the channel only
    tracks the time at which it becomes free — the completion timestamp of
    the whole reservation queue is computed in closed form, so no per-grant
    events exist at all.

    ``parallelism`` models devices with internal channels (e.g. NAND dies):
    ``k`` independent FIFO servers each running at ``rate / k``, with new
    transfers dispatched to the earliest-free server.  ``parallelism=1``
    (the default) is a plain FIFO pipe at full rate.
    """

    def __init__(
        self,
        env: Environment,
        rate_bytes_per_s: float,
        per_op_overhead_ns: int = 0,
        parallelism: int = 1,
        name: str = "channel",
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes_per_s}")
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.env = env
        self.name = name
        self.per_op_overhead_ns = int(per_op_overhead_ns)
        self.parallelism = parallelism
        self._rate = float(rate_bytes_per_s)
        self._per_server_rate = self._rate / parallelism
        self._free_at = [0] * parallelism
        # (free_at, idx) min-heap mirror of _free_at: earliest-free server
        # selection in O(log k) instead of an O(k) min() scan per reserve.
        # Only consulted when parallelism > 1; ties break on lowest index,
        # exactly like min() over the list.
        self._free_heap: List[Tuple[int, int]] = [(0, i) for i in range(parallelism)]
        # Cached between reservations: the earliest-free head and the raw
        # sum of all server free times, so queue_delay_ns/backlog_ns are
        # O(1) in the saturated (all servers beyond ``now``) regime.
        self._earliest_free = 0
        self._free_sum = 0
        # accounting
        self.bytes_transferred = 0
        self.ops = 0
        self.busy_ns = 0

    @property
    def rate_bytes_per_s(self) -> float:
        return self._rate

    @rate_bytes_per_s.setter
    def rate_bytes_per_s(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"rate must be positive, got {value}")
        self._rate = float(value)
        self._per_server_rate = self._rate / self.parallelism

    def service_ns(self, nbytes: int) -> int:
        """Pure service time of ``nbytes`` (no queueing)."""
        return self.per_op_overhead_ns + int(
            round(nbytes * NS_PER_S / self._per_server_rate)
        )

    def queue_delay_ns(self) -> int:
        """Wait a transfer submitted now would incur before service starts."""
        free_at = self._earliest_free
        return free_at - self.env.now if free_at > self.env.now else 0

    def backlog_ns(self) -> int:
        """Total remaining work across all internal servers (congestion signal)."""
        now = self.env.now
        if self._earliest_free >= now:
            # saturated regime: every server is booked past ``now``, so the
            # cached raw sum gives the backlog without an O(k) scan
            return self._free_sum - now * self.parallelism
        return sum(f - now for f in self._free_at if f > now)

    def reserve(self, nbytes: int, extra_ns: int = 0) -> int:
        """Queue a transfer and return its *absolute* completion time.

        This is the O(1) primitive behind :meth:`transfer`; layers that
        need to combine several channel occupancies into one completion
        event (e.g. a network transfer through sender-TX and receiver-RX)
        call ``reserve`` on each channel and take the max.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        # inlined service_ns(nbytes) — reserve is the resource hot path
        service = (
            self.per_op_overhead_ns
            + int(round(nbytes * NS_PER_S / self._per_server_rate))
            + int(extra_ns)
        )
        now = self.env.now
        if self.parallelism == 1:
            free = self._free_at[0]
            start = free if free > now else now
            done = start + service
            self._free_at[0] = done
            self._earliest_free = done
            self._free_sum = done
        else:
            # earliest-free internal server via the heap mirror
            free, idx = heapq.heappop(self._free_heap)
            start = free if free > now else now
            done = start + service
            self._free_sum += done - self._free_at[idx]
            self._free_at[idx] = done
            heapq.heappush(self._free_heap, (done, idx))
            self._earliest_free = self._free_heap[0][0]
        self.bytes_transferred += nbytes
        self.ops += 1
        self.busy_ns += service
        return done

    def transfer(self, nbytes: int, extra_ns: int = 0) -> Event:
        """Submit a transfer; returns its completion event.

        ``extra_ns`` is appended to the service time (e.g. a fixed access
        latency that occupies the channel).
        """
        done = self.reserve(nbytes, extra_ns)
        return self.env.timeout(done - self.env.now, value=nbytes)

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of capacity used over ``elapsed_ns`` (can exceed 1 briefly
        when overheads dominate)."""
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_ns / (elapsed_ns * self.parallelism)

    def reset_accounting(self) -> None:
        self.bytes_transferred = 0
        self.ops = 0
        self.busy_ns = 0
