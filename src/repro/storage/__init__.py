"""Simulated storage devices.

Models NVMe SSDs as queued bandwidth servers with access latency, separate
read/write rates and optional byte-accurate backing storage (used by the
functional-correctness tests to verify parity math end-to-end through the
simulated data path).
"""

from repro.storage.drive import DriveStats, NvmeDrive
from repro.storage.integrity import (
    ChecksumError,
    IntegrityStore,
    PoisonedExtent,
    crc32c,
)
from repro.storage.profiles import (
    DELL_AGN_MU,
    FAST_NVME,
    DriveProfile,
)

__all__ = [
    "DELL_AGN_MU",
    "FAST_NVME",
    "ChecksumError",
    "DriveProfile",
    "DriveStats",
    "IntegrityStore",
    "NvmeDrive",
    "PoisonedExtent",
    "crc32c",
]
