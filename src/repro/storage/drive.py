"""The NVMe drive model.

A drive is a FIFO bandwidth server (optionally several parallel internal
servers) with distinct read/write rates plus a fixed access latency per
operation.  The access latency does *not* consume channel capacity — modern
SSDs overlap NAND access with data transfer across dies — so sustained
throughput equals the profile bandwidth while per-op latency is
``queueing + transfer + access``.

In *functional mode* (``capacity_bytes`` given at construction) the drive
additionally keeps a real byte array, so reads return the actual stored
bytes and the whole RAID stack can be validated for bit-exactness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.core import Environment, Event
from repro.sim.resources import NS_PER_S
from repro.storage.integrity import PoisonedExtent


@dataclass
class DriveStats:
    """Running counters for one drive."""

    read_ops: int = 0
    write_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_ns: int = 0
    gc_events: int = 0
    corruptions: int = 0

    def reset(self) -> None:
        self.read_ops = 0
        self.write_ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_ns = 0
        self.gc_events = 0
        self.corruptions = 0


class NvmeDrive:
    """A simulated NVMe SSD.

    ``read``/``write`` return events that fire at I/O completion.  In
    functional mode the read event's value is the stored bytes (snapshotted
    at submission, which is deterministic and adequate because the RAID
    layers above serialize conflicting stripe access).
    """

    def __init__(
        self,
        env: Environment,
        profile,
        name: str = "nvme",
        functional_capacity: int = 0,
    ) -> None:
        self.env = env
        self.profile = profile
        self.name = name
        self.stats = DriveStats()
        self.failed = False
        self._free_at = [0] * profile.parallelism
        # (free_at, idx) min-heap mirror of _free_at (see BandwidthChannel):
        # consulted only when the profile has internal parallelism > 1.
        self._free_heap = [(0, i) for i in range(profile.parallelism)]
        # Cached between dispatches (profiles are immutable): per-server
        # transfer rates, plus the earliest-free head and the raw sum of
        # server free times so backlog_ns is O(1) in the saturated regime.
        self._read_per_server = profile.read_bw_bytes_per_s / profile.parallelism
        self._write_per_server = profile.write_bw_bytes_per_s / profile.parallelism
        self._earliest_free = 0
        self._free_sum = 0
        self._gc_budget = profile.gc_after_bytes_written
        # Fault-injection state (repro.faults): transient error bursts and
        # fail-slow latency multipliers.  All keyed off the sim clock.
        self._error_until = 0
        self._slow_mult = 1.0
        self._slow_until: Optional[int] = None  # None = until cleared
        # Silent-corruption state (repro.storage.integrity): poisoned byte
        # ranges, corruptions armed against the next write, and the cluster
        # checksum store (attached when an IntegrityStore arms the cluster).
        self._poison: List[PoisonedExtent] = []
        self._armed_corruptions: List[Tuple[str, int]] = []
        self._integrity = None
        self._integrity_index = -1
        # Observability: a repro.obs.Tracer armed by the Observability hub;
        # None (default) keeps I/O on the zero-cost untraced path.
        self._tracer = None
        self._data: Optional[np.ndarray] = None
        if functional_capacity:
            self._data = np.zeros(functional_capacity, dtype=np.uint8)

    # -- internals ---------------------------------------------------------

    @property
    def functional(self) -> bool:
        return self._data is not None

    def _dispatch(self, work_ns: int) -> int:
        """Queue ``work_ns`` on the earliest-free internal server; returns
        the absolute completion time of the channel occupancy."""
        now = self.env.now
        if len(self._free_at) == 1:
            free = self._free_at[0]
            start = free if free > now else now
            done = start + work_ns
            self._free_at[0] = done
            self._earliest_free = done
            self._free_sum = done
        else:
            free, idx = heapq.heappop(self._free_heap)
            start = free if free > now else now
            done = start + work_ns
            self._free_sum += done - self._free_at[idx]
            self._free_at[idx] = done
            heapq.heappush(self._free_heap, (done, idx))
            self._earliest_free = self._free_heap[0][0]
        self.stats.busy_ns += work_ns
        return done

    def _transfer_ns(self, nbytes: int, rate: float) -> int:
        # internal servers each run at rate/parallelism
        per_server = rate / self.profile.parallelism
        return int(round(nbytes * NS_PER_S / per_server))

    def _rebuild_free_caches(self) -> None:
        """Recompute the free-server caches after a bulk ``_free_at`` edit
        (GC stall, heal)."""
        self._free_heap = sorted((f, i) for i, f in enumerate(self._free_at))
        self._earliest_free = self._free_heap[0][0]
        self._free_sum = sum(self._free_at)

    def _slow_factor(self) -> float:
        """Current fail-slow latency multiplier (1.0 when healthy)."""
        if self._slow_mult == 1.0:
            return 1.0
        if self._slow_until is not None and self.env.now >= self._slow_until:
            self._slow_mult = 1.0
            self._slow_until = None
            return 1.0
        return self._slow_mult

    def _check(self, offset: int, nbytes: int) -> None:
        if self.failed:
            raise DriveFailedError(f"{self.name} has failed")
        if self.env.now < self._error_until:
            raise DriveTransientError(
                f"{self.name}: transient media error (burst until "
                f"{self._error_until})"
            )
        if nbytes <= 0:
            raise ValueError(f"I/O size must be positive, got {nbytes}")
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if self._data is not None and offset + nbytes > len(self._data):
            raise ValueError(
                f"{self.name}: I/O [{offset}, {offset + nbytes}) exceeds "
                f"functional capacity {len(self._data)}"
            )

    # -- public I/O interface -----------------------------------------------

    def read(self, offset: int, nbytes: int, ctx=None) -> Event:
        """Read ``nbytes`` at ``offset``; event value is the data (or None).

        ``ctx`` (optional :class:`repro.obs.TraceContext`) attributes the
        queueing and media time to a traced request when tracing is armed.
        """
        self._check(offset, nbytes)
        self.stats.read_ops += 1
        self.stats.bytes_read += nbytes
        work_ns = int(round(nbytes * NS_PER_S / self._read_per_server))
        latency_ns = self.profile.read_latency_ns
        factor = self._slow_factor()
        if factor != 1.0:
            work_ns = int(round(work_ns * factor))
            latency_ns = int(round(latency_ns * factor))
        done = self._dispatch(work_ns)
        completion = done + latency_ns - self.env.now
        if self._tracer is not None and ctx is not None:
            self._record_io(ctx, "read", done, work_ns, latency_ns, nbytes)
        value = None
        if self._data is not None:
            value = self._data[offset : offset + nbytes].copy()
        return self.env.timeout(completion, value=value)

    def write(self, offset: int, nbytes: int, data=None, ctx=None) -> Event:
        """Write ``nbytes`` at ``offset``; ``data`` required in functional mode."""
        self._check(offset, nbytes)
        self.stats.write_ops += 1
        self.stats.bytes_written += nbytes
        work_ns = int(round(nbytes * NS_PER_S / self._write_per_server))
        latency_ns = self.profile.write_latency_ns
        factor = self._slow_factor()
        if factor != 1.0:
            work_ns = int(round(work_ns * factor))
            latency_ns = int(round(latency_ns * factor))
        if self.profile.gc_after_bytes_written:
            self._gc_budget -= nbytes
            if self._gc_budget <= 0:
                # garbage collection stalls every internal channel
                self._gc_budget = self.profile.gc_after_bytes_written
                self.stats.gc_events += 1
                stall_until = max(self._free_at) + self.profile.gc_pause_ns
                self._free_at = [max(f, stall_until) for f in self._free_at]
                self._rebuild_free_caches()
        done = self._dispatch(work_ns)
        completion = done + latency_ns - self.env.now
        if self._tracer is not None and ctx is not None:
            self._record_io(ctx, "write", done, work_ns, latency_ns, nbytes)
        pending = self._armed_corruptions.pop(0) if self._armed_corruptions else None
        backup = None
        if self._data is not None:
            if data is None:
                raise ValueError(f"{self.name}: functional-mode write requires data")
            arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
            if len(arr) != nbytes:
                raise ValueError(f"data length {len(arr)} != nbytes {nbytes}")
            if pending is not None:
                backup = self._data[offset : offset + nbytes].copy()
            self._data[offset : offset + nbytes] = arr
        if self._integrity is not None:
            self._integrity.record_write(self, offset, nbytes)
        if pending is not None:
            self._apply_write_corruption(pending, offset, nbytes, backup)
        elif self._poison:
            # a clean overwrite cures whatever poison it covers
            self._clear_poison(offset, nbytes)
        return self.env.timeout(completion)

    def _record_io(
        self, ctx, op: str, done: int, work_ns: int, latency_ns: int, nbytes: int
    ) -> None:
        """Record queue-wait + media spans for one traced I/O.

        The drive's schedule is fully determined at submission (``done`` is
        the absolute channel-drain time computed by :meth:`_dispatch`), so
        spans are recorded immediately without touching the event calendar.
        """
        now = self.env.now
        start = done - work_ns
        if start > now:
            self._tracer.record(
                ctx, f"{self.name}.queue", "queue-wait", self.name, now, start
            )
        self._tracer.record(
            ctx,
            f"{self.name}.{op}",
            "disk",
            self.name,
            start,
            done + latency_ns,
            {"bytes": nbytes},
        )

    # -- failure injection ----------------------------------------------------

    def fail(self) -> None:
        """Mark the drive failed; subsequent I/O raises DriveFailedError."""
        self.failed = True

    def repair(self) -> None:
        """Clear only the failure bit.

        Unlike :meth:`heal`, the drive keeps every residue of its previous
        life: queued channel backlog, GC debt, error bursts, fail-slow
        multipliers — and any poisoned extents or armed corruptions.  Use
        it when the *same* physical drive returns (e.g. after a rebuild
        rewrote its content in place); use :meth:`heal` when the drive is
        swapped for a fresh replacement.
        """
        self.failed = False

    def inject_error_burst(self, duration_ns: int) -> None:
        """Transient media errors: I/O submitted before ``now + duration_ns``
        raises :class:`DriveTransientError`.  The drive is not marked failed,
        so the RAID layers treat errors as retryable."""
        if duration_ns < 0:
            raise ValueError(f"negative burst duration {duration_ns}")
        self._error_until = max(self._error_until, self.env.now + duration_ns)

    def set_fail_slow(self, multiplier: float, duration_ns: Optional[int] = None) -> None:
        """Multiply transfer + access latency by ``multiplier`` (fail-slow).

        ``duration_ns=None`` keeps the drive slow until :meth:`clear_fail_slow`
        or :meth:`heal`.
        """
        if multiplier < 1.0:
            raise ValueError(f"fail-slow multiplier must be >= 1, got {multiplier}")
        self._slow_mult = float(multiplier)
        self._slow_until = None if duration_ns is None else self.env.now + duration_ns

    def clear_fail_slow(self) -> None:
        self._slow_mult = 1.0
        self._slow_until = None

    def heal(self) -> None:
        """Full heal/replace: clear the failure bit *and* every latency
        residue (queued channel backlog, pending GC debt, error bursts,
        fail-slow multipliers) *and* every corruption residue (poisoned
        extents, corruptions armed against future writes), as if the drive
        were swapped for a fresh one.  Unlike :meth:`repair`, a healed
        drive is back at profile latency immediately and carries no silent
        damage — the replacement's content still needs a rebuild, but its
        media is pristine."""
        self.failed = False
        self._error_until = 0
        self.clear_fail_slow()
        self._gc_budget = self.profile.gc_after_bytes_written
        self._poison.clear()
        self._armed_corruptions.clear()
        now = self.env.now
        self._free_at = [min(f, now) for f in self._free_at]
        self._rebuild_free_caches()

    # -- silent corruption ------------------------------------------------------

    def attach_integrity(self, store, index: int) -> None:
        """Wire this drive to the cluster's :class:`IntegrityStore`."""
        self._integrity = store
        self._integrity_index = index

    def corrupt(
        self,
        kind: str,
        offset: Optional[int] = None,
        length: Optional[int] = None,
        seed: int = 0,
        shift_bytes: int = 0,
    ) -> None:
        """Silently damage stored data (the drive keeps answering happily).

        ``kind`` selects the fault class:

        * ``"bitrot"`` — immediately XOR a seeded nonzero mask over
          ``[offset, offset+length)``; requires ``offset``/``length``.
        * ``"lost"`` — the next write is acknowledged but never lands
          (the previous content stays on media).
        * ``"torn"`` — the next write lands only its first half.
        * ``"misdirected"`` — the next write's payload lands at
          ``offset + shift_bytes`` instead, leaving the target stale and
          clobbering an innocent victim; requires ``shift_bytes > 0``.

        The deferred kinds queue FIFO against future writes.  In functional
        mode real bytes are mutated; in both modes a :class:`PoisonedExtent`
        records the damage so checksum verification detects it.
        """
        if kind == "bitrot":
            if offset is None or length is None or length <= 0:
                raise ValueError("bitrot requires offset and positive length")
            if self._data is not None and offset + length > len(self._data):
                raise ValueError(
                    f"{self.name}: bitrot [{offset}, {offset + length}) exceeds "
                    f"functional capacity {len(self._data)}"
                )
            if self._integrity is not None:
                self._integrity.finalize(self, offset, length)
            if self._data is not None:
                mask = np.random.default_rng(seed).integers(
                    1, 256, size=length, dtype=np.uint8
                )
                self._data[offset : offset + length] ^= mask
            self._poison.append(
                PoisonedExtent(offset, length, "BitRot", self.env.now)
            )
            self.stats.corruptions += 1
        elif kind in ("lost", "torn"):
            self._armed_corruptions.append((kind, 0))
        elif kind == "misdirected":
            if shift_bytes <= 0:
                raise ValueError("misdirected requires shift_bytes > 0")
            self._armed_corruptions.append((kind, shift_bytes))
        else:
            raise ValueError(f"unknown corruption kind {kind!r}")

    def _apply_write_corruption(
        self,
        pending: Tuple[str, int],
        offset: int,
        nbytes: int,
        backup: Optional[np.ndarray],
    ) -> None:
        """An armed corruption fires on the write that just landed.

        ``backup`` holds the pre-write media content (functional mode only).
        The checksum store was already told the *intended* bytes landed, so
        we first pin expectations from the current (intended) content, then
        mutate the media behind the store's back and record the poison.
        """
        kind, shift = pending
        now = self.env.now
        if kind == "lost":
            if self._integrity is not None:
                self._integrity.finalize(self, offset, nbytes)
            if backup is not None:
                self._data[offset : offset + nbytes] = backup
            self._clear_poison(offset, nbytes)
            self._poison.append(PoisonedExtent(offset, nbytes, "LostWrite", now))
        elif kind == "torn":
            landed = nbytes // 2
            if self._integrity is not None:
                self._integrity.finalize(self, offset, nbytes)
            if backup is not None and landed < nbytes:
                self._data[offset + landed : offset + nbytes] = backup[landed:]
            self._clear_poison(offset, nbytes)
            if landed < nbytes:
                self._poison.append(
                    PoisonedExtent(offset + landed, nbytes - landed, "TornWrite", now)
                )
        elif kind == "misdirected":
            if self._integrity is not None:
                self._integrity.finalize(self, offset, nbytes)
            intended = None
            if self._data is not None:
                intended = self._data[offset : offset + nbytes].copy()
                self._data[offset : offset + nbytes] = backup
            capacity = len(self._data) if self._data is not None else None
            victim_off = offset + shift
            if capacity is not None:
                victim_off %= capacity
                vlen = min(nbytes, capacity - victim_off)
            else:
                vlen = nbytes
            if self._integrity is not None:
                self._integrity.finalize(self, victim_off, vlen)
            if self._data is not None:
                self._data[victim_off : victim_off + vlen] = intended[:vlen]
            self._clear_poison(offset, nbytes)
            self._clear_poison(victim_off, vlen)
            self._poison.append(
                PoisonedExtent(offset, nbytes, "MisdirectedWrite", now)
            )
            self._poison.append(
                PoisonedExtent(victim_off, vlen, "MisdirectedWrite", now)
            )
        else:  # pragma: no cover - corrupt() validates kinds
            raise ValueError(f"unknown armed corruption kind {kind!r}")
        self.stats.corruptions += 1

    def _clear_poison(self, offset: int, nbytes: int) -> None:
        """A clean overwrite of ``[offset, offset+nbytes)`` cures the poison
        it covers; partially covered records are trimmed/split."""
        end = offset + nbytes
        kept: List[PoisonedExtent] = []
        for rec in self._poison:
            if rec.end <= offset or rec.offset >= end:
                kept.append(rec)
                continue
            if rec.offset < offset:
                kept.append(replace(rec, length=offset - rec.offset))
            if rec.end > end:
                kept.append(replace(rec, offset=end, length=rec.end - end))
        self._poison = kept

    def poison_overlapping(self, offset: int, nbytes: int) -> List[PoisonedExtent]:
        """Poisoned extents overlapping ``[offset, offset+nbytes)``."""
        end = offset + nbytes
        return [r for r in self._poison if r.offset < end and r.end > offset]

    def poisoned_extents(self) -> Tuple[PoisonedExtent, ...]:
        return tuple(self._poison)

    # -- introspection ----------------------------------------------------------

    def peek(self, offset: int, nbytes: int) -> np.ndarray:
        """Direct (zero-time) access to stored bytes, for test assertions."""
        if self._data is None:
            raise RuntimeError(f"{self.name} is not in functional mode")
        return self._data[offset : offset + nbytes].copy()

    def backlog_ns(self) -> int:
        now = self.env.now
        if self._earliest_free >= now:
            # saturated regime: every server is booked past ``now``
            return self._free_sum - now * len(self._free_at)
        return sum(max(0, f - now) for f in self._free_at)


class DriveFailedError(RuntimeError):
    """Raised when I/O is submitted to a failed drive."""


class DriveTransientError(DriveFailedError):
    """Retryable media error raised during an injected error burst."""
