"""The NVMe drive model.

A drive is a FIFO bandwidth server (optionally several parallel internal
servers) with distinct read/write rates plus a fixed access latency per
operation.  The access latency does *not* consume channel capacity — modern
SSDs overlap NAND access with data transfer across dies — so sustained
throughput equals the profile bandwidth while per-op latency is
``queueing + transfer + access``.

In *functional mode* (``capacity_bytes`` given at construction) the drive
additionally keeps a real byte array, so reads return the actual stored
bytes and the whole RAID stack can be validated for bit-exactness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.core import Environment, Event
from repro.sim.resources import NS_PER_S


@dataclass
class DriveStats:
    """Running counters for one drive."""

    read_ops: int = 0
    write_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_ns: int = 0
    gc_events: int = 0

    def reset(self) -> None:
        self.read_ops = 0
        self.write_ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_ns = 0
        self.gc_events = 0


class NvmeDrive:
    """A simulated NVMe SSD.

    ``read``/``write`` return events that fire at I/O completion.  In
    functional mode the read event's value is the stored bytes (snapshotted
    at submission, which is deterministic and adequate because the RAID
    layers above serialize conflicting stripe access).
    """

    def __init__(
        self,
        env: Environment,
        profile,
        name: str = "nvme",
        functional_capacity: int = 0,
    ) -> None:
        self.env = env
        self.profile = profile
        self.name = name
        self.stats = DriveStats()
        self.failed = False
        self._free_at = [0] * profile.parallelism
        # (free_at, idx) min-heap mirror of _free_at (see BandwidthChannel):
        # consulted only when the profile has internal parallelism > 1.
        self._free_heap = [(0, i) for i in range(profile.parallelism)]
        self._gc_budget = profile.gc_after_bytes_written
        # Fault-injection state (repro.faults): transient error bursts and
        # fail-slow latency multipliers.  All keyed off the sim clock.
        self._error_until = 0
        self._slow_mult = 1.0
        self._slow_until: Optional[int] = None  # None = until cleared
        self._data: Optional[np.ndarray] = None
        if functional_capacity:
            self._data = np.zeros(functional_capacity, dtype=np.uint8)

    # -- internals ---------------------------------------------------------

    @property
    def functional(self) -> bool:
        return self._data is not None

    def _dispatch(self, work_ns: int) -> int:
        """Queue ``work_ns`` on the earliest-free internal server; returns
        the absolute completion time of the channel occupancy."""
        now = self.env.now
        if len(self._free_at) == 1:
            free = self._free_at[0]
            start = free if free > now else now
            done = start + work_ns
            self._free_at[0] = done
        else:
            free, idx = heapq.heappop(self._free_heap)
            start = free if free > now else now
            done = start + work_ns
            self._free_at[idx] = done
            heapq.heappush(self._free_heap, (done, idx))
        self.stats.busy_ns += work_ns
        return done

    def _transfer_ns(self, nbytes: int, rate: float) -> int:
        # internal servers each run at rate/parallelism
        per_server = rate / self.profile.parallelism
        return int(round(nbytes * NS_PER_S / per_server))

    def _slow_factor(self) -> float:
        """Current fail-slow latency multiplier (1.0 when healthy)."""
        if self._slow_mult == 1.0:
            return 1.0
        if self._slow_until is not None and self.env.now >= self._slow_until:
            self._slow_mult = 1.0
            self._slow_until = None
            return 1.0
        return self._slow_mult

    def _check(self, offset: int, nbytes: int) -> None:
        if self.failed:
            raise DriveFailedError(f"{self.name} has failed")
        if self.env.now < self._error_until:
            raise DriveTransientError(
                f"{self.name}: transient media error (burst until "
                f"{self._error_until})"
            )
        if nbytes <= 0:
            raise ValueError(f"I/O size must be positive, got {nbytes}")
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if self._data is not None and offset + nbytes > len(self._data):
            raise ValueError(
                f"{self.name}: I/O [{offset}, {offset + nbytes}) exceeds "
                f"functional capacity {len(self._data)}"
            )

    # -- public I/O interface -----------------------------------------------

    def read(self, offset: int, nbytes: int) -> Event:
        """Read ``nbytes`` at ``offset``; event value is the data (or None)."""
        self._check(offset, nbytes)
        self.stats.read_ops += 1
        self.stats.bytes_read += nbytes
        work_ns = self._transfer_ns(nbytes, self.profile.read_bw_bytes_per_s)
        latency_ns = self.profile.read_latency_ns
        factor = self._slow_factor()
        if factor != 1.0:
            work_ns = int(round(work_ns * factor))
            latency_ns = int(round(latency_ns * factor))
        done = self._dispatch(work_ns)
        completion = done + latency_ns - self.env.now
        value = None
        if self._data is not None:
            value = self._data[offset : offset + nbytes].copy()
        return self.env.timeout(completion, value=value)

    def write(self, offset: int, nbytes: int, data=None) -> Event:
        """Write ``nbytes`` at ``offset``; ``data`` required in functional mode."""
        self._check(offset, nbytes)
        self.stats.write_ops += 1
        self.stats.bytes_written += nbytes
        work_ns = self._transfer_ns(nbytes, self.profile.write_bw_bytes_per_s)
        latency_ns = self.profile.write_latency_ns
        factor = self._slow_factor()
        if factor != 1.0:
            work_ns = int(round(work_ns * factor))
            latency_ns = int(round(latency_ns * factor))
        if self.profile.gc_after_bytes_written:
            self._gc_budget -= nbytes
            if self._gc_budget <= 0:
                # garbage collection stalls every internal channel
                self._gc_budget = self.profile.gc_after_bytes_written
                self.stats.gc_events += 1
                stall_until = max(self._free_at) + self.profile.gc_pause_ns
                self._free_at = [max(f, stall_until) for f in self._free_at]
                self._free_heap = sorted(
                    (f, i) for i, f in enumerate(self._free_at)
                )
        done = self._dispatch(work_ns)
        completion = done + latency_ns - self.env.now
        if self._data is not None:
            if data is None:
                raise ValueError(f"{self.name}: functional-mode write requires data")
            arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
            if len(arr) != nbytes:
                raise ValueError(f"data length {len(arr)} != nbytes {nbytes}")
            self._data[offset : offset + nbytes] = arr
        return self.env.timeout(completion)

    # -- failure injection ----------------------------------------------------

    def fail(self) -> None:
        """Mark the drive failed; subsequent I/O raises DriveFailedError."""
        self.failed = True

    def repair(self) -> None:
        self.failed = False

    def inject_error_burst(self, duration_ns: int) -> None:
        """Transient media errors: I/O submitted before ``now + duration_ns``
        raises :class:`DriveTransientError`.  The drive is not marked failed,
        so the RAID layers treat errors as retryable."""
        if duration_ns < 0:
            raise ValueError(f"negative burst duration {duration_ns}")
        self._error_until = max(self._error_until, self.env.now + duration_ns)

    def set_fail_slow(self, multiplier: float, duration_ns: Optional[int] = None) -> None:
        """Multiply transfer + access latency by ``multiplier`` (fail-slow).

        ``duration_ns=None`` keeps the drive slow until :meth:`clear_fail_slow`
        or :meth:`heal`.
        """
        if multiplier < 1.0:
            raise ValueError(f"fail-slow multiplier must be >= 1, got {multiplier}")
        self._slow_mult = float(multiplier)
        self._slow_until = None if duration_ns is None else self.env.now + duration_ns

    def clear_fail_slow(self) -> None:
        self._slow_mult = 1.0
        self._slow_until = None

    def heal(self) -> None:
        """Full heal/replace: clear the failure bit *and* every latency
        residue (queued channel backlog, pending GC debt, error bursts,
        fail-slow multipliers), as if the drive were swapped for a fresh
        one.  Unlike :meth:`repair`, a healed drive is back at profile
        latency immediately."""
        self.failed = False
        self._error_until = 0
        self.clear_fail_slow()
        self._gc_budget = self.profile.gc_after_bytes_written
        now = self.env.now
        self._free_at = [min(f, now) for f in self._free_at]
        self._free_heap = sorted((f, i) for i, f in enumerate(self._free_at))

    # -- introspection ----------------------------------------------------------

    def peek(self, offset: int, nbytes: int) -> np.ndarray:
        """Direct (zero-time) access to stored bytes, for test assertions."""
        if self._data is None:
            raise RuntimeError(f"{self.name} is not in functional mode")
        return self._data[offset : offset + nbytes].copy()

    def backlog_ns(self) -> int:
        now = self.env.now
        return sum(max(0, f - now) for f in self._free_at)


class DriveFailedError(RuntimeError):
    """Raised when I/O is submitted to a failed drive."""


class DriveTransientError(DriveFailedError):
    """Retryable media error raised during an injected error burst."""
