"""End-to-end data integrity: per-chunk checksums and poisoned extents.

Production arrays pair parity with block checksums (T10-DIF / ZFS-style)
because parity alone cannot *detect* silent corruption — bit rot, lost,
torn and misdirected writes leave every drive answering happily with the
wrong bytes.  This module provides the detection layer:

* :func:`crc32c` — the Castagnoli CRC used by T10-DIF and iSCSI, as a
  pure-Python slice-by-8 implementation (tables built with numpy).
* :class:`PoisonedExtent` — a record of silently corrupted bytes kept by
  :class:`~repro.storage.drive.NvmeDrive`.  In timing-only mode it *is*
  the detection mechanism (there are no bytes to checksum); in functional
  mode it additionally attributes a mismatch to the fault that caused it
  and carries the injection time for detection-latency accounting.
* :class:`IntegrityStore` — the array-wide per-chunk checksum store.
  Attaching one to a cluster *arms* the integrity layer: every controller
  verifies chunks on read and repairs mismatches from parity.  Unarmed
  clusters take none of these paths, so committed goldens are unchanged.
* :class:`ChecksumError` — raised when a chunk's content does not match
  its expectation (or overlaps a poisoned extent).

The store is *lazy* by default: a write marks the touched chunks as
"trusted" (no CRC is computed), and a CRC expectation is only pinned —
from the intended bytes — at the moment a corruption primitive mutates
them behind the array's back.  This keeps the hot write path free of
per-chunk CRC cost while remaining byte-accurate: the only chunks that
ever need CRC verification are exactly the ones a fault touched.
``eager=True`` computes and verifies true CRCs on every write/read and is
used by the unit tests to validate the checksum math end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

#: Reflected Castagnoli polynomial (CRC-32C, as used by T10-DIF / iSCSI).
_CRC32C_POLY = 0x82F63B78


def _build_crc32c_tables() -> List[List[int]]:
    t0 = np.zeros(256, dtype=np.uint32)
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ (_CRC32C_POLY if crc & 1 else 0)
        t0[i] = crc
    tables = [t0]
    for _ in range(7):
        prev = tables[-1]
        tables.append((prev >> 8) ^ t0[prev & 0xFF])
    # plain Python lists index faster than numpy scalars in the hot loop
    return [t.tolist() for t in tables]


_T = _build_crc32c_tables()


def crc32c(data, crc: int = 0) -> int:
    """CRC-32C (Castagnoli) of ``data`` (bytes or uint8 ndarray)."""
    if isinstance(data, np.ndarray):
        buf = data.tobytes()
    elif isinstance(data, (bytes, bytearray, memoryview)):
        buf = bytes(data)
    else:
        buf = bytes(data)
    t0, t1, t2, t3, t4, t5, t6, t7 = _T
    crc ^= 0xFFFFFFFF
    n8 = len(buf) & ~7
    idx = 0
    while idx < n8:
        q = int.from_bytes(buf[idx : idx + 8], "little") ^ crc
        crc = (
            t7[q & 0xFF]
            ^ t6[(q >> 8) & 0xFF]
            ^ t5[(q >> 16) & 0xFF]
            ^ t4[(q >> 24) & 0xFF]
            ^ t3[(q >> 32) & 0xFF]
            ^ t2[(q >> 40) & 0xFF]
            ^ t1[(q >> 48) & 0xFF]
            ^ t0[(q >> 56) & 0xFF]
        )
        idx += 8
    for byte in buf[idx:]:
        crc = (crc >> 8) ^ t0[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


class ChecksumError(RuntimeError):
    """A chunk's bytes do not match their checksum expectation."""


@dataclass(frozen=True)
class PoisonedExtent:
    """A byte range silently corrupted on a drive.

    ``kind`` names the fault class (matches the fault-event class name:
    ``BitRot``, ``LostWrite``, ``TornWrite``, ``MisdirectedWrite``) and
    ``at_ns`` is the sim time the corruption landed — the anchor for
    detection-latency accounting.
    """

    offset: int
    length: int
    kind: str
    at_ns: int

    @property
    def end(self) -> int:
        return self.offset + self.length


class IntegrityStore:
    """Array-wide per-chunk (T10-DIF-style) checksum expectations.

    One store serves every drive of a cluster; chunk expectations are
    keyed by ``(drive_index, chunk_index)`` where the chunk index equals
    the stripe number (every member stores one chunk per stripe at
    ``stripe * chunk_bytes``).
    """

    def __init__(self, chunk_bytes: int, eager: bool = False) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.chunk_bytes = chunk_bytes
        #: eager mode computes a true CRC on every write (unit tests);
        #: lazy mode trusts writes and pins CRCs only at corruption time.
        self.eager = eager
        self.cluster = None
        #: finalized CRC expectations (the only chunks that cost a CRC)
        self._crc: Dict[Tuple[int, int], int] = {}
        #: chunks written since their last finalization: content trusted
        self._dirty: Set[Tuple[int, int]] = set()
        #: chunks currently known-bad (dedupes detection accounting)
        self.known_bad: Set[Tuple[int, int]] = set()

    # -- wiring ------------------------------------------------------------

    def attach(self, cluster) -> "IntegrityStore":
        """Arm ``cluster``: controllers on it verify reads and repair."""
        cluster.integrity = self
        for index, server in enumerate(cluster.servers):
            server.drive.attach_integrity(self, index)
        self.cluster = cluster
        return self

    # -- chunk bookkeeping -------------------------------------------------

    def _chunks(self, offset: int, nbytes: int) -> range:
        first = offset // self.chunk_bytes
        last = (offset + max(1, nbytes) - 1) // self.chunk_bytes
        return range(first, last + 1)

    def _chunk_bytes_of(self, drive, chunk: int) -> np.ndarray:
        lo = chunk * self.chunk_bytes
        hi = min(lo + self.chunk_bytes, len(drive._data))
        return drive._data[lo:hi]

    def record_write(self, drive, offset: int, nbytes: int) -> None:
        """A write landed: the chunk content is (again) what the array
        intended, superseding any previous expectation."""
        for chunk in self._chunks(offset, nbytes):
            key = (drive._integrity_index, chunk)
            self.known_bad.discard(key)
            if self.eager and drive._data is not None:
                self._crc[key] = crc32c(self._chunk_bytes_of(drive, chunk))
                self._dirty.discard(key)
            else:
                self._crc.pop(key, None)
                self._dirty.add(key)

    def finalize(self, drive, offset: int, nbytes: int) -> None:
        """Pin CRC expectations for chunks about to be silently mutated.

        Called by the drive's corruption primitives *before* the mutation,
        so the expectation captures the intended bytes.  No-op for chunks
        that already carry a finalized expectation, and in timing-only
        mode (where poisoned extents carry the detection signal).
        """
        if drive._data is None:
            return
        for chunk in self._chunks(offset, nbytes):
            key = (drive._integrity_index, chunk)
            if key in self._crc and key not in self._dirty:
                continue
            self._crc[key] = crc32c(self._chunk_bytes_of(drive, chunk))
            self._dirty.discard(key)

    # -- verification ------------------------------------------------------

    def chunk_ok(self, drive, chunk: int, data=None) -> bool:
        """Whether ``chunk`` of ``drive`` matches its expectation.

        ``data`` optionally supplies already-read chunk bytes (the scrub
        daemon passes its own read-back) instead of peeking the drive.
        """
        lo = chunk * self.chunk_bytes
        if drive.poison_overlapping(lo, self.chunk_bytes):
            return False
        expected = self._crc.get((drive._integrity_index, chunk))
        if expected is None or drive._data is None:
            return True
        block = data if data is not None else self._chunk_bytes_of(drive, chunk)
        return crc32c(block) == expected

    def require_chunk(self, drive, chunk: int, data=None) -> None:
        """Raise :class:`ChecksumError` unless ``chunk`` verifies clean."""
        if not self.chunk_ok(drive, chunk, data=data):
            raise ChecksumError(
                f"{drive.name}: chunk {chunk} failed checksum verification "
                f"(kinds={','.join(self.bad_kinds(drive, chunk))})"
            )

    def bad_kinds(self, drive, chunk: int) -> List[str]:
        """Fault kinds attributed to a bad chunk (sorted, deterministic)."""
        lo = chunk * self.chunk_bytes
        kinds = {rec.kind for rec in drive.poison_overlapping(lo, self.chunk_bytes)}
        return sorted(kinds) if kinds else ["Unknown"]

    def first_poison_ns(self, drive, chunk: int) -> Optional[int]:
        """Earliest injection time of poison overlapping ``chunk``."""
        lo = chunk * self.chunk_bytes
        records = drive.poison_overlapping(lo, self.chunk_bytes)
        if not records:
            return None
        return min(rec.at_ns for rec in records)
