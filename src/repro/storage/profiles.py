"""Drive performance profiles.

The default profile is calibrated to the paper's testbed drive (§2.3, §9.1):
a Dell Ent NVMe AGN MU U.2 1.6 TB, whose write throughput the paper measures
at "around 19 Gbps" (2375 MB/s).  The read rate is set so that six drives
saturate the 100 Gbps NIC goodput, as §9.2 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1_000_000
US = 1_000  # nanoseconds per microsecond


@dataclass(frozen=True)
class DriveProfile:
    """Static performance characteristics of an NVMe drive.

    The optional garbage-collection knobs model the latency spikes SSD GC
    causes (the motivation behind SWAN/GGC/TTFLASH/FusionRAID in the
    paper's related work): after every ``gc_after_bytes_written`` bytes of
    writes the drive stalls its channel for ``gc_pause_ns``.  Zero (the
    default) disables GC entirely.
    """

    name: str
    read_bw_bytes_per_s: float
    write_bw_bytes_per_s: float
    read_latency_ns: int
    write_latency_ns: int
    #: Internal NAND-level parallelism: number of independent FIFO servers.
    parallelism: int = 1
    capacity_bytes: int = 1_600_000_000_000
    #: GC triggers after this many bytes written (0 = no GC).
    gc_after_bytes_written: int = 0
    #: Channel stall per GC event.
    gc_pause_ns: int = 0

    def __post_init__(self) -> None:
        if self.read_bw_bytes_per_s <= 0 or self.write_bw_bytes_per_s <= 0:
            raise ValueError(f"{self.name}: bandwidths must be positive")
        if self.read_latency_ns < 0 or self.write_latency_ns < 0:
            raise ValueError(f"{self.name}: latencies must be non-negative")
        if self.gc_after_bytes_written < 0 or self.gc_pause_ns < 0:
            raise ValueError(f"{self.name}: GC parameters must be non-negative")

    def with_gc(self, after_bytes: int, pause_ns: int) -> "DriveProfile":
        """A copy of this profile with garbage collection enabled."""
        from dataclasses import replace

        return replace(self, gc_after_bytes_written=after_bytes, gc_pause_ns=pause_ns)


#: The paper's testbed drive (Dell Ent NVMe AGN MU U.2 1.6 TB).
DELL_AGN_MU = DriveProfile(
    name="dell-agn-mu-1.6tb",
    read_bw_bytes_per_s=3200 * MB,
    write_bw_bytes_per_s=2375 * MB,  # ~19 Gbps, the paper's own measurement
    read_latency_ns=80 * US,
    write_latency_ns=18 * US,  # write-back DRAM buffer absorbs the program op
)

#: A faster hypothetical drive used by ablations (what-if studies).
FAST_NVME = DriveProfile(
    name="fast-nvme",
    read_bw_bytes_per_s=6800 * MB,
    write_bw_bytes_per_s=4000 * MB,
    read_latency_ns=60 * US,
    write_latency_ns=12 * US,
)
