"""Runtime invariant checking for the whole simulated datapath.

This package is the repository's sanitizer layer, in the spirit of
FoundationDB-style deterministic simulation testing: every run *can* be
machine-checked against the invariants the paper's correctness argument
rests on, and the checks are zero-cost when disarmed.

Three cooperating pieces:

* :class:`~repro.verify.kernel.KernelSanitizer` — hooks into the event
  kernel (:mod:`repro.sim.core`), the counted resources
  (:mod:`repro.sim.resources`) and the stripe-lock manager
  (:mod:`repro.raid.locks`): deadlock detection with a wait graph,
  lock-order inversions, double releases, leaked holds, and events
  dispatched in the past.
* :class:`~repro.verify.protocol.ProtocolChecker` — validates the §4
  dRAID message exchange (and the plain NVMe-oF completion stream)
  against per-request state machines: no parity acknowledgment before
  all partial folds, no duplicate acks, command-id uniqueness across
  retries, fencing never exceeding parity.
* :mod:`repro.verify.fuzz` — a shadow-model differential fuzzer that
  runs seeded workload+fault+corruption schedules against all three
  controllers with the sanitizer armed and shrinks failures to minimal
  reproducers.

Arming: pass ``ClusterConfig(verify=VerifyConfig())`` to
:func:`repro.cluster.build_cluster`; the builder attaches a
:class:`Verifier` hub at ``cluster.verify`` and every controller built on
that cluster wires itself up.  A violated invariant raises
:class:`InvariantViolation`, a structured exception carrying the invariant
name, the simulated time, the command id and the trace span of the
offending request (when observability is armed too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.verify.kernel import KernelSanitizer
from repro.verify.protocol import ProtocolChecker

__all__ = [
    "InvariantViolation",
    "KernelSanitizer",
    "ProtocolChecker",
    "Verifier",
    "VerifyConfig",
]


class InvariantViolation(RuntimeError):
    """A machine-checked invariant failed.

    Structured so tests and the fuzzer can assert on *which* invariant
    broke and *where*:

    * ``invariant`` — stable kebab-case name (``"deadlock"``,
      ``"lock-order-inversion"``, ``"double-release"``, ``"leaked-hold"``,
      ``"past-event"``, ``"time-travel"``, ``"cid-reuse"``,
      ``"duplicate-completion"``, ``"premature-parity-completion"``,
      ``"fencing-beyond-parity"``).
    * ``detail`` — human-readable description of the offending state.
    * ``time_ns`` — simulated time of detection.
    * ``cid`` — command id of the offending request, when applicable.
    * ``trace`` — the :class:`repro.obs.TraceContext` span of the
      offending request (None when observability is unarmed).
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        time_ns: int = 0,
        cid: Optional[int] = None,
        trace: Optional[Any] = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.time_ns = time_ns
        self.cid = cid
        self.trace = trace
        where = f"t={time_ns}ns"
        if cid is not None:
            where += f" cid={cid}"
        if trace is not None:
            where += f" span={trace.trace_id}:{trace.span_id}"
        super().__init__(f"[{invariant}] {detail} ({where})")


@dataclass(frozen=True)
class VerifyConfig:
    """What to arm when ``ClusterConfig.verify`` is set.

    The defaults arm everything; both flags exist so a test can isolate
    one layer (e.g. protocol checking without the kernel's rebound run
    loop).
    """

    #: kernel sanitizer: deadlock / lock order / leaked holds / past events
    kernel: bool = True
    #: per-request §4 / NVMe-oF protocol state machines
    protocol: bool = True


class Verifier:
    """Per-cluster sanitizer hub, attached at ``cluster.verify``.

    Mirrors the arming pattern of :class:`repro.obs.Observability`: the
    builder constructs one when ``ClusterConfig.verify`` is set and every
    instrumentation site short-circuits on the attribute being None.
    """

    def __init__(self, cluster, config: VerifyConfig) -> None:
        self.cluster = cluster
        self.config = config
        self.kernel: Optional[KernelSanitizer] = (
            KernelSanitizer(cluster.env) if config.kernel else None
        )
        self.protocol: Optional[ProtocolChecker] = (
            ProtocolChecker(cluster.env) if config.protocol else None
        )

    @property
    def violations(self) -> List[InvariantViolation]:
        """Every violation either checker has recorded (raised or not)."""
        out: List[InvariantViolation] = []
        if self.kernel is not None:
            out.extend(self.kernel.violations)
        if self.protocol is not None:
            out.extend(self.protocol.violations)
        return out

    def watch_array(self, array) -> None:
        """Wire a RAID controller's lock manager into the kernel sanitizer.

        Called from ``HostCentricRaid.__init__`` on verify-armed clusters.
        """
        if self.kernel is not None:
            self.kernel.watch_locks(array.locks)

    def check_fence(self, array) -> None:
        """Invariant: fencing never exceeds the geometry's parity count."""
        if self.protocol is not None:
            self.protocol.check_fence(array)

    def check_leaks(self) -> None:
        """Assert no lock/slot is still held by a terminated process."""
        if self.kernel is not None:
            self.kernel.check_leaks()

    def check_quiescent(self) -> None:
        """Assert every watched lock and resource is fully released."""
        if self.kernel is not None:
            self.kernel.check_quiescent()
