"""Shadow-model differential fuzzer for the whole datapath.

FoundationDB-style deterministic simulation testing, scoped to this
repository: a seeded schedule of workload ops, member faults and silent
corruption runs against one of the three controllers (MD, SPDK POC,
dRAID) on a tiny functional-mode array with the sanitizer and protocol
checker armed, and the end state is diffed byte-for-byte against a
trivial sequential shadow array.  Any divergence — a data diff, a dirty
parity scrub, or an :class:`~repro.verify.InvariantViolation` raised
mid-run — is a *failing schedule*, which :func:`shrink_schedule` reduces
to a minimal reproducer and :func:`emit_reproducer` turns into a
ready-to-commit regression test (see ``tests/test_fuzz_regressions.py``).

Everything keys off the schedule: op offsets, sizes and payload seeds
are frozen into :class:`FuzzOp` literals at generation time, so a
shrunk schedule replays the surviving ops bit-identically.  The CLI
entry point (``python -m repro.verify.fuzz``) derives per-iteration
seeds from a base seed by SHA-256, so nightly runs are reproducible
from their logged command line alone.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.verify import InvariantViolation, VerifyConfig

KB = 1024
MS = 1_000_000

#: fuzz schedules want fast failure detection, like the chaos harness
FUZZ_TIMEOUT_NS = 2 * MS

#: systems the fuzzer rotates through (same trio as the chaos harness)
FUZZ_SYSTEMS = ("md", "spdk", "draid")


@dataclass(frozen=True)
class FuzzOp:
    """One step of a schedule.  Frozen and literal-emittable: a shrunk
    schedule's reproducer source is just ``repr`` of these.

    Kinds:

    * ``"write"`` — write ``nbytes`` at ``offset``; the payload is derived
      from ``payload_seed`` (pinned at generation time so shrinking never
      changes surviving ops' bytes).
    * ``"read"`` — read ``nbytes`` at ``offset`` and diff against the
      shadow array.
    * ``"fail"`` — fail member ``drive`` (skipped when the array is
      already at its parity tolerance).
    * ``"heal"`` — heal member ``drive`` and rebuild it (no-op when the
      member is not failed).
    * ``"rot"`` — silently corrupt ``nbytes`` of member ``drive`` at
      ``offset`` (arms the integrity store for the whole schedule).

    Every op waits ``gap_ns`` of simulated time before executing, so
    background machinery (timeouts, rebuilds) interleaves with the
    workload.
    """

    kind: str
    offset: int = 0
    nbytes: int = 0
    drive: int = 0
    gap_ns: int = 0
    payload_seed: int = 0


@dataclass(frozen=True)
class FuzzSchedule:
    """A complete, self-contained fuzz input: replaying it needs nothing
    but this object (see :func:`replay_schedule`).

    The design-space axes (``layout``, ``code`` and friends) default to
    the historic configuration — rotating RAID-5 — so every schedule
    generated or pinned before the axes existed replays byte-identically.
    ``system`` additionally accepts ``"draid-st"`` (stateless-target
    controller); ``code`` is ``""`` for RAID-5, or ``"rs"``/``"lrc"``
    for the generalized dRAID arrays.
    """

    system: str
    seed: int
    drives: int = 4
    stripes: int = 8
    chunk: int = 4 * KB
    ops: Tuple[FuzzOp, ...] = ()
    layout: str = "rotating"
    layout_seed: int = 0
    code: str = ""
    ec_parity: int = 2
    local_groups: int = 1

    def describe(self) -> str:
        axes = ""
        if self.layout != "rotating" or self.code:
            axes = f" layout={self.layout} code={self.code or 'raid5'}"
        return (
            f"{self.system} seed={self.seed} "
            f"{self.drives}x{self.stripes}x{self.chunk} ops={len(self.ops)}{axes}"
        )


@dataclass(frozen=True)
class FuzzOutcome:
    """Result of one schedule run (deterministic for a given schedule)."""

    system: str
    seed: int
    ops: int
    executed: int  #: ops actually run (a violation stops the schedule)
    op_errors: int  #: ops that ended in terminal IoError/ChecksumError
    torn_stripes: int
    #: "" when clean; "invariant:<name>", "diff", "scrub-dirty", or
    #: "exception:<Type>" otherwise
    failure: str
    detail: str  #: human-readable description of the failure ("" if ok)
    verified: bool
    scrub_clean: bool
    data_sha256: str
    checked_messages: int = 0

    @property
    def ok(self) -> bool:
        return not self.failure

    def row(self) -> str:
        """One deterministic log/golden line."""
        return (
            f"{self.system:>5s} seed={self.seed:<6d} ops={self.ops} "
            f"errors={self.op_errors} torn={self.torn_stripes} "
            f"msgs={self.checked_messages} "
            f"result={'ok' if self.ok else self.failure} "
            f"sha={self.data_sha256[:12]}"
        )


# -- schedule generation ----------------------------------------------------


def make_schedule(
    system: str,
    seed: int,
    drives: int = 4,
    stripes: int = 8,
    chunk: int = 4 * KB,
    num_ops: int = 10,
    corruption: bool = True,
    axes: bool = False,
) -> FuzzSchedule:
    """Generate one seeded schedule.  Deterministic in its arguments.

    ``axes=True`` additionally draws the design-space axes (layout, and —
    on dRAID controllers — erasure code) from a *child* RNG
    (``repro.fuzz.axes:<system>:<seed>``), so axis sampling never
    perturbs the op stream of the default configuration and every
    pre-axes ``(system, seed)`` schedule stays byte-identical.
    """
    rng = random.Random(f"repro.fuzz:{system}:{seed}")
    layout, layout_seed, code, ec_parity, local_groups = "rotating", 0, "", 2, 1
    if axes:
        axes_rng = random.Random(f"repro.fuzz.axes:{system}:{seed}")
        layout = axes_rng.choice(("rotating", "declustered"))
        layout_seed = axes_rng.randrange(1 << 16)
        if system in ("draid", "draid-st"):
            code = axes_rng.choice(("", "rs", "lrc"))
        if code:
            # EC variants need k >= 2 even on the narrower declustered width
            drives = max(drives, 6)
    if code:
        width = drives - 1 if layout == "declustered" else drives
        data_per_stripe = width - ec_parity
    elif layout == "declustered":
        data_per_stripe = (drives - 1) - 1
    else:
        from repro.raid.geometry import RaidGeometry, RaidLevel

        geometry = RaidGeometry(RaidLevel.RAID5, drives, chunk)
        data_per_stripe = geometry.data_per_stripe
    stripe_bytes = data_per_stripe * chunk
    capacity = stripes * stripe_bytes
    member_bytes = stripes * chunk
    kinds = ["write", "write", "write", "write", "read", "read", "fail", "heal"]
    if corruption:
        kinds.append("rot")
    ops: List[FuzzOp] = []
    for _ in range(num_ops):
        kind = rng.choice(kinds)
        gap = rng.randint(50_000, 1 * MS)
        if kind in ("write", "read"):
            size = rng.randint(1, 2 * stripe_bytes)
            ops.append(
                FuzzOp(
                    kind,
                    offset=rng.randrange(0, capacity - size),
                    nbytes=size,
                    gap_ns=gap,
                    payload_seed=rng.randrange(1 << 30) if kind == "write" else 0,
                )
            )
        elif kind in ("fail", "heal"):
            ops.append(FuzzOp(kind, drive=rng.randrange(drives), gap_ns=gap))
        else:  # rot
            length = rng.randint(1, chunk)
            ops.append(
                FuzzOp(
                    "rot",
                    drive=rng.randrange(drives),
                    offset=rng.randrange(0, member_bytes - length),
                    nbytes=length,
                    gap_ns=gap,
                    payload_seed=rng.randrange(1 << 30),
                )
            )
    return FuzzSchedule(
        system=system, seed=seed, drives=drives, stripes=stripes, chunk=chunk,
        ops=tuple(ops), layout=layout, layout_seed=layout_seed, code=code,
        ec_parity=ec_parity, local_groups=local_groups,
    )


def _payload(op: FuzzOp) -> np.ndarray:
    data = random.Random(f"repro.fuzz.data:{op.payload_seed}").randbytes(op.nbytes)
    return np.frombuffer(data, dtype=np.uint8).copy()


# -- execution --------------------------------------------------------------


def run_schedule(schedule: FuzzSchedule, verify: bool = True) -> FuzzOutcome:
    """Run one schedule; differential end-state check against the shadow.

    ``verify=True`` (the default, and what :func:`replay_schedule` pins)
    arms the kernel sanitizer and protocol checker, so an invariant
    violation fails the schedule even when the bytes happen to survive.
    """
    from repro.cluster import ClusterConfig, build_cluster
    from repro.faults.chaos import _make_controller
    from repro.nvmeof.messages import IoError
    from repro.raid.geometry import RaidGeometry, RaidLevel
    from repro.raid.rebuild import RebuildJob
    from repro.raid.resync import resync_stripes
    from repro.raid.scrub import scrub_array
    from repro.raid.scrubber import ScrubDaemon
    from repro.sim import Environment
    from repro.storage.integrity import ChecksumError, IntegrityStore

    env = Environment()
    config = ClusterConfig(
        num_servers=schedule.drives,
        functional_capacity=schedule.stripes * schedule.chunk,
        io_timeout_ns=FUZZ_TIMEOUT_NS,
        verify=VerifyConfig() if verify else None,
    )
    cluster = build_cluster(env, config)
    parity_count = schedule.ec_parity if schedule.code else 1
    layout_obj = None
    if schedule.layout and schedule.layout != "rotating":
        from repro.raid.layout import make_layout

        layout_obj = make_layout(
            schedule.layout, schedule.drives, parity_count,
            seed=schedule.layout_seed,
        )
    if schedule.code:
        from repro.draid.ec_array import EcGeometry

        geometry = EcGeometry(
            schedule.drives, schedule.chunk, parity_count, layout=layout_obj
        )
    else:
        geometry = RaidGeometry(
            RaidLevel.RAID5, schedule.drives, schedule.chunk, layout=layout_obj
        )
    has_rot = any(op.kind == "rot" for op in schedule.ops)
    if has_rot:
        IntegrityStore(schedule.chunk).attach(cluster)
    array = _make_controller(
        schedule.system, cluster, geometry,
        code=schedule.code or None, local_groups=schedule.local_groups,
    )
    # arm the timeout/retry datapath without a FaultInjector: the fuzzer
    # drives faults itself, op by op
    array._force_resilient = True

    stripe_bytes = geometry.stripe_data_bytes
    capacity = schedule.stripes * stripe_bytes
    shadow = np.zeros(capacity, dtype=np.uint8)
    torn: Set[int] = set()
    op_errors = 0
    executed = 0

    def stripes_of(offset: int, nbytes: int) -> Set[int]:
        return set(
            range(offset // stripe_bytes, (offset + nbytes - 1) // stripe_bytes + 1)
        )

    def fault_failure(exc: BaseException) -> FuzzOutcome:
        if isinstance(exc, InvariantViolation):
            failure, detail = f"invariant:{exc.invariant}", str(exc)
        else:
            failure, detail = f"exception:{type(exc).__name__}", str(exc)
        return FuzzOutcome(
            system=schedule.system,
            seed=schedule.seed,
            ops=len(schedule.ops),
            executed=executed,
            op_errors=op_errors,
            torn_stripes=len(torn),
            failure=failure,
            detail=detail,
            verified=False,
            scrub_clean=False,
            data_sha256="",
            checked_messages=_checked_messages(cluster),
        )

    try:
        for op in schedule.ops:
            if op.gap_ns:
                env.run(until=env.now + op.gap_ns)
            try:
                if op.kind == "write":
                    payload = _payload(op)
                    env.run(until=array.write(op.offset, op.nbytes, payload))
                    shadow[op.offset : op.offset + op.nbytes] = payload
                elif op.kind == "read":
                    data = env.run(until=array.read(op.offset, op.nbytes))
                    if not stripes_of(op.offset, op.nbytes) & torn:
                        if not np.array_equal(
                            data, shadow[op.offset : op.offset + op.nbytes]
                        ):
                            return _diff_outcome(
                                schedule, executed, op_errors, torn,
                                f"read at {op.offset}+{op.nbytes} diverged from "
                                f"the shadow array", cluster,
                            )
                elif op.kind == "fail":
                    if (
                        op.drive not in array.failed
                        and len(array.failed) < array.fault_tolerance
                    ):
                        array.fail_drive(op.drive)
                elif op.kind == "heal":
                    if op.drive in array.failed:
                        # RebuildJob swaps in a fresh (healed) drive itself
                        job = RebuildJob(array, op.drive, schedule.stripes)
                        env.run(until=job.start())
                elif op.kind == "rot":
                    cluster.servers[op.drive].drive.corrupt(
                        "bitrot",
                        offset=op.offset,
                        length=op.nbytes,
                        seed=op.payload_seed,
                    )
                else:
                    raise ValueError(f"unknown fuzz op kind {op.kind!r}")
            except (IoError, ChecksumError) as exc:
                op_errors += 1
                if op.kind == "write":
                    # terminal write failure: touched stripes may be torn
                    torn |= stripes_of(op.offset, op.nbytes)
                elif op.kind == "read":
                    # unreadable (e.g. rot beyond parity): stop verifying
                    torn |= stripes_of(op.offset, op.nbytes)
                elif op.kind == "heal":
                    # rebuild hit rot on a survivor (two erasures): the
                    # member stays failed; later heals may still cure it
                    torn |= set(range(schedule.stripes))
            executed += 1

        # -- recovery: restore redundancy so the end state is checkable ----
        for member in sorted(array.failed):
            try:
                env.run(until=RebuildJob(array, member, schedule.stripes).start())
            except (IoError, ChecksumError):
                op_errors += 1
                array.repair_drive(member)
                torn |= set(range(schedule.stripes))
        if has_rot:
            # scrub-repair cures surviving rot (notably on parity chunks,
            # which foreground reads never verify)
            env.run(until=ScrubDaemon(array, schedule.stripes, pace_ns=0).process)
            # rot beyond parity is genuine data loss, not a controller
            # bug: adopt those stripes like torn ones (the resync below
            # rewrites them from the surviving bytes, clearing the poison)
            store = cluster.integrity
            for stripe in range(schedule.stripes):
                if any(not store.chunk_ok(d, stripe) for d in cluster.drives()):
                    torn.add(stripe)
        for stripe in sorted(torn):
            try:
                env.run(until=resync_stripes(array, [stripe]))
            except ChecksumError:
                offset = stripe * stripe_bytes
                saved, cluster.integrity = cluster.integrity, None
                try:
                    data = env.run(until=array.read(offset, stripe_bytes))
                    env.run(until=array.write(offset, stripe_bytes, data))
                finally:
                    cluster.integrity = saved
        for stripe in sorted(torn):
            offset = stripe * stripe_bytes
            data = env.run(until=array.read(offset, stripe_bytes))
            shadow[offset : offset + stripe_bytes] = data

        # -- differential verification -------------------------------------
        try:
            final = env.run(until=array.read(0, capacity))
            verified = bool(np.array_equal(final, shadow))
        except ChecksumError:
            # should be impossible after adoption above; grab the raw
            # image so the digest still reflects the end state
            saved, cluster.integrity = cluster.integrity, None
            final = env.run(until=array.read(0, capacity))
            cluster.integrity = saved
            verified = False
        if verify and cluster.verify is not None:
            cluster.verify.check_quiescent()
    except Exception as exc:  # noqa: BLE001 — any escape fails the schedule
        return fault_failure(exc)

    report = scrub_array(
        cluster.drives(), geometry, schedule.stripes,
        code=getattr(array, "code", None),
    )
    failure = ""
    detail = ""
    if not verified:
        failure, detail = "diff", "end state diverged from the shadow array"
    elif not report.clean:
        failure, detail = "scrub-dirty", "post-run parity scrub found mismatches"
    return FuzzOutcome(
        system=schedule.system,
        seed=schedule.seed,
        ops=len(schedule.ops),
        executed=executed,
        op_errors=op_errors,
        torn_stripes=len(torn),
        failure=failure,
        detail=detail,
        verified=verified,
        scrub_clean=report.clean,
        data_sha256=hashlib.sha256(np.ascontiguousarray(final).tobytes()).hexdigest(),
        checked_messages=_checked_messages(cluster),
    )


def _checked_messages(cluster) -> int:
    if cluster.verify is not None and cluster.verify.protocol is not None:
        return cluster.verify.protocol.checked_messages
    return 0


def _diff_outcome(schedule, executed, op_errors, torn, detail, cluster) -> FuzzOutcome:
    return FuzzOutcome(
        system=schedule.system,
        seed=schedule.seed,
        ops=len(schedule.ops),
        executed=executed,
        op_errors=op_errors,
        torn_stripes=len(torn),
        failure="diff",
        detail=detail,
        verified=False,
        scrub_clean=False,
        data_sha256="",
        checked_messages=_checked_messages(cluster),
    )


def replay_schedule(schedule: FuzzSchedule) -> FuzzOutcome:
    """Replay a (possibly shrunk) schedule with the sanitizer armed.

    This is the API reproducers pin: ``emit_reproducer`` generates tests
    that call exactly this.
    """
    return run_schedule(schedule, verify=True)


# -- shrinking --------------------------------------------------------------


def shrink_schedule(
    schedule: FuzzSchedule,
    still_fails: Optional[Callable[[FuzzSchedule], bool]] = None,
) -> FuzzSchedule:
    """Greedy delta-debugging: drop op chunks while the failure persists.

    ``still_fails`` defaults to "replaying the candidate yields any
    failure"; tests inject their own predicate to shrink against a
    specific invariant.  Worst case ``O(n^2)`` replays; schedules are
    ~10 ops, so shrinking is cheap.
    """
    if still_fails is None:
        still_fails = lambda cand: not replay_schedule(cand).ok  # noqa: E731
    ops = list(schedule.ops)
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        i = 0
        while i < len(ops):
            trial = ops[:i] + ops[i + chunk :]
            candidate = replace(schedule, ops=tuple(trial))
            if still_fails(candidate):
                ops = trial
            else:
                i += chunk
        chunk //= 2
    return replace(schedule, ops=tuple(ops))


def emit_reproducer(schedule: FuzzSchedule, outcome: FuzzOutcome) -> str:
    """Source of a self-contained regression test for ``schedule``.

    The emitted test replays the schedule through :func:`replay_schedule`
    and asserts a clean outcome, so it fails until the underlying bug is
    fixed and guards against regression forever after.  Output format is
    pinned by ``tests/test_fuzz_regressions.py``.
    """
    op_lines = ",\n".join(f"        {op!r}" for op in schedule.ops)
    ops_literal = f"(\n{op_lines},\n    )" if schedule.ops else "()"
    # design-space axes are emitted only when non-default, so pre-axes
    # reproducers (and their pinned goldens) stay byte-identical
    axis_lines = ""
    if schedule.layout != "rotating":
        axis_lines += f"\n        layout={schedule.layout!r},"
        axis_lines += f"\n        layout_seed={schedule.layout_seed},"
    if schedule.code:
        axis_lines += f"\n        code={schedule.code!r},"
        axis_lines += f"\n        ec_parity={schedule.ec_parity},"
        axis_lines += f"\n        local_groups={schedule.local_groups},"
    return f'''def test_fuzz_{_ident(schedule.system)}_seed{schedule.seed}():
    """Shrunk reproducer ({len(schedule.ops)} ops): {outcome.failure or "clean"}.

    {outcome.detail or "Replays clean; pins the schedule against regression."}
    """
    from repro.verify.fuzz import FuzzOp, FuzzSchedule, replay_schedule

    schedule = FuzzSchedule(
        system={schedule.system!r},
        seed={schedule.seed},
        drives={schedule.drives},
        stripes={schedule.stripes},
        chunk={schedule.chunk},
        ops={ops_literal},{axis_lines}
    )
    outcome = replay_schedule(schedule)
    assert outcome.ok, f"{{outcome.failure}}: {{outcome.detail}}"
'''


def _ident(system: str) -> str:
    """``system`` as a test-name fragment (``draid-st`` -> ``draid_st``)."""
    return system.replace("-", "_")


# -- CLI --------------------------------------------------------------------


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic per-iteration seed: SHA-256 of ``base:index``."""
    digest = hashlib.sha256(f"repro.fuzz:{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % 1_000_000


def fuzz_many(
    seeds: int,
    base_seed: int = 0,
    budget_s: Optional[float] = None,
    systems: Tuple[str, ...] = FUZZ_SYSTEMS,
    num_ops: int = 10,
    on_row: Optional[Callable[[str], None]] = None,
    axes: bool = False,
) -> List[Tuple[FuzzSchedule, FuzzOutcome]]:
    """Run ``seeds`` schedules round-robin over ``systems``; returns the
    failures (schedule, outcome).  Stops early when ``budget_s`` wall
    seconds elapse."""
    import time

    t0 = time.monotonic()
    failures: List[Tuple[FuzzSchedule, FuzzOutcome]] = []
    for i in range(seeds):
        if budget_s is not None and time.monotonic() - t0 > budget_s:
            if on_row is not None:
                on_row(f"# budget exhausted after {i} seeds")
            break
        system = systems[i % len(systems)]
        schedule = make_schedule(
            system, derive_seed(base_seed, i), num_ops=num_ops, axes=axes
        )
        outcome = run_schedule(schedule)
        if on_row is not None:
            on_row(outcome.row())
        if not outcome.ok:
            failures.append((schedule, outcome))
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import os

    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="shadow-model differential fuzzer (nightly entry point)",
    )
    parser.add_argument("--seeds", type=int, default=60, help="schedules to run")
    parser.add_argument(
        "--budget-s", type=float, default=None, help="wall-clock budget in seconds"
    )
    parser.add_argument(
        "--base-seed", type=int, default=0,
        help="base seed; per-iteration seeds are SHA-256 derived from it",
    )
    parser.add_argument(
        "--systems", default=",".join(FUZZ_SYSTEMS),
        help="comma-separated controller subset (md,spdk,draid)",
    )
    parser.add_argument("--ops", type=int, default=10, help="ops per schedule")
    parser.add_argument(
        "--axes", action="store_true",
        help="draw design-space axes (layout/code) from seeded child RNGs",
    )
    parser.add_argument(
        "--out", default="fuzz_failures",
        help="directory for shrunk reproducers of failing schedules",
    )
    args = parser.parse_args(argv)
    systems = tuple(s.strip() for s in args.systems.split(",") if s.strip())
    known = FUZZ_SYSTEMS + ("draid-st",)
    for system in systems:
        if system not in known:
            parser.error(f"unknown system {system!r} (choose from {known})")

    failures = fuzz_many(
        args.seeds,
        base_seed=args.base_seed,
        budget_s=args.budget_s,
        systems=systems,
        num_ops=args.ops,
        on_row=print,
        axes=args.axes,
    )
    if not failures:
        print(f"# {args.seeds} schedules clean")
        return 0
    os.makedirs(args.out, exist_ok=True)
    for schedule, outcome in failures:
        shrunk = shrink_schedule(schedule)
        final = replay_schedule(shrunk)
        path = os.path.join(
            args.out, f"repro_{shrunk.system}_seed{shrunk.seed}.py"
        )
        with open(path, "w") as fh:
            fh.write(emit_reproducer(shrunk, final))
        print(
            f"# FAIL {schedule.describe()} -> shrunk to {len(shrunk.ops)} ops, "
            f"reproducer at {path}"
        )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
