"""Kernel sanitizer: event-loop and locking invariants.

:class:`KernelSanitizer` attaches to one :class:`repro.sim.core.Environment`
and rebinds ``env.run`` / ``env._schedule`` as *instance* attributes, so
unarmed environments keep the exact inlined hot loops of PR 1 while armed
environments pay for per-event checks.  The rebound loop dispatches events
in precisely the same order as the stock loop — an armed run produces the
same simulated outcome (``FioResult`` equality is acceptance-tested), it
just watches the kernel while doing so.

Checked invariants:

* **time-travel / past-event** — no event is scheduled with a negative
  delay or dispatched at a timestamp before ``env.now``.
* **deadlock** — when the calendar drains (or ``run(until=event)`` starves)
  while some process still waits on a *held* stripe lock or a saturated
  capacity resource, the sanitizer raises with the full wait graph.
  Processes parked on idle mailboxes (server loops on ``Store.get``) are
  not deadlocked — nothing holds what they wait for — and are ignored.
* **lock-order inversion** — a global stripe-acquisition order graph per
  lock manager; requesting stripe B while holding stripe A when B→…→A is
  already established raises before the schedule can actually deadlock.
* **double-release** — releasing a stripe that is not held.
* **leaked holds** — a stripe lock or resource slot still held by a
  process that has terminated (the cancel-path bug class fixed in this
  PR: waiters interrupted between grant and resume).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.sim.core import Environment, Event, SimulationError


class KernelSanitizer:
    """Arms one environment; see the module docstring for the invariants."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.violations: List["InvariantViolation"] = []
        self._locks: List[Any] = []  # watched StripeLockManagers
        self._resources: List[Any] = []  # watched CapacityResources
        #: per manager id: stripe -> owning Process (None = non-process)
        self._owners: Dict[int, Dict[int, Any]] = {}
        #: per manager id: (proc id -> set of held stripes, proc kept alive
        #: via the owners map above)
        self._held_by: Dict[Tuple[int, int], Set[int]] = {}
        #: per manager id: stripe -> stripes acquired *after* it (order graph)
        self._order: Dict[int, Dict[int, Set[int]]] = {}
        #: per resource id: list of holder Processes (None for non-process)
        self._res_holders: Dict[int, List[Any]] = {}
        self.events_checked = 0
        # Degrade the kernel to the fully-checked pure-heap path: no
        # batch-advance inside Process._resume, no now-queue bypass — every
        # event flows through the heap and our _dispatch sees it.  Events
        # already sitting in the now-queue keep their ids, so migrating
        # them into the heap preserves dispatch order exactly.
        env._fast = False
        deferred = env._deferred
        if deferred is not None:
            env._deferred = None
            heapq.heappush(env._queue, (deferred._time, deferred._teid, deferred))
        while env._nowq:
            eid, event = env._nowq.popleft()
            heapq.heappush(env._queue, (env.now, eid, event))
        # Rebind the hot entry points on the *instance* — unarmed
        # environments never see these attributes and keep the class-level
        # inlined loops.
        self._orig_schedule = env._schedule
        env._schedule = self._schedule
        env.run = self._run
        env.sanitizer = self

    # -- violation plumbing -------------------------------------------------

    def _violate(
        self,
        invariant: str,
        detail: str,
        cid: Optional[int] = None,
        trace: Optional[Any] = None,
    ) -> None:
        from repro.verify import InvariantViolation

        violation = InvariantViolation(
            invariant, detail, time_ns=self.env.now, cid=cid, trace=trace
        )
        self.violations.append(violation)
        raise violation

    # -- event-loop hooks ---------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            self._violate(
                "past-event",
                f"{event!r} scheduled {-delay} ns in the past (t={self.env.now})",
            )
        self._orig_schedule(event, delay)

    def _dispatch(self, item) -> None:
        env = self.env
        time, _, event = item
        if time < env.now:
            self._violate(
                "time-travel",
                f"{event!r} stamped t={time} dispatched after the clock "
                f"already reached t={env.now}",
            )
        self.events_checked += 1
        env.now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def _run(self, until: Any = None) -> Any:
        """Sanitized replica of :meth:`Environment.run` (same semantics,
        same dispatch order, plus per-event checks and starvation probes)."""
        env = self.env
        queue = env._queue
        pop = heapq.heappop
        if isinstance(until, Event):
            stop_event = until
            while queue and stop_event._ok is None:
                self._dispatch(pop(queue))
            if stop_event._ok is None:
                self._deadlock_check(f"ran out of events before {stop_event!r}")
                raise SimulationError(
                    f"simulation ran out of events before {stop_event!r} triggered"
                )
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value
        if until is not None:
            horizon = int(until)
            if horizon < env.now:
                raise ValueError(f"until={horizon} is in the past (now={env.now})")
            while queue and queue[0][0] <= horizon:
                self._dispatch(pop(queue))
            env.now = horizon
            return None
        while queue:
            self._dispatch(pop(queue))
        self._deadlock_check("event calendar drained")
        self.check_leaks()
        return None

    # -- lock hooks (called by StripeLockManager when armed) ---------------

    def watch_locks(self, manager) -> None:
        """Track ``manager`` for ordering/deadlock/leak checks."""
        if manager not in self._locks:
            self._locks.append(manager)
            manager.sanitizer = self

    def on_lock_acquire(self, manager, stripe, event, ctx, granted) -> None:
        proc = event.proc
        if proc is not None:
            held = self._held_by.get((id(manager), id(proc)))
            if held:
                for other in held:
                    if other != stripe:
                        self._order_edge(manager, other, stripe, ctx, proc)
        if granted:
            self._grant(manager, stripe, proc)

    def on_lock_grant(self, manager, stripe, waiter) -> None:
        self._grant(manager, stripe, waiter.proc)

    def on_lock_release(self, manager, stripe) -> None:
        owner = self._owners.get(id(manager), {}).pop(stripe, None)
        if owner is not None:
            held = self._held_by.get((id(manager), id(owner)))
            if held is not None:
                held.discard(stripe)

    def on_double_release(self, manager, stripe) -> None:
        self._violate(
            "double-release", f"stripe {stripe} released but not held"
        )

    def _grant(self, manager, stripe, proc) -> None:
        self._owners.setdefault(id(manager), {})[stripe] = proc
        if proc is not None:
            self._held_by.setdefault((id(manager), id(proc)), set()).add(stripe)

    def _order_edge(self, manager, held_stripe, wanted_stripe, ctx, proc) -> None:
        order = self._order.setdefault(id(manager), {})
        successors = order.setdefault(held_stripe, set())
        if wanted_stripe in successors:
            return
        if self._reaches(order, wanted_stripe, held_stripe):
            self._violate(
                "lock-order-inversion",
                f"process {proc.name!r} holding stripe {held_stripe} requested "
                f"stripe {wanted_stripe}, but the established acquisition "
                f"order is {wanted_stripe} before {held_stripe}",
                trace=ctx,
            )
        successors.add(wanted_stripe)

    @staticmethod
    def _reaches(order: Dict[int, Set[int]], src: int, dst: int) -> bool:
        stack, seen = [src], {src}
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            for nxt in order.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    # -- resource hooks (called by CapacityResource when armed) ------------

    def watch_resource(self, resource) -> None:
        """Track a :class:`~repro.sim.resources.CapacityResource`."""
        if resource not in self._resources:
            self._resources.append(resource)
            resource.sanitizer = self

    def on_resource_grant(self, resource, waiter=None) -> None:
        proc = waiter.proc if waiter is not None else self.env._active_process
        self._res_holders.setdefault(id(resource), []).append(proc)

    def on_resource_abandon(self, resource, waiter) -> None:
        """A granted-but-never-consumed slot was handed back on cancel."""
        holders = self._res_holders.get(id(resource))
        if holders:
            try:
                holders.remove(waiter.proc)
            except ValueError:  # pragma: no cover - defensive
                pass

    def on_resource_release(self, resource) -> None:
        holders = self._res_holders.get(id(resource))
        if not holders:
            return
        proc = self.env._active_process
        try:
            holders.remove(proc)
        except ValueError:
            holders.pop(0)

    # -- terminal checks ----------------------------------------------------

    def _wait_graph(self) -> List[str]:
        """Human-readable edges of everything waiting on something held."""
        edges: List[str] = []
        for manager in self._locks:
            owners = self._owners.get(id(manager), {})
            for stripe, queue in manager._waiting.items():
                for waiter in queue:
                    if waiter.triggered:
                        continue
                    owner = owners.get(stripe)
                    owner_name = getattr(owner, "name", None) or "<unknown>"
                    waiter_name = getattr(waiter.proc, "name", None) or "<unknown>"
                    edges.append(
                        f"{waiter_name} waits for stripe {stripe} "
                        f"held by {owner_name}"
                    )
        for resource in self._resources:
            for waiter in resource._waiters:
                if waiter.triggered:
                    continue
                waiter_name = getattr(waiter.proc, "name", None) or "<unknown>"
                edges.append(
                    f"{waiter_name} waits for {resource.name} "
                    f"({resource.in_use}/{resource.capacity} slots in use)"
                )
        return edges

    def _deadlock_check(self, reason: str) -> None:
        edges = self._wait_graph()
        if edges:
            self._violate("deadlock", f"{reason}; wait graph: " + "; ".join(edges))

    def check_leaks(self) -> None:
        """A held lock/slot whose owner terminated can never be released."""
        for manager in self._locks:
            owners = self._owners.get(id(manager), {})
            for stripe, held in manager._held.items():
                if not held:
                    continue
                owner = owners.get(stripe)
                if owner is not None and owner._ok is not None:
                    self._violate(
                        "leaked-hold",
                        f"stripe {stripe} still held by terminated process "
                        f"{owner.name!r}",
                    )
        for resource in self._resources:
            dead = [
                proc
                for proc in self._res_holders.get(id(resource), ())
                if proc is not None and proc._ok is not None
            ]
            if dead:
                names = ", ".join(repr(p.name) for p in dead)
                self._violate(
                    "leaked-hold",
                    f"{resource.name}: {len(dead)} slot(s) held by "
                    f"terminated process(es) {names}",
                )

    def check_quiescent(self) -> None:
        """Stronger post-run check: everything watched is fully released."""
        self.check_leaks()
        for manager in self._locks:
            held = [s for s, h in manager._held.items() if h]
            waiting = [
                s
                for s, q in manager._waiting.items()
                if any(not w.triggered for w in q)
            ]
            if held or waiting:
                self._violate(
                    "leaked-hold",
                    f"lock manager not quiescent: held={held} waiting={waiting}",
                )
        for resource in self._resources:
            live = sum(1 for w in resource._waiters if not w.triggered)
            if resource.in_use or live:
                self._violate(
                    "leaked-hold",
                    f"{resource.name} not quiescent: in_use={resource.in_use}, "
                    f"queued={live}",
                )
