"""Per-request state machines for the §4 dRAID protocol and NVMe-oF.

:class:`ProtocolChecker` mirrors, from the outside, the state every
in-flight command is supposed to traverse, and raises
:class:`~repro.verify.InvariantViolation` the moment an observed message
is impossible under the protocol:

* **cid-reuse** — a command id registered while still in flight.  §5.4
  retries must be *new* commands (idempotence comes from replaying the
  pinned payload under a fresh cid, never from re-delivering an old one).
* **duplicate-completion** — the same participant acknowledging the same
  sub-operation twice (host side: per ``(kind, member)`` of one cid;
  server side: per ``(cid, kind, io_offset)`` of one server, since a
  reconstruction reducer legitimately answers both its own segment and
  the rebuilt one under a single cid).
* **premature-parity-completion** — a parity server acknowledging a
  partial-stripe write before it has folded every partial the Parity
  command's ``wait_num`` promised (Algorithm 2's completion gate).
* **fencing-beyond-parity** — the §5.4 fencing/ejection paths leaving
  more members failed than the geometry has parity.

The checker never *changes* an exchange — hooks observe send/receive
points that already exist, and every hook site short-circuits on the
controller's ``verifier`` attribute being None (the tracer pattern), so
unarmed runs stay byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.sim.core import Environment


class _RequestState:
    """Host-side expectations for one in-flight cid."""

    __slots__ = ("cid", "expected", "participants", "opened_ns", "acks")

    def __init__(self, cid, expected, participants, opened_ns) -> None:
        self.cid = cid
        self.expected = dict(expected)
        self.participants = set(participants)
        self.opened_ns = opened_ns
        #: (kind, member) pairs already acknowledged ok
        self.acks: Set[Tuple[str, int]] = set()


class ProtocolChecker:
    """Validates the message exchange of every registered request."""

    #: how many retired cids to remember for late-completion accounting
    CLOSED_WINDOW = 8192

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.violations: List["InvariantViolation"] = []
        self._open: Dict[int, _RequestState] = {}
        self._closed: Dict[int, None] = {}  # insertion-ordered ring
        #: server-side acks seen: (server, cid, kind, io_offset)
        self._server_acks: Set[Tuple[int, int, str, int]] = set()
        #: (server, cid) -> parity reduction key of the ParityCmd(s)
        self._parity_key: Dict[Tuple[int, int], int] = {}
        #: (server, key) -> partials promised by ParityCmd wait_nums
        self._parity_waits: Dict[Tuple[int, int], int] = {}
        #: (server, key) -> partials actually folded so far
        self._parity_folds: Dict[Tuple[int, int], int] = {}
        #: per-bdev NVMe-oF completions seen: (bdev_name, cid)
        self._nvmeof_acks: Set[Tuple[str, int]] = set()
        # accounting (not violations)
        self.checked_messages = 0
        self.late_completions = 0
        self.requests_opened = 0

    # -- plumbing -----------------------------------------------------------

    def _violate(
        self,
        invariant: str,
        detail: str,
        cid: Optional[int] = None,
        trace: Optional[Any] = None,
    ) -> None:
        from repro.verify import InvariantViolation

        violation = InvariantViolation(
            invariant, detail, time_ns=self.env.now, cid=cid, trace=trace
        )
        self.violations.append(violation)
        raise violation

    def _retire(self, cid: int) -> None:
        self._closed[cid] = None
        if len(self._closed) > self.CLOSED_WINDOW:
            self._closed.pop(next(iter(self._closed)))

    @property
    def open_requests(self) -> int:
        return len(self._open)

    # -- host-side hooks (DraidArray) --------------------------------------

    def on_register(self, cid: int, expected, participants) -> None:
        """A new request opened (one ``_register`` call on the host)."""
        if cid in self._open:
            self._violate(
                "cid-reuse",
                f"cid registered again while still in flight "
                f"(opened at t={self._open[cid].opened_ns})",
                cid=cid,
            )
        self.requests_opened += 1
        self._open[cid] = _RequestState(cid, expected, participants, self.env.now)

    def on_deregister(self, cid: int) -> None:
        """The host stopped waiting (op finished, errored, or expired)."""
        if self._open.pop(cid, None) is not None:
            self._retire(cid)

    def on_host_completion(self, member: int, comp) -> None:
        """A completion arrived on the host's receive loop for ``member``."""
        self.checked_messages += 1
        state = self._open.get(comp.cid)
        if state is None:
            # late completion for a retired/timed-out cid: the host drops
            # it (and must — that is what makes retries idempotent); only
            # account it.
            self.late_completions += 1
            return
        if not comp.ok:
            return
        key = (comp.kind, member)
        if key in state.acks:
            self._violate(
                "duplicate-completion",
                f"member {member} acknowledged {comp.kind!r} twice for one "
                f"request",
                cid=comp.cid,
                trace=comp.trace,
            )
        state.acks.add(key)

    # -- server-side hooks (DraidBdevServer) -------------------------------

    def on_parity_cmd(self, server: int, cid: int, key: int, wait_num: int) -> None:
        """A ParityCmd reached ``server``: ``wait_num`` more partials owed."""
        self._parity_key[(server, cid)] = key
        slot = (server, key)
        self._parity_waits[slot] = self._parity_waits.get(slot, 0) + wait_num

    def on_parity_fold(self, server: int, key: int) -> None:
        """``server`` folded one peer partial into reduction ``key``."""
        slot = (server, key)
        self._parity_folds[slot] = self._parity_folds.get(slot, 0) + 1

    def on_server_completion(
        self,
        server: int,
        cid: int,
        kind: str,
        ok: bool,
        io_offset: int = 0,
        trace: Optional[Any] = None,
    ) -> None:
        """``server`` sent a DraidCompletion upstream."""
        self.checked_messages += 1
        if kind == "parity":
            self._check_parity_completion(server, cid, ok, trace)
        if not ok:
            return
        ack = (server, cid, kind, io_offset)
        if ack in self._server_acks:
            self._violate(
                "duplicate-completion",
                f"server {server} sent a second ok {kind!r} completion "
                f"(io_offset={io_offset})",
                cid=cid,
                trace=trace,
            )
        self._server_acks.add(ack)

    def _check_parity_completion(self, server, cid, ok, trace) -> None:
        """Algorithm 2's gate: an ok parity ack implies every promised
        partial was folded first."""
        key = self._parity_key.pop((server, cid), None)
        if key is None:
            if ok:
                self._violate(
                    "premature-parity-completion",
                    f"server {server} acknowledged a parity fold it never "
                    f"received a ParityCmd for",
                    cid=cid,
                    trace=trace,
                )
            return
        slot = (server, key)
        waits = self._parity_waits.pop(slot, 0)
        folds = self._parity_folds.get(slot, 0)
        if not ok:
            # failed reduction: the server dropped its state; partials
            # already folded stay accounted for any key reuse, mirroring
            # the bdev's own bookkeeping
            return
        if folds < waits:
            self._violate(
                "premature-parity-completion",
                f"server {server} acknowledged parity key {key} after "
                f"folding {folds}/{waits} promised partials",
                cid=cid,
                trace=trace,
            )
        remaining = folds - waits
        if remaining > 0:
            self._parity_folds[slot] = remaining
        else:
            self._parity_folds.pop(slot, None)

    def on_server_crash(self, server: int) -> None:
        """Volatile reduce state is legitimately lost on a crash."""
        for mapping in (self._parity_key, self._parity_waits, self._parity_folds):
            for slot in [s for s in mapping if s[0] == server]:
                del mapping[slot]

    # -- baseline (plain NVMe-oF) hooks ------------------------------------

    def on_nvmeof_completion(self, bdev_name: str, cid: int, ok: bool) -> None:
        """A completion reached a baseline host bdev (md/spdk datapath)."""
        self.checked_messages += 1
        if not ok:
            return
        ack = (bdev_name, cid)
        if ack in self._nvmeof_acks:
            self._violate(
                "duplicate-completion",
                f"{bdev_name} received a second ok NVMe-oF completion",
                cid=cid,
            )
        self._nvmeof_acks.add(ack)

    # -- array-level checks -------------------------------------------------

    def check_fence(self, array) -> None:
        """§5.4: fencing/ejection must never exceed parity tolerance."""
        failed = len(array.failed)
        parity = array.geometry.num_parity
        if failed > parity:
            self._violate(
                "fencing-beyond-parity",
                f"{array.name}: {failed} members failed/fenced, geometry "
                f"tolerates {parity}",
            )
