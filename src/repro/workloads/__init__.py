"""Workload generators: FIO-style block workloads and YCSB key-value mixes."""

from repro.workloads.fio import FioResult, FioWorkload
from repro.workloads.generators import (
    LatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.openloop import OpenLoopResult, OpenLoopWorkload
from repro.workloads.tenants import MultiTenantWorkload, TenantSpec
from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbResult, YcsbWorkload, YcsbSpec

__all__ = [
    "FioResult",
    "FioWorkload",
    "LatestGenerator",
    "MultiTenantWorkload",
    "OpenLoopResult",
    "OpenLoopWorkload",
    "TenantSpec",
    "UniformGenerator",
    "YCSB_WORKLOADS",
    "YcsbResult",
    "YcsbSpec",
    "YcsbWorkload",
    "ZipfianGenerator",
]
