"""A FIO-style closed-loop block workload (§9.1).

``queue_depth`` worker loops each keep one I/O outstanding against the
array (aggregate inflight = queue depth, like FIO's ``iodepth`` with
``numjobs=1``).  Offsets are uniformly random, aligned to the I/O size, over
the array capacity; the read fraction selects the op mix.

``run`` executes warmup then a measurement window and reports bandwidth,
IOPS and the latency distribution — the quantities the paper's figures
plot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.nvmeof.messages import IoError
from repro.sim.core import Environment
from repro.storage.integrity import ChecksumError

MB = 1_000_000


@dataclass(frozen=True)
class FioResult:
    """Outcome of one measurement window."""

    bandwidth_mb_s: float
    iops: float
    latency: LatencySummary
    ops_completed: int
    measured_ns: int

    @property
    def bandwidth_gbps(self) -> float:
        return self.bandwidth_mb_s * 8 / 1000


class FioWorkload:
    """Closed-loop random read/write generator against a RAID array."""

    def __init__(
        self,
        array,
        io_size: int,
        read_fraction: float = 0.0,
        queue_depth: int = 32,
        capacity: Optional[int] = None,
        seed: int = 1234,
    ) -> None:
        if io_size <= 0:
            raise ValueError(f"io_size must be positive, got {io_size}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(f"read_fraction out of range: {read_fraction}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.array = array
        self.env: Environment = array.env
        self.io_size = io_size
        self.read_fraction = read_fraction
        self.queue_depth = queue_depth
        geometry = array.geometry
        default_cap = geometry.stripe_data_bytes * 4096
        self.capacity = capacity if capacity is not None else default_cap
        if self.capacity < io_size:
            raise ValueError("capacity smaller than one I/O")
        self._rng = random.Random(seed)
        self._slots = max(1, self.capacity // io_size)
        self.reads = LatencyRecorder()
        self.writes = LatencyRecorder()
        self._bytes_done = 0
        self._measuring = False
        #: I/Os that exhausted the array's retry budget (fault injection)
        self.io_errors = 0
        obs = getattr(array.cluster, "obs", None) if hasattr(array, "cluster") else None
        self._obs = obs
        #: armed tracer (or None): every *measured* I/O opens a root span
        self._tracer = None if obs is None else obs.tracer

    def _worker(self, stop_event):
        tracer = self._tracer
        while not stop_event.triggered:
            offset = self._rng.randrange(self._slots) * self.io_size
            is_read = self._rng.random() < self.read_fraction
            ctx = None
            if tracer is not None and self._measuring:
                ctx = tracer.new_request()
            start = self.env.now
            try:
                # only pass the kwarg when armed so wrappers that predate
                # tracing (QoS shims, rebuild views) keep working untraced
                if is_read:
                    yield (self.array.read(offset, self.io_size, ctx=ctx)
                           if ctx is not None
                           else self.array.read(offset, self.io_size))
                else:
                    yield (self.array.write(offset, self.io_size, ctx=ctx)
                           if ctx is not None
                           else self.array.write(offset, self.io_size))
            except (IoError, ChecksumError):
                # terminal failure after the §5.4 retry budget (or an
                # unrecoverable checksum mismatch on an armed array): the
                # real FIO would log an error and carry on
                self.io_errors += 1
                continue
            if ctx is not None:
                tracer.record_root(
                    ctx,
                    "read" if is_read else "write",
                    "host.io",
                    start,
                    self.env.now,
                    args={"offset": offset, "nbytes": self.io_size},
                )
            if self._measuring:
                latency = self.env.now - start
                (self.reads if is_read else self.writes).record(latency)
                self._bytes_done += self.io_size

    def combined_latency(self) -> LatencySummary:
        return LatencyRecorder.merged(self.reads, self.writes).summarize()

    def run(self, warmup_ns: int = 2_000_000, measure_ns: int = 30_000_000) -> FioResult:
        """Warm up, measure for ``measure_ns``, return windowed results.

        On an observability-armed cluster the utilization sampler runs
        exactly over the measurement window, so its
        :class:`~repro.obs.sampler.BottleneckReport` excludes warmup.
        """
        stop = self.env.event()
        for _ in range(self.queue_depth):
            self.env.process(self._worker(stop), name="fio")
        self.env.run(until=self.env.now + warmup_ns)
        self._measuring = True
        self._bytes_done = 0
        start = self.env.now
        sampler = None if self._obs is None else self._obs.sampler
        if sampler is not None:
            sampler.attach_array(self.array)
            sampler.start()
        self.env.run(until=start + measure_ns)
        self._measuring = False
        if sampler is not None:
            sampler.stop()
        elapsed = self.env.now - start
        stop.succeed()
        # let inflight I/Os drain so worker processes terminate cleanly
        self.env.run(until=self.env.now + 1)
        summary = self.combined_latency()
        return FioResult(
            bandwidth_mb_s=self._bytes_done * 1e9 / elapsed / MB,
            iops=summary.count * 1e9 / elapsed,
            latency=summary,
            ops_completed=summary.count,
            measured_ns=elapsed,
        )
