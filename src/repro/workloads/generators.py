"""Key-choice distributions for YCSB-style workloads.

Implements the standard YCSB generators: uniform, scrambled-less zipfian
(Gray et al.'s algorithm, as in the YCSB reference implementation) and
"latest" (zipfian over recency, favouring recently inserted keys).
"""

from __future__ import annotations

import random


class UniformGenerator:
    """Uniformly random keys over [0, count)."""

    def __init__(self, count: int, seed: int = 0) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.count = count
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.count)


class ZipfianGenerator:
    """Zipfian-distributed keys over [0, count) (YCSB constant 0.99).

    Uses the rejection-free inverse-CDF approximation from Gray et al.,
    "Quickly Generating Billion-Record Synthetic Databases" — the same
    algorithm the YCSB reference implementation uses.
    """

    def __init__(self, count: int, theta: float = 0.99, seed: int = 0) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0,1), got {theta}")
        self.count = count
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / count) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # exact for small n; integral approximation beyond a cutoff
        cutoff = min(n, 10_000)
        total = sum(1.0 / (i ** theta) for i in range(1, cutoff + 1))
        if n > cutoff:
            # integral of x^-theta from cutoff to n
            total += (n ** (1 - theta) - cutoff ** (1 - theta)) / (1 - theta)
        return total

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.count * (self._eta * u - self._eta + 1) ** self._alpha)


class LatestGenerator:
    """YCSB's 'latest' distribution: zipfian over recency.

    ``record_insert`` grows the keyspace; ``next`` favours the most
    recently inserted keys (key = newest - zipf_offset).
    """

    def __init__(self, count: int, seed: int = 0) -> None:
        self.count = count
        self._zipf = ZipfianGenerator(count, seed=seed)

    def record_insert(self) -> int:
        self.count += 1
        # keep the offset distribution in sync with the keyspace size
        if self.count > self._zipf.count * 2:
            self._zipf = ZipfianGenerator(self.count, seed=self._zipf._rng.randrange(1 << 30))
        return self.count - 1

    def next(self) -> int:
        offset = self._zipf.next()
        key = self.count - 1 - offset
        return max(0, key)
